//! `DigiPool` — many digis behind one service: the paper's §6 open
//! question made concrete.
//!
//! > "an open question is how to make these large-scale simulations more
//! > efficient, i.e., running a higher number of mocks/scenes with a fixed
//! > amount of compute resource budget. E.g., given the event-driven
//! > nature of IoT apps, whether/how we can leverage Function-as-a-Service
//! > (FaaS) to run the simulator logic of mocks and scenes."
//!
//! A pool is the FaaS executor: it hosts N [`DigiCell`]s behind **one**
//! network endpoint and **one** MQTT session, invoking each cell's handlers
//! only when its events are due or its messages arrive. Compared to
//! one-microservice-per-mock this removes the per-digi broker session and
//! per-digi endpoint — the fixed-cost floor that dominates at thousands of
//! mostly-idle mocks. The `e9_faas_pooling` bench quantifies the
//! difference.
//!
//! ## Storage: arena + slabs + model columns
//!
//! Cells live in a [`DigiArena`] — contiguous slabs addressed by a dense
//! [`DigiId`] (a packed slot index plus a generation tag, so a recycled
//! slot invalidates every stale handle) — instead of a per-digi
//! `Rc<RefCell<...>>` object graph. The scalar leaves of every hosted
//! model are mirrored into a struct-of-arrays [`ColumnStore`] keyed by
//! interned attribute ids, so bulk reads (checkpointing, state digests)
//! scan dense columns instead of walking N separate field trees.
//!
//! ## Scheduling: one wheel entry per (interval, pool)
//!
//! Periodic ticks are driven by *tick groups*: the pool arms **one**
//! kernel-wheel timer per distinct loop interval and, when it fires, walks
//! the group's members in insertion order — a dense run over the arena —
//! instead of keeping one wheel entry per digi. At 100k mostly-idle mocks
//! this turns 100k queue entries into a handful. Cells hosted into an
//! already-armed group adopt the group's phase (they first tick at the
//! group's next firing); stale members left behind by evictions are
//! skipped and compacted on the next firing. Same-instant datagram batches
//! coalesced by the kernel ([`Service::on_datagram_batch`]) are ingested
//! whole and pumped once per batch.
//!
//! Semantics are unchanged: pooled digis publish/subscribe the same topics
//! and serve the same REST API (routed as `/digi/<name>/...`), so
//! applications and parent scenes cannot tell a pooled mock from a
//! dedicated one. Scenes can be pooled too, but the intended use is large
//! fleets of mocks (the paper's 1000-sensor experiment).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap}; // hash maps for keyed lookup; `dbox audit` (DH0002) checks every iteration site
use std::rc::Rc;

use bytes::Bytes;

use digibox_broker::{ClientEvent, MqttConn, QoS};
use digibox_model::{ColumnStore, Model, RowId, Value};
use digibox_net::httpx::{Request, Response};
use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Prng, Service, ServiceHandle, Sim, SimDuration, TimerToken};
use digibox_trace::TraceLog;

use crate::cell::{DigiCell, Outbox};
use crate::program::DigiProgram;
use crate::topics;

/// Tag bit for tick-group timers. Disjoint from the reliable-transport
/// bit (1 << 63), the endpoint token spaces (bits 48..63) and the HTTP
/// response tag (1 << 60). The low bits carry the group's interval in ms.
const TICK_TOKEN_TAG: TimerToken = 1 << 59;
/// Tag bit for delayed HTTP responses.
const RESPONSE_TOKEN_TAG: TimerToken = 1 << 60;
/// Token space of the HTTP endpoint.
const HTTP_TOKEN_SPACE: u16 = 2;

// ---- arena -----------------------------------------------------------------

/// Bits of a [`DigiId`] spent on the slot index: 2^20 slots ≥ the
/// million-digi target.
const ID_SLOT_BITS: u32 = 20;
const ID_SLOT_MASK: u32 = (1 << ID_SLOT_BITS) - 1;
/// Remaining bits tag the generation; wraps after 4096 recycles of a slot.
const ID_GEN_MASK: u32 = (1 << (32 - ID_SLOT_BITS)) - 1;
/// Entries per slab: large enough for cache-dense scans, small enough that
/// growing a mostly-empty pool doesn't overallocate.
const SLAB_CAP: usize = 1024;

/// Dense generational handle into an [`Arena`]: a packed `(slot, gen)`
/// pair. The generation tag makes stale handles safe — after a slot is
/// recycled, ids from its previous life no longer resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DigiId(u32);

impl DigiId {
    fn pack(slot: u32, gen: u32) -> DigiId {
        debug_assert!(slot <= ID_SLOT_MASK);
        DigiId(slot | (gen << ID_SLOT_BITS))
    }

    /// The slab slot index (dense, recycled).
    pub fn slot(self) -> u32 {
        self.0 & ID_SLOT_MASK
    }

    /// The generation tag guarding against stale handles.
    pub fn generation(self) -> u32 {
        self.0 >> ID_SLOT_BITS
    }

    /// The packed raw id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

struct ArenaSlot<T> {
    gen: u32,
    value: Option<T>,
}

/// Slab-backed generational arena: values live in contiguous fixed-size
/// slabs, slots are recycled LIFO, and every handle carries a generation
/// tag so a stale [`DigiId`] can never reach a recycled slot's new tenant.
pub struct Arena<T> {
    slabs: Vec<Vec<ArenaSlot<T>>>,
    free: Vec<u32>,
    next_slot: u32,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Arena<T> {
        Arena { slabs: Vec::new(), free: Vec::new(), next_slot: 0, len: 0 }
    }

    /// Live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.next_slot as usize
    }

    fn slot_ref(&self, slot: u32) -> Option<&ArenaSlot<T>> {
        self.slabs.get(slot as usize / SLAB_CAP)?.get(slot as usize % SLAB_CAP)
    }

    fn slot_mut(&mut self, slot: u32) -> Option<&mut ArenaSlot<T>> {
        self.slabs.get_mut(slot as usize / SLAB_CAP)?.get_mut(slot as usize % SLAB_CAP)
    }

    /// Store a value, reusing the most recently freed slot if any.
    pub fn insert(&mut self, value: T) -> DigiId {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let s = self.slot_mut(slot).expect("free-listed slot exists");
            debug_assert!(s.value.is_none());
            s.value = Some(value);
            return DigiId::pack(slot, s.gen);
        }
        let slot = self.next_slot;
        assert!(slot <= ID_SLOT_MASK, "arena full: 2^{ID_SLOT_BITS} slots");
        self.next_slot += 1;
        if self.slabs.last().map_or(true, |s| s.len() == SLAB_CAP) {
            self.slabs.push(Vec::with_capacity(SLAB_CAP));
        }
        self.slabs
            .last_mut()
            .expect("slab pushed above")
            .push(ArenaSlot { gen: 0, value: Some(value) });
        DigiId::pack(slot, 0)
    }

    /// Remove and return the value behind `id`, bumping the slot's
    /// generation so `id` (and any copy of it) goes stale. `None` if the
    /// handle is already stale.
    pub fn remove(&mut self, id: DigiId) -> Option<T> {
        let s = self.slot_mut(id.slot())?;
        if s.gen != id.generation() || s.value.is_none() {
            return None;
        }
        let v = s.value.take();
        s.gen = (s.gen + 1) & ID_GEN_MASK;
        self.free.push(id.slot());
        self.len -= 1;
        v
    }

    /// Generation-checked read. `None` for stale or never-issued handles.
    pub fn get(&self, id: DigiId) -> Option<&T> {
        let s = self.slot_ref(id.slot())?;
        if s.gen != id.generation() {
            return None;
        }
        s.value.as_ref()
    }

    /// Generation-checked mutable read.
    pub fn get_mut(&mut self, id: DigiId) -> Option<&mut T> {
        let s = self.slot_mut(id.slot())?;
        if s.gen != id.generation() {
            return None;
        }
        s.value.as_mut()
    }

    /// Whether `id` still resolves.
    pub fn contains(&self, id: DigiId) -> bool {
        self.get(id).is_some()
    }

    /// Iterate live entries in slot (slab) order.
    pub fn iter(&self) -> impl Iterator<Item = (DigiId, &T)> {
        self.slabs.iter().enumerate().flat_map(|(si, slab)| {
            slab.iter().enumerate().filter_map(move |(i, s)| {
                let v = s.value.as_ref()?;
                Some((DigiId::pack((si * SLAB_CAP + i) as u32, s.gen), v))
            })
        })
    }
}

/// The pool's cell storage: a slab arena of [`DigiCell`]s.
pub type DigiArena = Arena<DigiCell>;

// ---- pool ------------------------------------------------------------------

/// Pool-level counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Digis currently hosted.
    pub cells: usize,
    /// Event-generation ticks dispatched to cells.
    pub ticks_dispatched: u64,
    /// Kernel timer wakeups taken by the pool (one per tick-group firing).
    pub wheel_wakeups: u64,
    /// REST requests served across all hosted digis.
    pub rest_requests: u64,
    /// MQTT messages routed into hosted cells.
    pub messages_in: u64,
    /// Same-instant datagram batches ingested whole (kernel coalescing).
    pub batched_deliveries: u64,
}

/// One tick group: every hosted cell sharing a loop interval, driven by a
/// single kernel-wheel entry.
#[derive(Default)]
struct TickGroup {
    /// Members in host order; stale ids are compacted on firing.
    members: Vec<DigiId>,
    /// Whether a wheel entry for this group is in flight.
    armed: bool,
}

/// A FaaS-style executor hosting many digis behind one service.
pub struct DigiPool {
    addr: Addr,
    conn: MqttConn,
    http: ReliableEndpoint,
    arena: DigiArena,
    /// Name → id, sorted (iteration order = digest order).
    ids: BTreeMap<String, DigiId>,
    /// Dense model columns mirroring every hosted cell's scalar leaves.
    columns: ColumnStore,
    /// Per-slot column row (`rows[slot]` valid while the slot is live).
    rows: Vec<u32>,
    /// Per-slot model revision last mirrored into the columns.
    mirror_rev: Vec<u64>,
    /// Interval (ms) → tick group; one wheel entry per armed group.
    tick_groups: BTreeMap<u64, TickGroup>,
    service_overhead: SimDuration,
    overhead_rng: Prng,
    pending_responses: HashMap<TimerToken, (Addr, Bytes)>,
    next_response_token: u64,
    stats: PoolStats,
}

impl DigiPool {
    /// A pool at `addr` speaking MQTT to `broker`, with per-message
    /// service overhead applied to REST responses.
    pub fn new(addr: Addr, broker: Addr, service_overhead: SimDuration) -> ServiceHandle<DigiPool> {
        Rc::new(RefCell::new(DigiPool {
            conn: MqttConn::new(addr, broker, &format!("pool/{addr}")),
            http: ReliableEndpoint::new(addr).with_space(HTTP_TOKEN_SPACE),
            addr,
            arena: Arena::new(),
            ids: BTreeMap::new(),
            columns: ColumnStore::new(),
            rows: Vec::new(),
            mirror_rev: Vec::new(),
            tick_groups: BTreeMap::new(),
            service_overhead,
            overhead_rng: Prng::new(addr.port as u64 ^ 0xF445),
            pending_responses: HashMap::new(),
            next_response_token: 0,
            stats: PoolStats::default(),
        }))
    }

    /// The pool's bound address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Digis currently hosted.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the pool hosts no digis.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Counters, with the live cell count filled in.
    pub fn stats(&self) -> PoolStats {
        PoolStats { cells: self.arena.len(), ..self.stats.clone() }
    }

    /// Hosted digi names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.ids.keys().map(String::as_str).collect()
    }

    /// The arena id of a hosted digi.
    pub fn id_of(&self, name: &str) -> Option<DigiId> {
        self.ids.get(name).copied()
    }

    /// A hosted digi's current model, if hosted here.
    pub fn model(&self, name: &str) -> Option<&Model> {
        self.arena.get(*self.ids.get(name)?).map(DigiCell::model)
    }

    /// A hosted digi's cell, if hosted here.
    pub fn cell(&self, name: &str) -> Option<&DigiCell> {
        self.arena.get(*self.ids.get(name)?)
    }

    /// The dense model columns (bulk readers: checkpointing, digests).
    pub fn columns(&self) -> &ColumnStore {
        &self.columns
    }

    /// A hosted digi's field tree, rebuilt from the dense columns (the
    /// checkpoint read path: no walk of the cell's own tree).
    pub fn snapshot_fields(&self, name: &str) -> Option<Value> {
        let id = *self.ids.get(name)?;
        let slot = id.slot() as usize;
        self.arena.get(id)?;
        self.columns.snapshot_row(RowId(self.rows[slot])).ok()
    }

    /// Overwrite a hosted digi's fields (checkpoint restore). The cell
    /// keeps its slab slot and tick group; the model is republished and
    /// the columns re-mirrored. Returns `false` if not hosted here.
    pub fn restore_fields(&mut self, sim: &mut Sim, name: &str, fields: Value) -> bool {
        let Some(&id) = self.ids.get(name) else {
            return false;
        };
        let now = sim.now();
        let Some(cell) = self.arena.get_mut(id) else {
            return false;
        };
        let mut out = Outbox::new();
        cell.force_fields(now, fields, &mut out);
        self.flush(sim, out);
        self.sync_mirror(id);
        true
    }

    /// Host a digi in this pool. Must be called *after* the pool is bound
    /// (it subscribes and announces through the live session). Returns the
    /// arena id of the new cell.
    pub fn host(
        &mut self,
        sim: &mut Sim,
        model: Model,
        program: Box<dyn DigiProgram>,
        rng: Prng,
        log: TraceLog,
        scene_logic_enabled: bool,
    ) -> DigiId {
        let mut cell = DigiCell::new(model, program, rng, log, scene_logic_enabled);
        let name = cell.name().to_string();
        let [intent_topic, set_topic] = cell.command_topics();
        self.conn.subscribe(
            sim,
            &[(&intent_topic, QoS::AtLeastOnce), (&set_topic, QoS::AtLeastOnce)],
        );
        let mut out = Outbox::new();
        cell.start(sim.now(), &mut out);
        self.flush(sim, out);
        let interval = cell.interval_ms();
        let id = self.arena.insert(cell);
        let slot = id.slot() as usize;
        if self.rows.len() <= slot {
            self.rows.resize(slot + 1, 0);
            self.mirror_rev.resize(slot + 1, 0);
        }
        self.rows[slot] = self.columns.alloc_row().0;
        self.mirror_rev[slot] = u64::MAX; // force the initial mirror
        self.ids.insert(name, id);
        self.sync_mirror(id);
        self.join_tick_group(sim, id, interval);
        id
    }

    /// Remove a hosted digi. Its slab slot and column row return to the
    /// free lists; any [`DigiId`] for it goes stale.
    pub fn evict(&mut self, sim: &mut Sim, name: &str) -> bool {
        let Some(id) = self.ids.remove(name) else {
            return false;
        };
        let Some(cell) = self.arena.remove(id) else {
            return false;
        };
        self.columns.free_row(RowId(self.rows[id.slot() as usize]));
        // The cell's tick-group entry goes stale with the id; it is
        // skipped and compacted at the group's next firing.
        let [intent_topic, set_topic] = cell.command_topics();
        self.conn.unsubscribe(sim, &[&intent_topic, &set_topic]);
        true
    }

    /// Attach `child` to the hosted scene `parent` (both may live in this
    /// pool or elsewhere; only the parent must be hosted here).
    pub fn attach_child(&mut self, sim: &mut Sim, parent: &str, child: &str, kind: &str) -> bool {
        let Some(&id) = self.ids.get(parent) else {
            return false;
        };
        let Some(cell) = self.arena.get_mut(id) else {
            return false;
        };
        let topic = cell.attach_child(sim.now(), child, kind);
        self.conn.subscribe(sim, &[(&topic, QoS::AtMostOnce)]);
        true
    }

    fn flush(&mut self, sim: &mut Sim, out: Outbox) {
        for (topic, payload, retain) in out.messages {
            self.conn.publish(sim, &topic, payload, QoS::AtMostOnce, retain);
        }
    }

    /// Mirror a cell's scalar leaves into the dense columns if its model
    /// revision moved since the last mirror.
    fn sync_mirror(&mut self, id: DigiId) {
        let slot = id.slot() as usize;
        let Some(cell) = self.arena.get(id) else {
            return;
        };
        let rev = cell.model().revision();
        if self.mirror_rev[slot] == rev {
            return;
        }
        let _ = self.columns.load_row(RowId(self.rows[slot]), cell.model().fields());
        self.mirror_rev[slot] = rev;
    }

    /// Add a cell to the tick group for `interval_ms`, arming the group's
    /// single wheel entry if it isn't in flight. A cell joining an armed
    /// group adopts the group's phase.
    fn join_tick_group(&mut self, sim: &mut Sim, id: DigiId, interval_ms: u64) {
        let group = self.tick_groups.entry(interval_ms).or_default();
        group.members.push(id);
        if !group.armed {
            group.armed = true;
            sim.set_timer(
                self.addr,
                SimDuration::from_millis(interval_ms),
                TICK_TOKEN_TAG | interval_ms,
            );
        }
    }

    /// A tick group's wheel entry fired: run every live member's loop
    /// handler in host order (a dense scan of the arena), compact stale
    /// ids, migrate cells whose programs changed their interval, and
    /// re-arm once.
    fn run_tick_group(&mut self, sim: &mut Sim, token: TimerToken) {
        let interval_ms = token & !TICK_TOKEN_TAG;
        let Some(group) = self.tick_groups.get_mut(&interval_ms) else {
            return;
        };
        self.stats.wheel_wakeups += 1;
        let mut members = std::mem::take(&mut group.members);
        let now = sim.now();
        let mut survivors = Vec::with_capacity(members.len());
        let mut moved: Vec<(DigiId, u64)> = Vec::new();
        for id in members.drain(..) {
            let Some(cell) = self.arena.get_mut(id) else {
                continue; // stale: evicted (and possibly recycled) since
            };
            let mut out = Outbox::new();
            cell.tick(now, &mut out);
            let new_interval = cell.interval_ms();
            self.stats.ticks_dispatched += 1;
            self.flush(sim, out);
            self.sync_mirror(id);
            if new_interval == interval_ms {
                survivors.push(id);
            } else {
                moved.push((id, new_interval));
            }
        }
        let group = self.tick_groups.get_mut(&interval_ms).expect("group present above");
        // Merge defensively with anything hosted while we were running.
        survivors.append(&mut group.members);
        group.members = survivors;
        if group.members.is_empty() {
            group.armed = false;
        } else {
            sim.set_timer(self.addr, SimDuration::from_millis(interval_ms), token);
        }
        for (id, interval) in moved {
            self.join_tick_group(sim, id, interval);
        }
    }

    fn handle_mqtt_message(&mut self, sim: &mut Sim, topic: &str, payload: &[u8]) {
        self.stats.messages_in += 1;
        let now = sim.now();
        let Some(digi) = topics::digi_of(topic) else {
            return;
        };
        let digi = digi.to_string();
        match topics::channel_of(topic) {
            Some("intent") => {
                if let Some(&id) = self.ids.get(&digi) {
                    if let Some(cell) = self.arena.get_mut(id) {
                        cell.log_message_in(now, topic, payload);
                        let updates = DigiCell::parse_intents(payload);
                        let mut out = Outbox::new();
                        // NOTE: pooled digis apply intents immediately; per-digi
                        // actuation delay is a dedicated-service feature.
                        cell.apply_intents(now, updates, &mut out);
                        self.flush(sim, out);
                        self.sync_mirror(id);
                    }
                }
            }
            Some("set") => {
                if let Some(&id) = self.ids.get(&digi) {
                    if let Some(cell) = self.arena.get_mut(id) {
                        cell.log_message_in(now, topic, payload);
                        let mut out = Outbox::new();
                        cell.handle_set(now, payload, &mut out);
                        self.flush(sim, out);
                        self.sync_mirror(id);
                    }
                }
            }
            Some("model") => {
                // fan the child model to every hosted scene mirroring it,
                // in name order (the same order the old map iteration had)
                let parents: Vec<DigiId> = self
                    .ids
                    .values()
                    .copied()
                    .filter(|&id| self.arena.get(id).is_some_and(|c| c.has_child(&digi)))
                    .collect();
                for id in parents {
                    if let Some(cell) = self.arena.get_mut(id) {
                        let mut out = Outbox::new();
                        cell.observe_child(now, &digi, payload, &mut out);
                        self.flush(sim, out);
                        self.sync_mirror(id);
                    }
                }
            }
            _ => {}
        }
    }

    fn handle_http(&mut self, sim: &mut Sim, peer: Addr, payload: &Bytes) {
        self.stats.rest_requests += 1;
        let response = match Request::decode(payload) {
            Ok(req) => {
                // pooled routing: /digi/<name>/...
                let target = {
                    let segs = req.path_segments();
                    match segs.as_slice() {
                        ["digi", name, ..] => Some(name.to_string()),
                        _ => None,
                    }
                };
                let target_id = target.and_then(|t| self.ids.get(&t).copied());
                match target_id.and_then(|id| self.arena.get_mut(id).map(|c| (id, c))) {
                    Some((id, cell)) => {
                        let mut out = Outbox::new();
                        let resp = cell.route_http(sim.now(), &req, &mut out);
                        self.flush(sim, out);
                        self.sync_mirror(id);
                        resp
                    }
                    None => Response::not_found("no such digi in this pool"),
                }
            }
            Err(e) => Response::bad_request(&e.to_string()),
        };
        let bytes = response.encode();
        if self.service_overhead == SimDuration::ZERO {
            self.http.send(sim, peer, bytes);
        } else {
            let load = sim.node_load(self.addr.node) as f64;
            let factor = (1.0 + load / 64.0) * self.overhead_rng.range_f64(0.85, 1.25);
            let delay = SimDuration::from_nanos(
                (self.service_overhead.as_nanos() as f64 * factor) as u64,
            );
            let token = RESPONSE_TOKEN_TAG | self.next_response_token;
            self.next_response_token += 1;
            self.pending_responses.insert(token, (peer, bytes));
            sim.set_timer(self.addr, delay, token);
        }
    }

    fn ingest(&mut self, sim: &mut Sim, dg: Datagram) {
        if dg.src == self.conn.broker() {
            self.conn.on_datagram(sim, dg);
        } else {
            self.http.on_datagram(sim, dg);
        }
    }

    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.conn.poll() {
            if let ClientEvent::Message { topic, payload, .. } = ev {
                self.handle_mqtt_message(sim, &topic, &payload);
            }
        }
        while let Some(ev) = self.http.poll() {
            match ev {
                TransportEvent::Delivered { peer, payload } => {
                    self.handle_http(sim, peer, &payload)
                }
                TransportEvent::PeerFailed { .. } => {}
            }
        }
    }
}

impl Service for DigiPool {
    fn on_start(&mut self, sim: &mut Sim) {
        self.conn.connect(sim, None);
    }

    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        self.ingest(sim, dg);
        self.pump(sim);
    }

    fn on_datagram_batch(&mut self, sim: &mut Sim, batch: &[Datagram]) {
        // Ingest the whole same-instant run, then pump once: one pass over
        // the session/endpoint queues per batch instead of per datagram.
        self.stats.batched_deliveries += 1;
        for dg in batch {
            self.ingest(sim, dg.clone());
        }
        self.pump(sim);
    }

    fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
        if self.conn.on_timer(sim, token) {
            self.pump(sim);
            return;
        }
        if self.http.on_timer(sim, token) {
            self.pump(sim);
            return;
        }
        if token & RESPONSE_TOKEN_TAG != 0 {
            if let Some((peer, bytes)) = self.pending_responses.remove(&token) {
                self.http.send(sim, peer, bytes);
            }
        } else if token & TICK_TOKEN_TAG != 0 {
            self.run_tick_group(sim, token);
        }
    }
}

#[cfg(test)]
mod arena_tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a: Arena<String> = Arena::new();
        let x = a.insert("x".into());
        let y = a.insert("y".into());
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(x).map(String::as_str), Some("x"));
        assert_eq!(a.get(y).map(String::as_str), Some("y"));
        assert_eq!(a.remove(x), Some("x".into()));
        assert_eq!(a.len(), 1);
        assert!(a.get(x).is_none());
        assert_eq!(a.remove(x), None, "double remove is stale");
    }

    #[test]
    fn stale_id_never_reaches_recycled_slot() {
        let mut a: Arena<u32> = Arena::new();
        let first = a.insert(1);
        a.remove(first);
        let second = a.insert(2);
        // LIFO recycling: same slot, new generation.
        assert_eq!(second.slot(), first.slot());
        assert_ne!(second.generation(), first.generation());
        assert!(!a.contains(first));
        assert!(a.get(first).is_none());
        assert!(a.get_mut(first).is_none());
        assert_eq!(a.remove(first), None);
        assert_eq!(a.get(second), Some(&2));
    }

    #[test]
    fn iter_walks_slots_in_order() {
        let mut a: Arena<u32> = Arena::new();
        let ids: Vec<DigiId> = (0..5).map(|i| a.insert(i)).collect();
        a.remove(ids[2]);
        let seen: Vec<(u32, u32)> = a.iter().map(|(id, &v)| (id.slot(), v)).collect();
        assert_eq!(seen, vec![(0, 0), (1, 1), (3, 3), (4, 4)]);
    }

    #[test]
    fn slabs_grow_without_moving_slots() {
        let mut a: Arena<usize> = Arena::new();
        let ids: Vec<DigiId> = (0..SLAB_CAP + 10).map(|i| a.insert(i)).collect();
        assert_eq!(a.capacity(), SLAB_CAP + 10);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(a.get(*id), Some(&i), "slot {} moved", id.slot());
        }
        assert_eq!(ids[SLAB_CAP].slot() as usize, SLAB_CAP, "second slab starts at SLAB_CAP");
    }

    /// Tiny deterministic PRNG (std-only, so this chaos-style interleaving
    /// runs under the offline harness too; the proptest version below digs
    /// deeper in real CI).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    /// Reference-model check: interleaved spawn/kill/restart against a
    /// plain map keyed by raw id. No stale id may ever dereference, and a
    /// "restart" (kill + respawn) must land in the most recently freed
    /// slab slot (LIFO), exactly where checkpoint restore expects it.
    fn spawn_kill_restart_round(seed: u64, steps: u32) {
        let mut a: Arena<u64> = Arena::new();
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let mut live: Vec<(DigiId, u64)> = Vec::new();
        let mut dead: Vec<DigiId> = Vec::new();
        let mut stamp = 0u64;
        for _ in 0..steps {
            match rng.next() % 4 {
                0 | 1 => {
                    // spawn
                    stamp += 1;
                    let expected_slot = a
                        .free
                        .last()
                        .copied()
                        .unwrap_or(a.next_slot);
                    let id = a.insert(stamp);
                    assert_eq!(id.slot(), expected_slot, "LIFO slot reuse violated");
                    live.push((id, stamp));
                }
                2 if !live.is_empty() => {
                    // kill
                    let i = (rng.next() as usize) % live.len();
                    let (id, v) = live.swap_remove(i);
                    assert_eq!(a.remove(id), Some(v));
                    dead.push(id);
                }
                _ if !live.is_empty() => {
                    // restart: kill then respawn; must land in the slot
                    // just freed (how checkpoint restore finds its row)
                    let i = (rng.next() as usize) % live.len();
                    let (id, v) = live.swap_remove(i);
                    assert_eq!(a.remove(id), Some(v));
                    stamp += 1;
                    let re = a.insert(stamp);
                    assert_eq!(re.slot(), id.slot(), "restart must reuse the freed slot");
                    assert_ne!(re.generation(), id.generation());
                    dead.push(id);
                    live.push((re, stamp));
                }
                _ => {}
            }
            // Invariants after every step: every live id resolves to its
            // value, every dead id is stale.
            for &(id, v) in &live {
                assert_eq!(a.get(id), Some(&v), "live id failed to resolve");
            }
            for &id in &dead {
                assert!(a.get(id).is_none(), "stale id dereferenced");
            }
            assert_eq!(a.len(), live.len());
        }
    }

    #[test]
    fn randomized_spawn_kill_restart_interleavings() {
        for seed in 0..8 {
            spawn_kill_restart_round(seed, 600);
        }
    }

    // Property-test version: wider input space in real CI; the offline
    // stub compiles this out.
    mod prop {
        #[allow(unused_imports)] // the offline proptest stub empties the macro
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arena_recycling_holds_under_any_interleaving(
                seed in any::<u64>(),
                steps in 1u32..400,
            ) {
                spawn_kill_restart_round(seed, steps);
            }
        }
    }
}
