//! Deterministic space-parallel simulation: island kernels with
//! conservative lookahead (DESIGN.md §15).
//!
//! The sweep engine (PR 4) parallelizes *across seeds*; this module
//! parallelizes *inside one run*. The scene graph is partitioned along
//! scene boundaries into **islands**: each island is a complete
//! [`Testbed`] — its own event kernel, wheel, broker replica and control
//! plane — that owns exactly one node of a shared multi-node topology
//! ([`islands_cluster`]) and is cordoned off every foreign node
//! (`TestbedConfig::home_node`). Islands execute concurrently on worker
//! threads and synchronize at **conservative lookahead barriers**: every
//! epoch each island runs up to `horizon = min(committed + lookahead,
//! next fault fence, end)` where `lookahead` is the minimum cross-island
//! link base delay ([`min_cross_latency`]). Because any datagram sent
//! during epoch `(C, H]` departs at `t > C` and arrives at
//! `t + delay >= t + lookahead > H`, cross-island traffic captured in
//! each island's remote outbox can always be injected at the *next*
//! barrier without ever scheduling into an island's committed past —
//! `Sim::inject_remote` asserts exactly this invariant.
//!
//! Determinism is by construction, not by luck: the number of worker
//! threads (`--islands N`) changes only *which OS thread* hosts an island
//! kernel, never the virtual execution. Cross-island datagrams are merged
//! in canonical `(arrival time, source island, send order)` order before
//! injection ([`route_arrivals`]), so the destination wheel assigns the
//! same sequence numbers no matter how worker threads raced. Every digest
//! — stats snapshot, scorecard, sweep card, checkpoint hashes — is
//! byte-identical for any worker count, and `tests/islands_determinism.rs`
//! plus the `islands-smoke` CI job enforce it.
//!
//! Chaos interacts with the barrier protocol in two ways (both handled
//! here): fault window starts/ends become **fences** (barrier points), so
//! topology changes only ever happen at a committed horizon; and every
//! degrade/partition/heal transition triggers a lookahead recomputation,
//! so a healed (faster) link can never let a message arrive "before" an
//! island's committed horizon.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};

use bytes::Bytes;
use digibox_net::chaos::FaultPlan;
use digibox_net::{
    Addr, Datagram, FaultKind, FaultWindow, LinkSpec, LinkState, NodeId, NodeSpec,
    RemoteDatagram, Service, Sim, SimDuration, SimTime, TimerToken, Topology,
};
use digibox_obs as obs;

use crate::sweep::resolve_jobs;
use crate::testbed::Testbed;

/// UDP-style port of the per-island uplink beacon service.
const UPLINK_PORT: u16 = 48;
/// Port of the island-0 aggregator the uplinks report to.
const AGG_PORT: u16 = 47;
/// Timer token used by [`IslandUplink`].
const UPLINK_TIMER: TimerToken = 0x0151_A4D;

/// Everything an island builder needs to construct its [`Testbed`]:
/// the campaign seed, the island's identity, and the shared cluster
/// topology every island testbed must be built on.
pub struct IslandEnv {
    /// Campaign seed (same for every island of one run).
    pub seed: u64,
    /// This island's index in `0..islands`.
    pub island: usize,
    /// Total island count.
    pub islands: usize,
    /// The node this island owns — `NodeId(island)`.
    pub node: NodeId,
    /// The shared cluster topology ([`islands_cluster`]). Builders pass a
    /// clone of this to [`Testbed::new`] with
    /// `TestbedConfig::home_node = Some(island)`.
    pub topology: Topology,
}

/// One island of a space-parallel run: a name (for error reporting) plus
/// the builder that constructs its [`Testbed`] on a worker thread.
pub struct IslandSpec {
    /// Human-readable island name, used in failure messages.
    pub name: String,
    build: Box<dyn FnOnce(&IslandEnv) -> crate::Result<Testbed> + Send>,
}

impl IslandSpec {
    /// Package a named island builder. The builder runs *inside* the
    /// worker thread that will host the island (a [`Testbed`] is not
    /// `Send`), must build on `env.topology` and must set
    /// `TestbedConfig::home_node = Some(env.island)` — the engine
    /// validates both after construction.
    pub fn new<F>(name: impl Into<String>, build: F) -> IslandSpec
    where
        F: FnOnce(&IslandEnv) -> crate::Result<Testbed> + Send + 'static,
    {
        IslandSpec { name: name.into(), build: Box::new(build) }
    }
}

/// Tuning knobs for the island engine.
#[derive(Debug, Clone)]
pub struct IslandsConfig {
    /// Worker threads executing the island kernels; `0` means one per
    /// available core. The worker count never changes any digest — it
    /// only decides which thread hosts which island.
    pub workers: usize,
    /// Period of the cross-island uplink beacon each island sends to the
    /// island-0 aggregator (guaranteed cross traffic that exercises the
    /// barrier protocol even when the scenes themselves are quiet).
    pub uplink_period: SimDuration,
}

impl Default for IslandsConfig {
    fn default() -> Self {
        IslandsConfig { workers: 0, uplink_period: SimDuration::from_millis(500) }
    }
}

/// Outcome of a space-parallel run.
#[derive(Debug)]
pub struct IslandsRun<R> {
    /// Per-island results from the finish closure, in island order.
    pub results: Vec<R>,
    /// The aligned start time: the maximum post-build clock across
    /// islands; every island is run forward to `t0` before traffic flows.
    pub t0: SimTime,
    /// How many lookahead epochs the run took.
    pub epochs: u64,
    /// Total cross-island datagrams exchanged at barriers.
    pub cross_datagrams: u64,
    /// Resolved worker-thread count actually used.
    pub workers: usize,
}

/// The inter-island link model: 5 ms base delay (the conservative
/// lookahead floor), 1 ms jitter, lossless, 10 Gb/s.
pub fn cross_island_link() -> LinkSpec {
    LinkSpec {
        base_delay: SimDuration::from_millis(5),
        jitter: SimDuration::from_millis(1),
        loss: 0.0,
        bandwidth_bps: 10_000_000_000,
    }
}

/// The shared topology of a `k`-island run: one `m5.xlarge`-class node
/// per island, every cross pair on [`cross_island_link`]. Every island
/// testbed is built on a clone of this so link RNG streams and delay
/// arithmetic agree across islands.
pub fn islands_cluster(k: usize) -> Topology {
    let mut topo = Topology::new();
    for i in 0..k {
        topo.add_node(NodeSpec::m5_xlarge(i as u32));
    }
    topo.set_default_link(cross_island_link());
    topo
}

/// The conservative lookahead: the minimum `base_delay` over every
/// ordered cross-node pair. Errs on a single-node topology (no cross
/// pairs — callers special-case `k == 1`) and on a zero-delay link
/// (lookahead would be zero and the barrier loop could not advance).
pub fn min_cross_latency(topo: &Topology) -> Result<SimDuration, String> {
    let ids = topo.node_ids();
    let mut min: Option<SimDuration> = None;
    for &a in &ids {
        for &b in &ids {
            if a == b {
                continue;
            }
            let d = topo.link(a, b).base_delay;
            min = Some(match min {
                Some(m) if m <= d => m,
                _ => d,
            });
        }
    }
    match min {
        None => Err("island topology has fewer than two nodes".to_string()),
        Some(d) if d == SimDuration::ZERO => {
            Err("zero cross-island link latency: conservative lookahead is empty".to_string())
        }
        Some(d) => Ok(d),
    }
}

/// A fault transition resolved to a concrete per-island action. Link
/// shaping (partition/degrade) travels separately as the recomputed
/// active-window set, because it must be applied identically on every
/// island's topology copy.
#[derive(Debug, Clone)]
enum FaultAction {
    /// Kill a named digi. Broadcast to every island; only the owner's
    /// `Testbed::kill` succeeds, the rest return a harmless not-found.
    Kill(String),
    /// Kill the broker for the given outage. Broadcast: every island has
    /// its own broker replica and all of them crash together.
    KillBroker(SimDuration),
    /// Fail a node. Applied only on the owning island — on any other
    /// island that node is a *cordoned foreign* node, and touching it
    /// would corrupt the home-node cordon set.
    NodeDown(u32),
    /// Restore a failed node (owning island only, same reason).
    NodeUp(u32),
}

/// Coordinator → worker commands. Plain data only (a worker's testbeds
/// never cross threads).
enum Cmd {
    /// Align every island to `t0`, install the island scope and the
    /// cross-island beacon services, and remember the (absolute-time)
    /// fault windows for topology recomputation.
    Start { t0: SimTime, windows: Vec<FaultWindow> },
    /// Run one epoch up to `horizon`. `arrivals` is position-matched to
    /// the worker's owned-island order; `topo_active`, when set, is the
    /// freshly recomputed active-window mask to reapply from the link
    /// baseline; `actions` are this barrier's fault transitions.
    Epoch {
        horizon: SimTime,
        arrivals: Vec<Vec<RemoteDatagram>>,
        topo_active: Option<Vec<bool>>,
        actions: Vec<FaultAction>,
    },
    /// Run the finish closure on every owned island and exit.
    Finish,
}

/// Worker → coordinator reports.
enum Report<R> {
    /// All owned islands built; their post-build clocks, for T0 alignment.
    Built { nows: Vec<(usize, SimTime)> },
    /// All owned islands aligned to T0 and scoped.
    Ready,
    /// Epoch complete; each owned island's remote outbox.
    EpochDone { outboxes: Vec<(usize, Vec<RemoteDatagram>)> },
    /// Finish closure results, tagged with island index.
    Finished { results: Vec<(usize, R)> },
    /// An island's builder or epoch failed or panicked; the worker exits
    /// after sending this (mirrors the sweep engine's per-seed
    /// `catch_unwind` isolation).
    IslandFailed { island: usize, name: String, error: String },
}

/// Everything a worker thread holds for one island. Lives entirely on
/// that thread — `Testbed` and `CollectorState` are `!Send`.
struct IslandState {
    index: usize,
    name: String,
    tb: Testbed,
    /// The island's detached observability state, installed around every
    /// slice of island execution so per-island metrics are exactly what a
    /// dedicated thread would have recorded.
    obs_state: obs::CollectorState,
    /// Pristine link configuration saved right after build — the baseline
    /// partitions/degrades are reapplied from at every topology fence.
    baseline: LinkState,
}

/// Run `f` with `st`'s observability state installed as the thread-local
/// collector, restoring the ambient state afterwards. Every touch of an
/// island's testbed must go through here so interned metric handles stay
/// valid and per-island snapshots merge order-independently.
fn with_island<T>(st: &mut IslandState, f: impl FnOnce(&mut IslandState) -> T) -> T {
    let island = std::mem::replace(&mut st.obs_state, obs::fresh_state());
    let ambient = obs::swap_state(island);
    let out = f(st);
    st.obs_state = obs::swap_state(ambient);
    out
}

/// The periodic cross-island beacon: every island binds one at
/// `(node, 48)` and reports a counter to the island-0 aggregator, which
/// acks — guaranteed bidirectional cross-island traffic on every run.
struct IslandUplink {
    addr: Addr,
    target: Addr,
    period: SimDuration,
    island: u64,
    counter: u64,
    sent: obs::CounterId,
    acked: obs::CounterId,
}

impl Service for IslandUplink {
    fn on_start(&mut self, sim: &mut Sim) {
        sim.set_timer(self.addr, self.period, UPLINK_TIMER);
    }

    fn on_timer(&mut self, sim: &mut Sim, _token: TimerToken) {
        self.counter += 1;
        let payload = format!("island {} beacon {}", self.island, self.counter);
        sim.send(self.addr, self.target, Bytes::from(payload));
        obs::add(self.sent, 1);
        sim.set_timer(self.addr, self.period, UPLINK_TIMER);
    }

    fn on_datagram(&mut self, _sim: &mut Sim, _dg: Datagram) {
        obs::add(self.acked, 1);
    }
}

/// The island-0 sink for uplink beacons; acks each one back so every
/// island sees traffic in both directions.
struct IslandAggregator {
    addr: Addr,
    received: obs::CounterId,
}

impl Service for IslandAggregator {
    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        obs::add(self.received, 1);
        sim.send(self.addr, dg.src, Bytes::from_static(b"ack"));
    }
}

/// Duplicate of the sweep engine's private panic formatter.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Align an island to the global start time, install its island scope and
/// bind the cross-island beacon services.
fn start_island(st: &mut IslandState, t0: SimTime, period: SimDuration) {
    let now = st.tb.now();
    if t0 > now {
        st.tb.run_for(t0.since(now));
    }
    let node = NodeId(st.index as u32);
    st.tb.sim().set_island_scope(&[node]);
    let uplink = Rc::new(RefCell::new(IslandUplink {
        addr: Addr::new(node, UPLINK_PORT),
        target: Addr::new(NodeId(0), AGG_PORT),
        period,
        island: st.index as u64,
        counter: 0,
        sent: obs::counter("islands.uplink_sent"),
        acked: obs::counter("islands.uplink_acked"),
    }));
    st.tb.sim().bind(Addr::new(node, UPLINK_PORT), uplink);
    if st.index == 0 {
        let agg = Rc::new(RefCell::new(IslandAggregator {
            addr: Addr::new(node, AGG_PORT),
            received: obs::counter("islands.agg_received"),
        }));
        st.tb.sim().bind(Addr::new(node, AGG_PORT), agg);
    }
}

/// One island's share of one epoch: reapply link shaping if it changed,
/// apply fault transitions, inject the canonical arrival batch, run to
/// the horizon, and hand back the new remote outbox.
fn run_epoch(
    st: &mut IslandState,
    horizon: SimTime,
    incoming: Vec<RemoteDatagram>,
    topo_active: Option<&[bool]>,
    actions: &[FaultAction],
    windows: &[FaultWindow],
) -> Vec<RemoteDatagram> {
    if let Some(active) = topo_active {
        let baseline = st.baseline.clone();
        reapply_links(st.tb.sim().topology_mut(), &baseline, windows, active);
    }
    for action in actions {
        match action {
            FaultAction::Kill(name) => {
                // Broadcast: only the island that owns the digi finds it.
                let _ = st.tb.kill(name);
            }
            FaultAction::KillBroker(outage) => st.tb.kill_broker(*outage),
            FaultAction::NodeDown(node) => {
                if *node as usize == st.index {
                    let _ = st.tb.fail_node(NodeId(*node));
                }
            }
            FaultAction::NodeUp(node) => {
                if *node as usize == st.index {
                    st.tb.restore_node(NodeId(*node));
                }
            }
        }
    }
    for dg in incoming {
        st.tb.sim().inject_remote(dg);
    }
    let now = st.tb.now();
    if horizon > now {
        st.tb.run_for(horizon.since(now));
    }
    st.tb.sim().take_remote_outbox()
}

/// Worker thread body: build the owned islands, then serve the
/// coordinator's command stream until `Finish` (or failure).
fn worker_main<R, F>(
    islands: Vec<(usize, IslandSpec)>,
    seed: u64,
    k: usize,
    topology: Topology,
    uplink_period: SimDuration,
    cmd_rx: Receiver<Cmd>,
    res_tx: Sender<Report<R>>,
    finish: &F,
) where
    R: Send,
    F: Fn(usize, &mut Testbed, SimTime) -> R + Sync,
{
    let fail = |island: usize, name: &str, error: String| {
        let _ = res_tx.send(Report::IslandFailed { island, name: name.to_string(), error });
    };

    // Build every owned island on this thread (a Testbed is not Send),
    // each under a fresh observability state so metrics stay per-island.
    let mut states: Vec<IslandState> = Vec::with_capacity(islands.len());
    for (index, spec) in islands {
        let env = IslandEnv {
            seed,
            island: index,
            islands: k,
            node: NodeId(index as u32),
            topology: topology.clone(),
        };
        let IslandSpec { name, build } = spec;
        let ambient = obs::swap_state(obs::fresh_state());
        let built = catch_unwind(AssertUnwindSafe(|| build(&env)));
        let obs_state = obs::swap_state(ambient);
        let mut tb = match built {
            Ok(Ok(tb)) => tb,
            Ok(Err(e)) => return fail(index, &name, format!("builder failed: {e}")),
            Err(p) => {
                return fail(index, &name, format!("builder panicked: {}", panic_message(&*p)))
            }
        };
        if tb.config().home_node != Some(index as u32) {
            return fail(index, &name, format!("island testbed must set home_node = {index}"));
        }
        if tb.sim().topology().len() != k {
            return fail(
                index,
                &name,
                format!("island testbed must be built on the shared {k}-node island topology"),
            );
        }
        let baseline = tb.sim().topology().save_links();
        states.push(IslandState { index, name, tb, obs_state, baseline });
    }
    let nows = states.iter().map(|st| (st.index, st.tb.now())).collect();
    let _ = res_tx.send(Report::Built { nows });

    let mut t0 = SimTime::ZERO;
    let mut windows: Vec<FaultWindow> = Vec::new();
    loop {
        let cmd = match cmd_rx.recv() {
            Ok(cmd) => cmd,
            Err(_) => return, // coordinator gone (another island failed)
        };
        match cmd {
            Cmd::Start { t0: start, windows: w } => {
                t0 = start;
                windows = w;
                for st in &mut states {
                    let (index, name) = (st.index, st.name.clone());
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        with_island(st, |st| start_island(st, t0, uplink_period))
                    }));
                    if let Err(p) = r {
                        return fail(index, &name, format!("panicked: {}", panic_message(&*p)));
                    }
                }
                let _ = res_tx.send(Report::Ready);
            }
            Cmd::Epoch { horizon, arrivals, topo_active, actions } => {
                let mut outboxes = Vec::with_capacity(states.len());
                let mut arrivals = arrivals.into_iter();
                for st in &mut states {
                    let incoming = arrivals.next().unwrap_or_default();
                    let (index, name) = (st.index, st.name.clone());
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        with_island(st, |st| {
                            run_epoch(
                                st,
                                horizon,
                                incoming,
                                topo_active.as_deref(),
                                &actions,
                                &windows,
                            )
                        })
                    }));
                    match r {
                        Ok(out) => outboxes.push((index, out)),
                        Err(p) => {
                            return fail(index, &name, format!("panicked: {}", panic_message(&*p)))
                        }
                    }
                }
                let _ = res_tx.send(Report::EpochDone { outboxes });
            }
            Cmd::Finish => {
                let mut results = Vec::with_capacity(states.len());
                for st in &mut states {
                    let (index, name) = (st.index, st.name.clone());
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        with_island(st, |st| finish(index, &mut st.tb, t0))
                    }));
                    match r {
                        Ok(v) => results.push((index, v)),
                        Err(p) => {
                            return fail(index, &name, format!("panicked: {}", panic_message(&*p)))
                        }
                    }
                }
                let _ = res_tx.send(Report::Finished { results });
                return;
            }
        }
    }
}

/// Collect exactly one report per worker; any failure (or a dead channel)
/// aborts the run with a description of the failing island.
fn gather<R>(rx: &Receiver<Report<R>>, workers: usize) -> Result<Vec<Report<R>>, String> {
    let mut out = Vec::with_capacity(workers);
    for _ in 0..workers {
        match rx.recv() {
            Ok(Report::IslandFailed { island, name, error }) => {
                return Err(format!("island {island} ({name}): {error}"));
            }
            Ok(report) => out.push(report),
            Err(_) => return Err("island worker exited unexpectedly".to_string()),
        }
    }
    Ok(out)
}

/// Next barrier: `t + lookahead`, clamped to the first fault fence after
/// `t` and to the end of the run.
fn horizon(t: SimTime, lookahead: SimDuration, fences: &[SimTime], end: SimTime) -> SimTime {
    let mut h = t + lookahead;
    if h > end {
        h = end;
    }
    for &f in fences {
        if f > t {
            if f < h {
                h = f;
            }
            break; // fences are sorted: the first one past t is the nearest
        }
    }
    h
}

/// Merge the epoch's cross-island outboxes into one canonical per-island
/// arrival batch: sorted by `(arrival time, source island, send order)`,
/// then routed by destination node. Injection order decides wheel
/// sequence numbers for equal arrival times, so this sort — not channel
/// arrival order — is what keeps every digest worker-count independent.
fn route_arrivals(
    k: usize,
    pending: Vec<(usize, Vec<RemoteDatagram>)>,
) -> Vec<Vec<RemoteDatagram>> {
    let mut tagged: Vec<(u64, usize, usize, RemoteDatagram)> = Vec::new();
    for (src, outbox) in pending {
        for (idx, dg) in outbox.into_iter().enumerate() {
            tagged.push((dg.at.as_nanos(), src, idx, dg));
        }
    }
    tagged.sort_by_key(|&(at, src, idx, _)| (at, src, idx));
    let mut routed: Vec<Vec<RemoteDatagram>> = (0..k).map(|_| Vec::new()).collect();
    for (_, _, _, dg) in tagged {
        let dst = dg.datagram.dst.node.0 as usize;
        if dst < k {
            routed[dst].push(dg);
        }
    }
    routed
}

/// Resolve the fault transitions falling exactly on barrier `t`:
/// window starts first, then window ends (mirroring the serial campaign
/// runner). Returns the per-island actions plus whether link shaping
/// changed (partition/degrade start or heal) — the signal to reapply
/// topology and recompute the lookahead.
fn transitions_at(
    windows: &[FaultWindow],
    active: &mut [bool],
    t: SimTime,
) -> (Vec<FaultAction>, bool) {
    let mut actions = Vec::new();
    let mut topo_dirty = false;
    for (i, w) in windows.iter().enumerate() {
        if w.start != t {
            continue;
        }
        match &w.kind {
            FaultKind::CrashDigi { digi } => actions.push(FaultAction::Kill(digi.clone())),
            FaultKind::NodeDown { node } => {
                actions.push(FaultAction::NodeDown(*node));
                active[i] = true;
            }
            FaultKind::CrashBroker => {
                actions.push(FaultAction::KillBroker(w.end.since(w.start)));
            }
            FaultKind::Partition { .. } | FaultKind::Degrade { .. } => {
                active[i] = true;
                topo_dirty = true;
            }
        }
    }
    for (i, w) in windows.iter().enumerate() {
        if w.end != t || !active[i] {
            continue;
        }
        match &w.kind {
            FaultKind::NodeDown { node } => {
                actions.push(FaultAction::NodeUp(*node));
                active[i] = false;
            }
            FaultKind::Partition { .. } | FaultKind::Degrade { .. } => {
                active[i] = false;
                topo_dirty = true;
            }
            _ => {}
        }
    }
    (actions, topo_dirty)
}

/// Rebuild link shaping from the pristine baseline plus the currently
/// active partition/degrade windows. Used identically on the
/// coordinator's topology copy (for lookahead recomputation) and on every
/// island's own topology, so all clocks agree on link state.
fn reapply_links(
    topo: &mut Topology,
    baseline: &LinkState,
    windows: &[FaultWindow],
    active: &[bool],
) {
    topo.restore_links(baseline.clone());
    for (i, w) in windows.iter().enumerate() {
        if !active.get(i).copied().unwrap_or(false) {
            continue;
        }
        match &w.kind {
            FaultKind::Partition { left, right } => {
                let (l, r) = FaultPlan::partition_nodes(left, right);
                topo.partition(&l, &r);
            }
            FaultKind::Degrade { loss, extra_delay_ms, extra_jitter_ms } => {
                topo.degrade_all(
                    *loss,
                    SimDuration::from_millis(*extra_delay_ms),
                    SimDuration::from_millis(*extra_jitter_ms),
                );
            }
            _ => {}
        }
    }
}

/// Execute one space-parallel run: build every island on its worker
/// thread, align clocks, then drive the conservative-lookahead barrier
/// loop over `span` (with the fault `windows` of a chaos plan resolved at
/// epoch fences), and finally reduce each island through `finish`.
///
/// `finish` runs on the island's worker thread with that island's
/// observability state installed — `Testbed::obs_snapshot` inside it sees
/// exactly the island's own metrics. Results come back in island order.
///
/// Any island builder error, panic, or protocol violation aborts the
/// whole run with `Err("island {i} ({name}): ...")` while the remaining
/// workers unwind cleanly — mirroring the sweep engine's per-seed
/// isolation.
pub fn run<R, F>(
    seed: u64,
    specs: Vec<IslandSpec>,
    config: &IslandsConfig,
    span: SimDuration,
    faults: &[FaultWindow],
    finish: F,
) -> Result<IslandsRun<R>, String>
where
    R: Send,
    F: Fn(usize, &mut Testbed, SimTime) -> R + Sync,
{
    let k = specs.len();
    if k == 0 {
        return Err("islands::run needs at least one island".to_string());
    }
    let workers = resolve_jobs(config.workers).min(k);
    let topology = islands_cluster(k);

    let mut assignments: Vec<Vec<(usize, IslandSpec)>> = (0..workers).map(|_| Vec::new()).collect();
    let mut owned: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, spec) in specs.into_iter().enumerate() {
        assignments[i % workers].push((i, spec));
        owned[i % workers].push(i);
    }
    let uplink_period = config.uplink_period;
    let finish = &finish;

    // Worker threads are scoped: if coordination errors out, dropping the
    // command senders (end of this closure) unblocks every worker and the
    // scope joins them before `run` returns.
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = channel::<Report<R>>();
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(workers);
        for worker_islands in assignments {
            let (tx, rx) = channel::<Cmd>();
            cmd_txs.push(tx);
            let res_tx = res_tx.clone();
            let topo = topology.clone();
            scope.spawn(move || {
                worker_main(worker_islands, seed, k, topo, uplink_period, rx, res_tx, finish)
            });
        }
        drop(res_tx);
        coordinate(k, workers, &owned, &topology, span, faults, &cmd_txs, &res_rx)
    })
}

/// The coordinator side of [`run`]: T0 alignment, the barrier loop, and
/// result collection.
#[allow(clippy::too_many_arguments)]
fn coordinate<R: Send>(
    k: usize,
    workers: usize,
    owned: &[Vec<usize>],
    topology: &Topology,
    span: SimDuration,
    faults: &[FaultWindow],
    cmd_txs: &[Sender<Cmd>],
    res_rx: &Receiver<Report<R>>,
) -> Result<IslandsRun<R>, String> {
    // T0 alignment: builders run their settle phases freely (no cross
    // traffic exists yet), then every island catches up to the latest
    // clock so the barrier arithmetic starts from one shared instant.
    let mut nows: Vec<SimTime> = Vec::new();
    for report in gather(res_rx, workers)? {
        match report {
            Report::Built { nows: n } => nows.extend(n.into_iter().map(|(_, t)| t)),
            _ => return Err("island protocol error: expected Built".to_string()),
        }
    }
    let t0 = nows.into_iter().max().unwrap_or(SimTime::ZERO);
    let end = t0 + span;

    // Fault windows on the absolute clock; their edges become fences so
    // topology never changes mid-epoch.
    let windows: Vec<FaultWindow> = faults
        .iter()
        .map(|w| FaultWindow {
            index: w.index,
            start: t0 + w.start.since(SimTime::ZERO),
            end: t0 + w.end.since(SimTime::ZERO),
            kind: w.kind.clone(),
        })
        .collect();
    let mut fences: Vec<SimTime> = windows
        .iter()
        .flat_map(|w| [w.start, w.end])
        .filter(|&f| f > t0 && f < end)
        .collect();
    fences.sort();
    fences.dedup();

    for tx in cmd_txs {
        tx.send(Cmd::Start { t0, windows: windows.clone() })
            .map_err(|_| "island worker exited before start".to_string())?;
    }
    for report in gather(res_rx, workers)? {
        if !matches!(report, Report::Ready) {
            return Err("island protocol error: expected Ready".to_string());
        }
    }

    let mut coord_topo = topology.clone();
    let baseline = coord_topo.save_links();
    // One island has no cross pairs: the whole span is one epoch (plus
    // fences). Otherwise the lookahead is the minimum cross link delay.
    let mut lookahead = if k == 1 { span } else { min_cross_latency(&coord_topo)? };
    let mut active = vec![false; windows.len()];
    let mut pending: Vec<(usize, Vec<RemoteDatagram>)> = Vec::new();
    let mut epochs = 0u64;
    let mut cross_datagrams = 0u64;
    let mut t = t0;

    while t < end {
        let (actions, dirty) = transitions_at(&windows, &mut active, t);
        let topo_active = if dirty {
            reapply_links(&mut coord_topo, &baseline, &windows, &active);
            // The chaos-vs-islands contract: every degrade/partition/heal
            // recomputes the lookahead *at the fence*, so a healed link's
            // shorter delay only governs epochs that start after the heal
            // — a message can never arrive before a committed horizon.
            lookahead = if k == 1 { span } else { min_cross_latency(&coord_topo)? };
            Some(active.clone())
        } else {
            None
        };
        let h = horizon(t, lookahead, &fences, end);
        let mut routed = route_arrivals(k, std::mem::take(&mut pending));
        cross_datagrams += routed.iter().map(|v| v.len() as u64).sum::<u64>();
        for (w, tx) in cmd_txs.iter().enumerate() {
            let arrivals: Vec<Vec<RemoteDatagram>> =
                owned[w].iter().map(|&i| std::mem::take(&mut routed[i])).collect();
            tx.send(Cmd::Epoch {
                horizon: h,
                arrivals,
                topo_active: topo_active.clone(),
                actions: actions.clone(),
            })
            .map_err(|_| "island worker exited mid-epoch".to_string())?;
        }
        for report in gather(res_rx, workers)? {
            match report {
                Report::EpochDone { outboxes } => pending.extend(outboxes),
                _ => return Err("island protocol error: expected EpochDone".to_string()),
            }
        }
        epochs += 1;
        t = h;
    }

    for tx in cmd_txs {
        tx.send(Cmd::Finish).map_err(|_| "island worker exited before finish".to_string())?;
    }
    let mut results: Vec<(usize, R)> = Vec::with_capacity(k);
    for report in gather(res_rx, workers)? {
        match report {
            Report::Finished { results: r } => results.extend(r),
            _ => return Err("island protocol error: expected Finished".to_string()),
        }
    }
    results.sort_by_key(|r| r.0);
    Ok(IslandsRun {
        results: results.into_iter().map(|(_, r)| r).collect(),
        t0,
        epochs,
        cross_datagrams,
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::testbed::TestbedConfig;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn window(index: usize, start_ms: u64, end_ms: u64, kind: FaultKind) -> FaultWindow {
        FaultWindow { index, start: at(start_ms), end: at(end_ms), kind }
    }

    /// An empty-catalog island testbed on the shared topology: exercises
    /// the full engine (broker, control plane, beacons, barriers) without
    /// any digis, so it runs under the offline harness.
    fn bare_island(env: &IslandEnv, settle: SimDuration) -> crate::Result<Testbed> {
        let config = TestbedConfig {
            seed: env.seed,
            home_node: Some(env.island as u32),
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::new(env.topology.clone(), Catalog::new(), config);
        tb.run_for(settle);
        Ok(tb)
    }

    fn bare_specs(k: usize) -> Vec<IslandSpec> {
        (0..k)
            .map(|i| {
                // Deliberately skewed settle phases: T0 alignment must
                // erase the clock skew before any cross traffic flows.
                let settle = SimDuration::from_millis(100 * (i as u64 + 1));
                IslandSpec::new(format!("island-{i}"), move |env: &IslandEnv| {
                    bare_island(env, settle)
                })
            })
            .collect()
    }

    fn digest_run(workers: usize, k: usize, faults: &[FaultWindow]) -> IslandsRun<(u64, String)> {
        let config = IslandsConfig { workers, ..IslandsConfig::default() };
        run(
            7,
            bare_specs(k),
            &config,
            SimDuration::from_secs(3),
            faults,
            |_, tb: &mut Testbed, _| (tb.now().as_nanos(), tb.obs_snapshot().to_json()),
        )
        .expect("island run")
    }

    #[test]
    fn cluster_has_cross_latency_floor() {
        let topo = islands_cluster(3);
        assert_eq!(topo.len(), 3);
        assert_eq!(min_cross_latency(&topo).unwrap(), SimDuration::from_millis(5));
    }

    #[test]
    fn single_node_topology_has_no_lookahead() {
        assert!(min_cross_latency(&islands_cluster(1)).is_err());
    }

    #[test]
    fn zero_latency_link_is_rejected() {
        let mut topo = islands_cluster(2);
        let ids = topo.node_ids();
        let zero = LinkSpec {
            base_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 0,
        };
        topo.set_link(ids[0], ids[1], zero);
        assert!(min_cross_latency(&topo).unwrap_err().contains("zero"));
    }

    #[test]
    fn horizon_clamps_to_fence_and_end() {
        let fences = [at(12), at(30)];
        // Plain lookahead step.
        assert_eq!(horizon(at(0), SimDuration::from_millis(5), &fences, at(100)), at(5));
        // Nearest fence wins over the lookahead.
        assert_eq!(horizon(at(10), SimDuration::from_millis(5), &fences, at(100)), at(12));
        // A fence exactly at t does not stall the loop.
        assert_eq!(horizon(at(12), SimDuration::from_millis(5), &fences, at(100)), at(17));
        // End of run wins over everything.
        assert_eq!(horizon(at(98), SimDuration::from_millis(5), &fences, at(100)), at(100));
    }

    #[test]
    fn route_arrivals_is_canonical() {
        let dg = |ms: u64, dst: u32, tag: &'static [u8]| RemoteDatagram {
            at: at(ms),
            datagram: Datagram {
                src: Addr::new(NodeId(9), 1),
                dst: Addr::new(NodeId(dst), 2),
                payload: Bytes::from_static(tag),
            },
        };
        // Same outboxes, opposite channel arrival order.
        let forward = vec![
            (0, vec![dg(20, 2, b"a0-first"), dg(10, 2, b"a0-second")]),
            (1, vec![dg(10, 2, b"a1"), dg(30, 0, b"to-zero")]),
        ];
        let backward = vec![
            (1, vec![dg(10, 2, b"a1"), dg(30, 0, b"to-zero")]),
            (0, vec![dg(20, 2, b"a0-first"), dg(10, 2, b"a0-second")]),
        ];
        let f = route_arrivals(3, forward);
        let b = route_arrivals(3, backward);
        let tags = |routed: &Vec<Vec<RemoteDatagram>>, i: usize| {
            routed[i].iter().map(|d| d.datagram.payload.clone()).collect::<Vec<_>>()
        };
        assert_eq!(tags(&f, 2), tags(&b, 2));
        assert_eq!(tags(&f, 0), tags(&b, 0));
        // (at, src, send order): 10ms ties break by source island, then
        // the 20ms datagram even though it was first in its outbox.
        assert_eq!(
            tags(&f, 2),
            vec![
                Bytes::from_static(b"a0-second"),
                Bytes::from_static(b"a1"),
                Bytes::from_static(b"a0-first"),
            ]
        );
    }

    #[test]
    fn transitions_resolve_starts_then_ends() {
        let windows = [
            window(0, 10, 20, FaultKind::CrashDigi { digi: "L1".into() }),
            window(1, 20, 40, FaultKind::Degrade { loss: 0.1, extra_delay_ms: 2, extra_jitter_ms: 0 }),
            window(2, 10, 20, FaultKind::NodeDown { node: 1 }),
        ];
        let mut active = vec![false; 3];
        let (actions, dirty) = transitions_at(&windows, &mut active, at(10));
        assert_eq!(actions.len(), 2); // Kill + NodeDown
        assert!(!dirty);
        assert!(active[2]);
        // At 20ms the degrade starts and the node restores, same barrier.
        let (actions, dirty) = transitions_at(&windows, &mut active, at(20));
        assert!(dirty);
        assert!(active[1] && !active[2]);
        assert!(matches!(actions[0], FaultAction::NodeUp(1)));
        let (_, dirty) = transitions_at(&windows, &mut active, at(40));
        assert!(dirty);
        assert!(!active[1]);
    }

    #[test]
    fn reapply_links_restores_then_shapes() {
        let mut topo = islands_cluster(2);
        let baseline = topo.save_links();
        let ids = topo.node_ids();
        let windows = [window(
            0,
            0,
            10,
            FaultKind::Degrade { loss: 0.0, extra_delay_ms: 7, extra_jitter_ms: 0 },
        )];
        reapply_links(&mut topo, &baseline, &windows, &[true]);
        assert_eq!(topo.link(ids[0], ids[1]).base_delay, SimDuration::from_millis(12));
        reapply_links(&mut topo, &baseline, &windows, &[false]);
        assert_eq!(topo.link(ids[0], ids[1]).base_delay, SimDuration::from_millis(5));
    }

    /// Tests that materialize a [`Testbed`] — these run serde at
    /// construction (the control plane stores node specs as JSON), so the
    /// offline harness compiles but skips them (`--skip
    /// islands::tests::engine`); CI runs them with the real crates.
    mod engine {
        use super::*;

        #[test]
        fn worker_count_never_changes_digests() {
        let serial = digest_run(1, 2, &[]);
        let parallel = digest_run(2, 2, &[]);
        assert_eq!(serial.t0, parallel.t0);
        assert_eq!(serial.epochs, parallel.epochs);
        assert_eq!(serial.cross_datagrams, parallel.cross_datagrams);
        assert_eq!(serial.results, parallel.results);
        assert!(serial.epochs > 0);
        // The uplink beacons guarantee cross traffic every 500ms.
        assert!(serial.cross_datagrams > 0, "no cross-island traffic exchanged");
        // T0 alignment: both islands finish on the same clock.
        assert_eq!(serial.results[0].0, serial.results[1].0);
    }

    #[test]
    fn chaos_windows_fence_the_barrier_loop() {
        // Degrade then partition-and-heal mid-run: every transition must
        // land on a fence, recompute the lookahead, and keep the run
        // byte-identical across worker counts. A heal that let a message
        // arrive before a committed horizon would panic the injection
        // assert and fail this test.
        let faults = [
            window(
                0,
                300,
                600,
                FaultKind::Degrade { loss: 0.05, extra_delay_ms: 10, extra_jitter_ms: 2 },
            ),
            window(1, 600, 800, FaultKind::Partition { left: vec![0], right: vec![1] }),
        ];
        let serial = digest_run(1, 2, &faults);
        let parallel = digest_run(2, 2, &faults);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.epochs, parallel.epochs);
        assert!(serial.cross_datagrams > 0);
    }

    #[test]
    fn single_island_runs_whole_span_epochs() {
        let run = digest_run(1, 1, &[]);
        assert_eq!(run.results.len(), 1);
        // No cross pairs: lookahead is the whole span, one epoch.
        assert_eq!(run.epochs, 1);
        assert_eq!(run.cross_datagrams, 0);
    }

    #[test]
    fn panicking_island_fails_the_run_by_name() {
        let specs = vec![
            IslandSpec::new("ok", |env: &IslandEnv| {
                bare_island(env, SimDuration::from_millis(10))
            }),
            IslandSpec::new("boom", |_env: &IslandEnv| panic!("island exploded")),
        ];
        let err = run(
            1,
            specs,
            &IslandsConfig { workers: 2, ..IslandsConfig::default() },
            SimDuration::from_secs(1),
            &[],
            |_, _tb: &mut Testbed, _| (),
        )
        .unwrap_err();
        assert!(err.contains("island 1 (boom)"), "unexpected error: {err}");
        assert!(err.contains("island exploded"), "unexpected error: {err}");
    }

    #[test]
    fn missing_home_node_is_rejected() {
        let specs = vec![IslandSpec::new("rogue", |env: &IslandEnv| {
            let config = TestbedConfig { seed: env.seed, ..TestbedConfig::default() };
            Ok(Testbed::new(env.topology.clone(), Catalog::new(), config))
        })];
        let err = run(
            1,
            specs,
            &IslandsConfig::default(),
            SimDuration::from_secs(1),
            &[],
            |_, _tb: &mut Testbed, _| (),
        )
        .unwrap_err();
            assert!(err.contains("home_node"), "unexpected error: {err}");
        }
    }
}
