//! Pooled (FaaS-style) execution: pooled digis behave like dedicated ones
//! from an application's point of view, at a fraction of the runtime cost.

use std::collections::BTreeMap;

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_core::{AppEvent, Catalog, Testbed, TestbedConfig};
use digibox_model::{vmap, FieldKind, Schema, Value};
use digibox_net::SimDuration;

struct Counter;
impl DigiProgram for Counter {
    fn kind(&self) -> &str {
        "Counter"
    }
    fn version(&self) -> &str {
        "v1"
    }
    fn program_id(&self) -> &str {
        "test/counter"
    }
    fn schema(&self) -> Schema {
        Schema::new("Counter", "v1")
            .field("n", FieldKind::int())
            .field("limit", FieldKind::pair(FieldKind::int()))
    }
    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let n = ctx.model.lookup(&"n".into()).and_then(Value::as_int).unwrap_or(0);
        ctx.update(vmap! { "n" => n + 1 });
    }
    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("limit").cloned() {
            ctx.set_status("limit", want);
        }
    }
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(|| Box::new(Counter)).unwrap();
    c
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("C{i}")).collect()
}

#[test]
fn pooled_digis_tick_and_publish() {
    let mut tb = Testbed::laptop(catalog(), TestbedConfig::default());
    let (pool, _) = tb.run_pool("Counter", &names(10), BTreeMap::new(), false).unwrap();
    tb.run_for(SimDuration::from_secs(5));
    let p = pool.borrow();
    assert_eq!(p.len(), 10);
    let stats = p.stats();
    assert!(stats.ticks_dispatched >= 30, "ticks: {}", stats.ticks_dispatched);
    // the wheel consolidates: far fewer wakeups than (cells × ticks)
    assert!(stats.wheel_wakeups <= stats.ticks_dispatched);
    for name in p.names() {
        let n = p.model(name).unwrap().lookup(&"n".into()).and_then(Value::as_int).unwrap();
        assert!(n >= 3, "{name} only ticked {n} times");
    }
    // the trace logged pooled digi events like any other digi's
    assert!(tb.log().view().source("C0").tag("event").count() >= 3);
}

#[test]
fn pooled_rest_api_is_indistinguishable() {
    let mut tb = Testbed::laptop(catalog(), TestbedConfig::default());
    let (_pool, pool_addr) = tb.run_pool("Counter", &names(3), BTreeMap::new(), true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let app = tb.app(pool_addr.node);
    app.borrow_mut().get(tb.sim(), pool_addr, "/digi/C1/model");
    tb.run_for(SimDuration::from_millis(200));
    let events = app.borrow_mut().poll_all();
    let AppEvent::Response { status, body, .. } = &events[0] else {
        panic!("expected response, got {events:?}");
    };
    assert_eq!(*status, 200);
    let json: serde_json::Value = serde_json::from_slice(body).unwrap();
    assert_eq!(json["meta"]["name"], "C1");
    // unknown digi in the pool → 404
    app.borrow_mut().get(tb.sim(), pool_addr, "/digi/ghost/model");
    tb.run_for(SimDuration::from_millis(200));
    let events = app.borrow_mut().poll_all();
    assert!(matches!(events[0], AppEvent::Response { status: 404, .. }));
}

#[test]
fn pooled_intents_arrive_over_mqtt() {
    let mut tb = Testbed::laptop(catalog(), TestbedConfig::default());
    let (pool, _) = tb.run_pool("Counter", &names(3), BTreeMap::new(), true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    // publish an intent through the broker, exactly like `dbox edit`
    let app = tb.app_with_mqtt(tb.broker_addr().node, "editor");
    tb.run_for(SimDuration::from_millis(100));
    app.borrow_mut().publish(
        tb.sim(),
        "digibox/digi/C2/intent",
        &br#"{"limit": 99}"#[..],
        digibox_broker::QoS::AtLeastOnce,
    );
    tb.run_for(SimDuration::from_millis(500));
    let p = pool.borrow();
    let limit = p
        .model("C2")
        .unwrap()
        .status(&"limit".into())
        .unwrap()
        .as_int();
    assert_eq!(limit, Some(99));
    // only the addressed cell changed
    assert_eq!(
        p.model("C1").unwrap().status(&"limit".into()).unwrap().as_int(),
        Some(0)
    );
}

#[test]
fn pool_uses_one_broker_session_for_all_cells() {
    let mut tb = Testbed::laptop(catalog(), TestbedConfig::default());
    let sessions_before = tb.broker().borrow().session_count();
    let (_pool, _) = tb.run_pool("Counter", &names(50), BTreeMap::new(), false).unwrap();
    tb.run_for(SimDuration::from_secs(2));
    let sessions_after = tb.broker().borrow().session_count();
    assert_eq!(
        sessions_after - sessions_before,
        1,
        "50 pooled digis must share one broker session"
    );
}

#[test]
fn pooled_checkpoints_snapshot_columns_and_restore_in_place() {
    let mut tb = Testbed::laptop(catalog(), TestbedConfig::default());
    let (pool, _) = tb.run_pool("Counter", &names(5), BTreeMap::new(), false).unwrap();
    tb.run_for(SimDuration::from_secs(3));
    let n_at_ckpt = pool
        .borrow()
        .model("C3")
        .unwrap()
        .lookup(&"n".into())
        .and_then(Value::as_int)
        .unwrap();
    assert!(n_at_ckpt >= 2);
    tb.checkpoint_all();
    // every pooled member got a snapshot, read out of the model columns
    for name in ["C0", "C1", "C2", "C3", "C4"] {
        let info = tb.checkpoints().info(name).unwrap();
        assert!(info.revision > 0, "{name} checkpointed at revision 0");
    }
    // let the counter advance past the checkpoint, then roll C3 back
    tb.run_for(SimDuration::from_secs(3));
    let n_later = pool
        .borrow()
        .model("C3")
        .unwrap()
        .lookup(&"n".into())
        .and_then(Value::as_int)
        .unwrap();
    assert!(n_later > n_at_ckpt, "counter should advance between checkpoints");
    assert!(tb.restore_pooled("C3"));
    let p = pool.borrow();
    let n_restored = p.model("C3").unwrap().lookup(&"n".into()).and_then(Value::as_int).unwrap();
    assert_eq!(n_restored, n_at_ckpt, "restore must rewind to the checkpointed value");
    // the cell kept its slab slot: same arena id before and after
    assert!(p.id_of("C3").is_some());
    // unknown / un-pooled names restore nothing
    drop(p);
    assert!(!tb.restore_pooled("ghost"));
}

#[test]
fn evicted_cell_stops_ticking() {
    let mut tb = Testbed::laptop(catalog(), TestbedConfig::default());
    let (pool, _) = tb.run_pool("Counter", &names(2), BTreeMap::new(), false).unwrap();
    tb.run_for(SimDuration::from_secs(2));
    {
        let pool = pool.clone();
        let mut p = pool.borrow_mut();
        assert!(p.evict(tb.sim(), "C0"));
        assert!(!p.evict(tb.sim(), "C0"), "double evict is a no-op");
    }
    tb.run_for(SimDuration::from_secs(3));
    let p = pool.borrow();
    assert_eq!(p.len(), 1);
    assert!(p.model("C0").is_none());
    // C1 keeps running
    let n = p.model("C1").unwrap().lookup(&"n".into()).and_then(Value::as_int).unwrap();
    assert!(n >= 4);
}
