//! The kernel's event-storm watchdog catches non-converging scene
//! coordination — the bug class where a simulation handler re-randomizes
//! its writes on every run and the scene↔mock loop chases its own tail.

use std::collections::BTreeMap;

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_core::{Catalog, Testbed, TestbedConfig};
use digibox_model::{vmap, FieldKind, Schema};
use digibox_net::SimDuration;

struct Sensor;
impl DigiProgram for Sensor {
    fn kind(&self) -> &str {
        "Sensor"
    }
    fn version(&self) -> &str {
        "v1"
    }
    fn program_id(&self) -> &str {
        "test/sensor"
    }
    fn schema(&self) -> Schema {
        Schema::new("Sensor", "v1").field("level", FieldKind::float())
    }
    fn on_loop(&mut self, _ctx: &mut LoopCtx) {}
}

/// A deliberately broken scene: every simulation-handler run writes a
/// *fresh random* value to its child, so coordination never converges.
struct BadScene;
impl DigiProgram for BadScene {
    fn kind(&self) -> &str {
        "BadScene"
    }
    fn version(&self) -> &str {
        "v1"
    }
    fn program_id(&self) -> &str {
        "test/bad-scene"
    }
    fn is_scene(&self) -> bool {
        true
    }
    fn schema(&self) -> Schema {
        Schema::new("BadScene", "v1").field("noise", FieldKind::float())
    }
    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let noise = ctx.rng.f64();
        ctx.update(vmap! { "noise" => noise });
    }
    fn on_model(&mut self, ctx: &mut SimCtx) {
        // WRONG: fresh draw per handler run (see scenes::det_rng for the
        // correct pattern) — the child echo re-triggers this handler with
        // a different value forever.
        let v = ctx.rng.f64();
        for child in ctx.atts.of_type("Sensor").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&child, "level", v);
        }
    }
}

#[test]
fn watchdog_flags_non_converging_scene() {
    let mut catalog = Catalog::new();
    catalog.register(|| Box::new(Sensor)).unwrap();
    catalog.register(|| Box::new(BadScene)).unwrap();
    let mut tb = Testbed::laptop(
        catalog,
        TestbedConfig { storm_threshold: 50, ..Default::default() },
    );
    tb.run_with("Sensor", "S1", BTreeMap::new(), true).unwrap();
    tb.run("BadScene", "Bad").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("S1", "Bad").unwrap();
    // a short window is plenty: the storm saturates within milliseconds
    tb.run_for(SimDuration::from_millis(300));
    assert!(tb.storm_detected(), "the broken scene must trip the watchdog");
    // and it is reported in the trace like any other violation
    let violations = tb.violations();
    assert!(
        violations
            .iter()
            .any(|v| matches!(&v.kind, digibox_trace::RecordKind::Violation { property, .. }
                if property == "kernel/event-storm")),
        "storm should be logged as a violation"
    );
}

#[test]
fn watchdog_quiet_on_healthy_scenes() {
    let mut tb = Testbed::laptop(
        digibox_devices::full_catalog(),
        TestbedConfig { storm_threshold: 5_000, ..Default::default() },
    );
    tb.run_with("Occupancy", "O1", BTreeMap::new(), true).unwrap();
    tb.run("Room", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(20));
    assert!(!tb.storm_detected());
    assert!(tb.violations().is_empty());
}
