//! End-to-end tests of the core runtime: the paper's smart-building
//! walkthrough (Fig. 3–6) built from scratch with inline programs.

use std::collections::BTreeMap;

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_core::{
    AppClient, AppEvent, Catalog, Condition, FidelityMode, SceneProperty, Testbed, TestbedConfig,
};
use digibox_core::properties::DigiCondition;
use digibox_model::{vmap, FieldKind, Schema, Value};
use digibox_net::SimDuration;

/// The paper's mock occupancy sensor (Fig. 4, top).
struct Occupancy;

impl DigiProgram for Occupancy {
    fn kind(&self) -> &str {
        "Occupancy"
    }
    fn version(&self) -> &str {
        "v1"
    }
    fn program_id(&self) -> &str {
        "test/occupancy"
    }
    fn schema(&self) -> Schema {
        Schema::new("Occupancy", "v1").field("triggered", FieldKind::Bool)
    }
    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let motion = ctx.rng.coin(); // random.choice([True, False])
        ctx.update(vmap! { "triggered" => motion });
    }
    fn on_model(&mut self, _ctx: &mut SimCtx) {}
}

/// The paper's mock lamp (Fig. 4, bottom).
struct Lamp;

impl DigiProgram for Lamp {
    fn kind(&self) -> &str {
        "Lamp"
    }
    fn version(&self) -> &str {
        "v1"
    }
    fn program_id(&self) -> &str {
        "test/lamp"
    }
    fn schema(&self) -> Schema {
        Schema::new("Lamp", "v1")
            .field("power", FieldKind::pair(FieldKind::enumeration(["off", "on"])))
            .field("intensity", FieldKind::pair(FieldKind::float_range(0.0, 1.0)))
    }
    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("power").cloned() {
            ctx.set_status("power", want);
        }
        if ctx.status_str("power").as_deref() == Some("off") {
            ctx.set_status("intensity", 0.0);
        } else if let Some(want) = ctx.intent("intensity").cloned() {
            ctx.set_status("intensity", want);
        }
    }
}

/// The paper's room scene (Fig. 5, top): keeps occupancy sensors consistent
/// with human presence.
struct Room;

impl DigiProgram for Room {
    fn kind(&self) -> &str {
        "Room"
    }
    fn version(&self) -> &str {
        "v2"
    }
    fn program_id(&self) -> &str {
        "test/room"
    }
    fn is_scene(&self) -> bool {
        true
    }
    fn schema(&self) -> Schema {
        Schema::new("Room", "v2").field("human_presence", FieldKind::Bool)
    }
    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let presence = ctx.rng.coin();
        ctx.update(vmap! { "human_presence" => presence });
    }
    fn on_model(&mut self, ctx: &mut SimCtx) {
        let presence = ctx.field_bool("human_presence").unwrap_or(false);
        for occ in ctx.atts.of_type("Occupancy").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&occ, "triggered", presence);
        }
        for desk in ctx.atts.of_type("Underdesk").into_iter().map(str::to_string).collect::<Vec<_>>() {
            if !presence {
                ctx.atts.set(&desk, "triggered", false);
            }
        }
    }
}

/// The paper's building scene (Fig. 5, bottom): assigns humans to rooms.
struct Building;

impl DigiProgram for Building {
    fn kind(&self) -> &str {
        "Building"
    }
    fn version(&self) -> &str {
        "v3"
    }
    fn program_id(&self) -> &str {
        "test/building"
    }
    fn is_scene(&self) -> bool {
        true
    }
    fn schema(&self) -> Schema {
        Schema::new("Building", "v3").field("num_human", FieldKind::int_range(0, 100))
    }
    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let num = ctx.rng.range_i64(0, 3);
        ctx.update(vmap! { "num_human" => num });
    }
    fn on_model(&mut self, ctx: &mut SimCtx) {
        let rooms: Vec<String> =
            ctx.atts.of_type("Room").into_iter().map(str::to_string).collect();
        if rooms.is_empty() {
            return;
        }
        let num = ctx.field_i64("num_human").unwrap_or(0) as usize;
        // pick rooms for the humans (with replacement, like the paper);
        // the draw is derived from the model state so handler re-runs
        // converge instead of re-rolling forever
        let mut det = digibox_net::Prng::new(ctx.model.meta.seed() ^ num as u64);
        let mut picked = std::collections::BTreeSet::new();
        for _ in 0..num {
            if let Some(r) = det.choice(&rooms) {
                picked.insert(r.clone());
            }
        }
        for room in rooms {
            let presence = picked.contains(&room);
            ctx.atts.set(&room, "human_presence", presence);
        }
    }
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(|| Box::new(Occupancy)).unwrap();
    c.register(|| Box::new(Lamp)).unwrap();
    c.register(|| Box::new(Room)).unwrap();
    c.register(|| Box::new(Building)).unwrap();
    c
}

fn laptop_testbed() -> Testbed {
    Testbed::laptop(catalog(), TestbedConfig::default())
}

#[test]
fn mock_generates_events_on_its_loop() {
    let mut tb = laptop_testbed();
    tb.run("Occupancy", "O1").unwrap();
    tb.run_for(SimDuration::from_secs(5));
    let digi = tb.digi("O1").unwrap();
    let stats = digi.borrow().stats().clone();
    assert!(stats.loops_run >= 3, "loop ran {} times", stats.loops_run);
    assert!(stats.events_emitted >= 3);
    // trace has event records from O1
    let events = tb.log().view().source("O1").tag("event").count();
    assert!(events >= 3, "only {events} events logged");
}

#[test]
fn managed_mock_stays_quiet() {
    let mut tb = laptop_testbed();
    tb.run_with("Occupancy", "O1", BTreeMap::new(), true).unwrap();
    tb.run_for(SimDuration::from_secs(5));
    let digi = tb.digi("O1").unwrap();
    assert_eq!(digi.borrow().stats().loops_run, 0);
}

#[test]
fn lamp_simulation_follows_intent_via_edit() {
    let mut tb = laptop_testbed();
    tb.run_with("Lamp", "L1", BTreeMap::new(), false).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    // dbox edit L1: set power intent on, intensity 0.7
    tb.edit("L1", vmap! { "power" => "on", "intensity" => 0.7 }).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let model = tb.check("L1").unwrap();
    assert_eq!(
        model.status(&"power".into()).unwrap().as_str(),
        Some("on"),
        "model: {model:?}"
    );
    assert_eq!(model.status(&"intensity".into()).unwrap().as_float(), Some(0.7));
    // turning power off forces intensity to 0 (Fig. 4 logic)
    tb.edit("L1", vmap! { "power" => "off" }).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let model = tb.check("L1").unwrap();
    assert_eq!(model.status(&"intensity".into()).unwrap().as_float(), Some(0.0));
}

#[test]
fn scene_correlates_attached_sensors() {
    let mut tb = laptop_testbed();
    // managed sensors: the room drives them
    tb.run_with("Occupancy", "O1", BTreeMap::new(), true).unwrap();
    tb.run_with("Occupancy", "O2", BTreeMap::new(), true).unwrap();
    tb.run("Room", "MeetingRoom").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "MeetingRoom").unwrap();
    tb.attach("O2", "MeetingRoom").unwrap();
    // let several presence events flow through
    tb.run_for(SimDuration::from_secs(10));
    // after the run, both sensors must agree with the room's presence
    let presence = tb
        .check("MeetingRoom")
        .unwrap()
        .lookup(&"human_presence".into())
        .and_then(Value::as_bool)
        .unwrap();
    for sensor in ["O1", "O2"] {
        let triggered = tb
            .check(sensor)
            .unwrap()
            .lookup(&"triggered".into())
            .and_then(Value::as_bool)
            .unwrap();
        assert_eq!(triggered, presence, "{sensor} out of sync with room");
    }
}

#[test]
fn nested_scenes_building_drives_rooms() {
    let mut tb = laptop_testbed();
    tb.run_with("Occupancy", "O1", BTreeMap::new(), true).unwrap();
    tb.run_with("Room", "MeetingRoom", BTreeMap::new(), true).unwrap();
    tb.run_with("Room", "Kitchen", BTreeMap::new(), true).unwrap();
    tb.run("Building", "ConfCenter").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "MeetingRoom").unwrap();
    tb.attach("MeetingRoom", "ConfCenter").unwrap();
    tb.attach("Kitchen", "ConfCenter").unwrap();
    tb.run_for(SimDuration::from_secs(10));
    // rooms got presence assignments from the building
    let mr = tb.check("MeetingRoom").unwrap();
    assert!(mr.lookup(&"human_presence".into()).is_some());
    // the building generated num_human events
    let building_events = tb.log().view().source("ConfCenter").tag("event").count();
    assert!(building_events >= 5, "building generated {building_events} events");
    // sensor tracked its room
    let presence =
        mr.lookup(&"human_presence".into()).and_then(Value::as_bool).unwrap();
    let triggered = tb
        .check("O1")
        .unwrap()
        .lookup(&"triggered".into())
        .and_then(Value::as_bool)
        .unwrap();
    assert_eq!(triggered, presence);
}

#[test]
fn rest_get_returns_model() {
    let mut tb = laptop_testbed();
    tb.run("Lamp", "L1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let node = tb.digi_addr("L1").unwrap().node;
    let app: digibox_net::ServiceHandle<AppClient> = tb.app(node);
    let server = tb.digi_addr("L1").unwrap();
    app.borrow_mut().get(tb.sim(), server, "/model");
    tb.run_for(SimDuration::from_millis(100));
    let events = app.borrow_mut().poll_all();
    assert_eq!(events.len(), 1);
    let AppEvent::Response { status, body, latency, .. } = &events[0] else {
        panic!("expected a response, got {events:?}");
    };
    assert_eq!(*status, 200);
    assert!(*latency > SimDuration::ZERO);
    let json: serde_json::Value = serde_json::from_slice(body).unwrap();
    assert_eq!(json["meta"]["type"], "Lamp");
    assert!(json["fields"]["power"].is_object());
}

#[test]
fn rest_path_get_and_post_intent() {
    let mut tb = laptop_testbed();
    tb.run("Lamp", "L1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let server = tb.digi_addr("L1").unwrap();
    let app = tb.app(server.node);
    // POST /intent {"power": "on"}
    app.borrow_mut().post_json(tb.sim(), server, "/intent", r#"{"power":"on"}"#);
    tb.run_for(SimDuration::from_millis(500));
    // GET /model/power/status
    app.borrow_mut().get(tb.sim(), server, "/model/power/status");
    tb.run_for(SimDuration::from_millis(100));
    let events = app.borrow_mut().poll_all();
    let last = events.last().unwrap();
    let AppEvent::Response { status, body, .. } = last else {
        panic!("expected response");
    };
    assert_eq!(*status, 200);
    assert_eq!(body.as_ref(), b"\"on\"");
    // unknown path → 404
    app.borrow_mut().get(tb.sim(), server, "/model/nope");
    tb.run_for(SimDuration::from_millis(100));
    let events = app.borrow_mut().poll_all();
    assert!(matches!(events[0], AppEvent::Response { status: 404, .. }));
}

#[test]
fn property_violation_detected() {
    let mut tb = laptop_testbed();
    tb.run_with("Lamp", "L1", BTreeMap::new(), false).unwrap();
    tb.run_with("Occupancy", "O1", BTreeMap::new(), true).unwrap();
    tb.add_property(SceneProperty::never(
        "lamp-off-when-empty",
        vec![
            DigiCondition::new("L1", Condition::eq("power.status", "on")),
            DigiCondition::new("O1", Condition::eq("triggered", false)),
        ],
    ));
    tb.run_for(SimDuration::from_secs(1));
    // force the disallowed state: sensor untriggered (default) + lamp on
    tb.edit("L1", vmap! { "power" => "on" }).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let violations = tb.violations();
    assert!(!violations.is_empty(), "violation not detected");
}

#[test]
fn device_centric_mode_breaks_correlation() {
    let mut config = TestbedConfig::default();
    config.fidelity = FidelityMode::DeviceCentric;
    let mut tb = Testbed::laptop(catalog(), config);
    tb.run_with("Occupancy", "O1", BTreeMap::new(), true).unwrap();
    tb.run_with("Occupancy", "O2", BTreeMap::new(), true).unwrap();
    tb.run("Room", "MeetingRoom").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "MeetingRoom").unwrap();
    tb.attach("O2", "MeetingRoom").unwrap();
    tb.run_for(SimDuration::from_secs(30));
    // In device-centric mode the sensors generate independently; over 30
    // ticks they must disagree at least once (probability of always
    // agreeing is ~2^-30).
    let o1_events = tb.log().view().source("O1").tag("event").collect();
    let o2_events = tb.log().view().source("O2").tag("event").collect();
    assert!(o1_events.len() >= 20);
    let disagreements = o1_events
        .iter()
        .zip(&o2_events)
        .filter(|(a, b)| {
            let va = match &a.kind {
                digibox_trace::RecordKind::Event { data } => data.get("triggered").cloned(),
                _ => None,
            };
            let vb = match &b.kind {
                digibox_trace::RecordKind::Event { data } => data.get("triggered").cloned(),
                _ => None,
            };
            va != vb
        })
        .count();
    assert!(disagreements > 0, "independent sensors never disagreed");
}

#[test]
fn stop_removes_digi_and_detaches() {
    let mut tb = laptop_testbed();
    tb.run_with("Occupancy", "O1", BTreeMap::new(), true).unwrap();
    tb.run("Room", "MeetingRoom").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "MeetingRoom").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.stop("O1").unwrap();
    assert!(tb.check("O1").is_err());
    let room = tb.check("MeetingRoom").unwrap();
    assert!(room.meta.attach.is_empty(), "room still references O1: {:?}", room.meta.attach);
    tb.run_for(SimDuration::from_secs(2)); // no panics from dangling traffic
}

#[test]
fn seeded_runs_are_identical() {
    let run = |seed: u64| {
        let mut tb = Testbed::laptop(catalog(), TestbedConfig { seed, ..Default::default() });
        tb.run("Occupancy", "O1").unwrap();
        tb.run("Room", "MeetingRoom").unwrap();
        tb.run_for(SimDuration::from_secs(1));
        tb.attach("O1", "MeetingRoom").unwrap();
        tb.run_for(SimDuration::from_secs(10));
        tb.log()
            .view()
            .tag("event")
            .collect()
            .iter()
            .map(|r| format!("{} {:?}", r.source, r.kind))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7), "same seed must reproduce the same event stream");
    assert_ne!(run(7), run(8), "different seeds should diverge");
}

#[test]
fn actuation_delay_defers_intent() {
    let mut tb = laptop_testbed();
    let params: BTreeMap<String, Value> =
        [("actuation_delay_ms".to_string(), Value::Int(2000))].into_iter().collect();
    tb.run_with("Lamp", "L1", params, false).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.edit("L1", vmap! { "power" => "on" }).unwrap();
    // shortly after the edit the actuation hasn't landed yet
    tb.run_for(SimDuration::from_millis(500));
    let model = tb.check("L1").unwrap();
    assert_eq!(model.status(&"power".into()).unwrap().as_str(), Some("off"));
    // after the actuation delay it has
    tb.run_for(SimDuration::from_secs(3));
    let model = tb.check("L1").unwrap();
    assert_eq!(model.status(&"power".into()).unwrap().as_str(), Some("on"));
}

#[test]
fn kill_restarts_with_fresh_state() {
    let mut tb = laptop_testbed();
    tb.run("Lamp", "L1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.edit("L1", vmap! { "power" => "on" }).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    assert_eq!(tb.check("L1").unwrap().status(&"power".into()).unwrap().as_str(), Some("on"));
    tb.kill("L1").unwrap();
    assert!(tb.check("L1").is_err(), "killed digi gone until restart");
    tb.run_for(SimDuration::from_secs(3));
    // restarted with default (off) state, like a fresh container
    let model = tb.check("L1").unwrap();
    assert_eq!(model.status(&"power".into()).unwrap().as_str(), Some("off"));
}
