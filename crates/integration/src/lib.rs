//! Shared helpers for the workspace-level integration tests in `/tests`.

use std::collections::BTreeMap;

use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;

/// A laptop testbed with the full device library.
pub fn laptop(seed: u64) -> Testbed {
    Testbed::laptop(full_catalog(), TestbedConfig { seed, ..Default::default() })
}

/// Empty params shorthand.
pub fn no_params() -> BTreeMap<String, Value> {
    BTreeMap::new()
}
