//! Property-based tests on the control plane: arbitrary interleavings of
//! create/reconcile/run/crash/delete/node-failure never violate the
//! scheduler's accounting invariants.

use proptest::prelude::*;

use digibox_net::{NodeId, NodeSpec, SimDuration};
use digibox_orchestrator::{ControlPlane, ControlPlaneConfig, PodAction, PodPhase, PodSpec};

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Reconcile,
    MarkRunning(u8),
    Crash(u8),
    Delete(u8),
    FailNode(u8),
    RestoreNode(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..40).prop_map(Op::Create),
        Just(Op::Reconcile),
        (0u8..40).prop_map(Op::MarkRunning),
        (0u8..40).prop_map(Op::Crash),
        (0u8..40).prop_map(Op::Delete),
        (0u8..3).prop_map(Op::FailNode),
        (0u8..3).prop_map(Op::RestoreNode),
    ]
}

fn node_spec(i: u32) -> NodeSpec {
    NodeSpec {
        label: format!("n{i}"),
        cpu_millis: 100, // 20 mocks fit per node
        mem_mib: 10_000,
        service_overhead: SimDuration::ZERO,
    }
}

fn check_invariants(cp: &ControlPlane) {
    let mut per_node_pods = std::collections::BTreeMap::new();
    for name in cp.pod_names() {
        if let Some(phase) = cp.phase(&name) {
            if let Some(node) = phase.node() {
                *per_node_pods.entry(node).or_insert(0u32) += 1;
            }
            // store agrees that the pod exists
            assert!(
                cp.store().get("Pod", &name).is_some(),
                "pod {name} tracked but not in the store"
            );
        }
    }
    for (id, alloc) in cp.scheduler().nodes() {
        // never over capacity
        assert!(
            alloc.cpu_allocated <= alloc.spec.cpu_millis,
            "{id}: cpu over-allocated ({}/{})",
            alloc.cpu_allocated,
            alloc.spec.cpu_millis
        );
        assert!(alloc.mem_allocated <= alloc.spec.mem_mib, "{id}: memory over-allocated");
        // scheduler's pod count matches the placed pods we can see
        let seen = per_node_pods.get(id).copied().unwrap_or(0);
        assert_eq!(alloc.pods, seen, "{id}: scheduler count {} != placed {seen}", alloc.pods);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn control_plane_invariants_hold_under_arbitrary_ops(
        ops in prop::collection::vec(op(), 1..80)
    ) {
        let nodes: Vec<(NodeId, NodeSpec)> =
            (0..3).map(|i| (NodeId(i), node_spec(i))).collect();
        let mut cp = ControlPlane::new(&nodes, ControlPlaneConfig::default());
        let pod_name = |i: u8| format!("p{i}");
        for op in ops {
            match op {
                Op::Create(i) => {
                    let _ = cp.create_pod(PodSpec::mock(&pod_name(i), "img"));
                }
                Op::Reconcile => {
                    for action in cp.reconcile() {
                        // every start action names a pod the plane knows,
                        // now in Starting phase on the named node
                        if let PodAction::Start { pod, node, .. } = action {
                            prop_assert_eq!(
                                cp.phase(&pod),
                                Some(PodPhase::Starting { node })
                            );
                        }
                    }
                }
                Op::MarkRunning(i) => cp.mark_running(&pod_name(i)),
                Op::Crash(i) => {
                    let _ = cp.report_exit(&pod_name(i));
                }
                Op::Delete(i) => {
                    let _ = cp.delete_pod(&pod_name(i));
                }
                Op::FailNode(n) => {
                    cp.fail_node(NodeId(n as u32));
                }
                Op::RestoreNode(n) => {
                    cp.restore_node(NodeId(n as u32));
                }
            }
            check_invariants(&cp);
        }
        // terminal sanity: a final reconcile still keeps the invariants
        cp.reconcile();
        check_invariants(&cp);
    }

    #[test]
    fn delete_everything_returns_to_empty(
        n_pods in 1u8..30,
    ) {
        let nodes: Vec<(NodeId, NodeSpec)> =
            (0..2).map(|i| (NodeId(i), node_spec(i))).collect();
        let mut cp = ControlPlane::new(&nodes, ControlPlaneConfig::default());
        for i in 0..n_pods {
            cp.create_pod(PodSpec::mock(&format!("p{i}"), "img")).unwrap();
        }
        cp.reconcile();
        for i in 0..n_pods {
            let _ = cp.delete_pod(&format!("p{i}"));
        }
        prop_assert_eq!(cp.scheduler().total_pods(), 0, "all resources must be returned");
        for (_, alloc) in cp.scheduler().nodes() {
            prop_assert_eq!(alloc.cpu_allocated, 0);
            prop_assert_eq!(alloc.mem_allocated, 0);
        }
    }
}
