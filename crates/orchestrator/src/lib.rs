//! # digibox-orchestrator
//!
//! A miniature declarative orchestrator — the stand-in for the paper's
//! Kubernetes + dSpace runtime (§4). Digibox deploys every mock and scene
//! controller as a "digi" microservice; this crate provides the pieces of
//! Kubernetes that deployment actually relies on:
//!
//! * [`ObjectStore`] — a typed object store with optimistic concurrency
//!   (resource versions) and ordered watch streams, the communication
//!   backbone of the control plane (and of dSpace-style digis, which talk
//!   through their model objects).
//! * [`PodSpec`]/[`PodPhase`] — pod-like units with CPU/memory requests and
//!   a lifecycle state machine.
//! * [`Scheduler`] — filter + score (least-allocated) placement onto the
//!   simulated nodes.
//! * [`ControlPlane`] — ties it together: reconciles desired pods against
//!   node capacity and emits timed [`PodAction`]s that the testbed applies
//!   on the simulation kernel (container startup delays, restarts,
//!   evictions on node failure).

mod control;
mod object;
mod pod;
mod scheduler;

pub use control::{ControlPlane, ControlPlaneConfig, PodAction};
pub use object::{ObjectStore, StoreError, StoredObject, WatchCursor, WatchEvent};
pub use pod::{PodPhase, PodSpec, RestartPolicy};
pub use scheduler::{NodeAlloc, ScheduleError, Scheduler};
