//! The control plane: desired pods → scheduled, started, restarted pods.
//!
//! `ControlPlane` is deliberately *pure with respect to time*: `reconcile`
//! makes decisions and returns [`PodAction`]s with relative delays; the
//! testbed applies them on the simulation kernel and reports back via
//! `mark_running` / `report_exit`. This keeps the orchestrator unit-testable
//! without a kernel and mirrors the controller/apiserver split in
//! Kubernetes.

use std::collections::BTreeMap;

use digibox_model::Value;
use digibox_net::{NodeId, NodeSpec, Prng, SimDuration};

use crate::object::{ObjectStore, StoreError};
use crate::pod::{PodPhase, PodSpec, RestartPolicy};
use crate::scheduler::{ScheduleError, Scheduler};

/// Startup/behaviour knobs.
#[derive(Debug, Clone)]
pub struct ControlPlaneConfig {
    /// Container cold-start delay: base + U(0, jitter). Defaults model a
    /// warm-image `docker run` (the paper's mocks are tiny Python images).
    pub startup_base: SimDuration,
    pub startup_jitter: SimDuration,
    /// First restart delay after a crash; doubles on every consecutive
    /// crash (k8s-style exponential backoff).
    pub restart_backoff_base: SimDuration,
    /// Ceiling for the restart backoff. Once the doubling schedule hits
    /// the cap the pod is considered crash-looping (`CrashLoopBackOff`).
    pub restart_backoff_cap: SimDuration,
    /// RNG seed for startup jitter.
    pub seed: u64,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            startup_base: SimDuration::from_millis(150),
            startup_jitter: SimDuration::from_millis(250),
            restart_backoff_base: SimDuration::from_millis(500),
            restart_backoff_cap: SimDuration::from_secs(10),
            seed: 0xC0_FFEE,
        }
    }
}

/// An instruction to the testbed runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum PodAction {
    /// Start the pod's process on `node` after `delay` (container start).
    Start { pod: String, image: String, node: NodeId, delay: SimDuration },
    /// Stop the pod's process now (delete or eviction).
    Stop { pod: String, node: NodeId },
    /// The pod cannot be placed; surfaced so tests/CLI can report it.
    MarkUnschedulable { pod: String },
}

#[derive(Debug, Clone)]
struct PodRecord {
    spec: PodSpec,
    phase: PodPhase,
    restarts: u32,
}

/// The control plane.
pub struct ControlPlane {
    store: ObjectStore,
    scheduler: Scheduler,
    pods: BTreeMap<String, PodRecord>,
    rng: Prng,
    config: ControlPlaneConfig,
}

impl ControlPlane {
    pub fn new(nodes: &[(NodeId, NodeSpec)], config: ControlPlaneConfig) -> ControlPlane {
        let mut scheduler = Scheduler::new();
        let mut store = ObjectStore::new();
        for (id, spec) in nodes {
            scheduler.add_node(*id, spec.clone());
            let spec_val = Value::from_json(
                &serde_json::to_value(spec).expect("node spec serializes"),
            );
            store
                .create("Node", &spec.label, spec_val)
                .expect("node labels are unique");
        }
        let rng = Prng::new(config.seed).split_str("control-plane");
        ControlPlane { store, scheduler, pods: BTreeMap::new(), rng, config }
    }

    /// The backing object store (pods and nodes are visible here, which is
    /// what `dbox check` inspects for runtime state).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    pub fn phase(&self, pod: &str) -> Option<PodPhase> {
        self.pods.get(pod).map(|p| p.phase)
    }

    pub fn running_count(&self) -> usize {
        self.pods.values().filter(|p| p.phase.is_running()).count()
    }

    pub fn pod_names(&self) -> Vec<String> {
        self.pods.keys().cloned().collect()
    }

    /// Declare a pod (desired state). It becomes `Pending` until the next
    /// `reconcile`.
    pub fn create_pod(&mut self, spec: PodSpec) -> Result<(), StoreError> {
        let spec_val = Value::from_json(&serde_json::to_value(&spec).expect("pod spec serializes"));
        self.store.create("Pod", &spec.name, spec_val)?;
        self.store.modify("Pod", &spec.name, |_, status| {
            *status = digibox_model::vmap! { "phase" => "Pending" };
        })?;
        self.pods.insert(
            spec.name.clone(),
            PodRecord { spec, phase: PodPhase::Pending, restarts: 0 },
        );
        Ok(())
    }

    /// Remove a pod (desired deletion). Returns the stop action when it was
    /// placed.
    pub fn delete_pod(&mut self, name: &str) -> Result<Vec<PodAction>, StoreError> {
        let record = self.pods.remove(name).ok_or_else(|| StoreError::NotFound {
            kind: "Pod".into(),
            name: name.into(),
        })?;
        self.store.delete("Pod", name)?;
        let mut actions = Vec::new();
        if let Some(node) = record.phase.node() {
            self.scheduler.unplace(node, &record.spec);
            actions.push(PodAction::Stop { pod: name.to_string(), node });
        }
        Ok(actions)
    }

    /// One reconcile pass: place every `Pending` pod, emit start actions.
    pub fn reconcile(&mut self) -> Vec<PodAction> {
        let mut actions = Vec::new();
        let pending: Vec<String> = self
            .pods
            .iter()
            .filter(|(_, p)| matches!(p.phase, PodPhase::Pending))
            .map(|(n, _)| n.clone())
            .collect();
        for name in pending {
            let record = self.pods.get(&name).expect("pod exists");
            match self.scheduler.place(&record.spec) {
                Ok(node) => {
                    let delay = self.config.startup_base
                        + SimDuration::from_nanos(
                            self.rng
                                .range_u64(0, self.config.startup_jitter.as_nanos().max(1)),
                        );
                    let record = self.pods.get_mut(&name).expect("pod exists");
                    record.phase = PodPhase::Starting { node };
                    let image = record.spec.image.clone();
                    self.set_status_phase(&name, &format!("Starting on {node}"));
                    actions.push(PodAction::Start { pod: name, image, node, delay });
                }
                Err(ScheduleError::Unschedulable { .. }) | Err(ScheduleError::UnknownNode(_)) => {
                    let record = self.pods.get_mut(&name).expect("pod exists");
                    record.phase = PodPhase::Unschedulable;
                    self.set_status_phase(&name, "Unschedulable");
                    actions.push(PodAction::MarkUnschedulable { pod: name });
                }
            }
        }
        actions
    }

    /// The testbed reports the container finished starting.
    pub fn mark_running(&mut self, name: &str) {
        if let Some(record) = self.pods.get_mut(name) {
            if let PodPhase::Starting { node } = record.phase {
                record.phase = PodPhase::Running { node };
                self.set_status_phase(name, "Running");
            }
        }
    }

    /// The testbed reports the pod's process exited (crash or node fault).
    /// Returns follow-up actions (restart after delay, per policy).
    pub fn report_exit(&mut self, name: &str) -> Vec<PodAction> {
        let base = self.config.restart_backoff_base;
        let cap = self.config.restart_backoff_cap;
        let Some(record) = self.pods.get_mut(name) else {
            return Vec::new();
        };
        let Some(node) = record.phase.node() else {
            return Vec::new();
        };
        let spec = record.spec.clone();
        let status = match record.spec.restart {
            RestartPolicy::Always => {
                record.restarts += 1;
                let restarts = record.restarts;
                let crash_loop = Self::backoff(base, cap, restarts) >= cap;
                record.phase = PodPhase::BackOff { restarts, crash_loop };
                if crash_loop {
                    format!("CrashLoopBackOff (restarts: {restarts})")
                } else {
                    format!("BackOff (restarts: {restarts})")
                }
            }
            RestartPolicy::Never => {
                let restarts = record.restarts;
                record.phase = PodPhase::Terminated { restarts };
                "Terminated".to_string()
            }
        };
        self.scheduler.unplace(node, &spec);
        self.set_status_phase(name, &status);
        // For `Always` pods the caller waits out `restart_delay_for(name)`,
        // then calls `requeue` + `reconcile` to re-place the pod.
        Vec::new()
    }

    /// Drain a failed node: every pod on it exits (and restarts elsewhere
    /// per policy). Returns the names of affected pods.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<String> {
        let affected: Vec<String> = self
            .pods
            .iter()
            .filter(|(_, p)| p.phase.node() == Some(node))
            .map(|(n, _)| n.clone())
            .collect();
        let _ = self.scheduler.cordon(node, true);
        for name in &affected {
            self.report_exit(name);
        }
        affected
    }

    /// Restore a failed node.
    pub fn restore_node(&mut self, node: NodeId) {
        let _ = self.scheduler.cordon(node, false);
    }

    /// Cordon (or uncordon) a node without evicting anything — used when
    /// the caller wants to drain pods itself before marking the node
    /// unavailable.
    pub fn set_cordon(&mut self, node: NodeId, cordoned: bool) {
        let _ = self.scheduler.cordon(node, cordoned);
    }

    /// The backoff delay for the given consecutive-crash count:
    /// `base × 2^(restarts-1)`, capped.
    fn backoff(base: SimDuration, cap: SimDuration, restarts: u32) -> SimDuration {
        let exp = restarts.saturating_sub(1).min(32);
        base.saturating_mul(1u64 << exp).min(cap)
    }

    fn backoff_for(&self, restarts: u32) -> SimDuration {
        Self::backoff(self.config.restart_backoff_base, self.config.restart_backoff_cap, restarts)
    }

    /// How long the caller should wait before `requeue`ing this pod.
    pub fn restart_delay_for(&self, name: &str) -> SimDuration {
        let restarts = self.pods.get(name).map_or(0, |p| p.restarts);
        self.backoff_for(restarts.max(1))
    }

    /// Move a `BackOff` (or `Unschedulable`) pod back to `Pending` so the
    /// next `reconcile` re-places it. Called by the testbed once the
    /// restart backoff has elapsed, or after cluster capacity returns.
    pub fn requeue(&mut self, name: &str) {
        if let Some(record) = self.pods.get_mut(name) {
            if matches!(record.phase, PodPhase::BackOff { .. } | PodPhase::Unschedulable) {
                record.phase = PodPhase::Pending;
                self.set_status_phase(name, "Pending (restarting)");
            }
        }
    }

    fn set_status_phase(&mut self, pod: &str, phase: &str) {
        let _ = self.store.modify("Pod", pod, |_, status| {
            *status = digibox_model::vmap! { "phase" => phase };
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(n_nodes: u32) -> ControlPlane {
        let nodes: Vec<(NodeId, NodeSpec)> =
            (0..n_nodes).map(|i| (NodeId(i), NodeSpec::m5_xlarge(i))).collect();
        ControlPlane::new(&nodes, ControlPlaneConfig::default())
    }

    #[test]
    fn create_reconcile_start_run() {
        let mut cp = plane(1);
        cp.create_pod(PodSpec::mock("digi-lamp-L1", "mock/Lamp:v1")).unwrap();
        assert_eq!(cp.phase("digi-lamp-L1"), Some(PodPhase::Pending));
        let actions = cp.reconcile();
        assert_eq!(actions.len(), 1);
        let PodAction::Start { pod, node, delay, .. } = &actions[0] else {
            panic!("expected start action");
        };
        assert_eq!(pod, "digi-lamp-L1");
        assert!(delay.as_millis() >= 150);
        assert_eq!(cp.phase(pod), Some(PodPhase::Starting { node: *node }));
        cp.mark_running(pod);
        assert!(cp.phase(pod).unwrap().is_running());
        assert_eq!(cp.running_count(), 1);
        // store reflects the phase
        let status = &cp.store().get("Pod", pod).unwrap().status;
        assert_eq!(status.get("phase").unwrap().as_str(), Some("Running"));
    }

    #[test]
    fn duplicate_pod_rejected() {
        let mut cp = plane(1);
        cp.create_pod(PodSpec::mock("a", "img")).unwrap();
        assert!(matches!(
            cp.create_pod(PodSpec::mock("a", "img")),
            Err(StoreError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn unschedulable_when_full() {
        let mut cp = plane(1);
        // m5.xlarge = 4000 millis; 5 per mock → 800 fit
        for i in 0..801 {
            cp.create_pod(PodSpec::mock(&format!("p{i}"), "img")).unwrap();
        }
        let actions = cp.reconcile();
        let unsched: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, PodAction::MarkUnschedulable { .. }))
            .collect();
        assert_eq!(unsched.len(), 1);
        let starts = actions.iter().filter(|a| matches!(a, PodAction::Start { .. })).count();
        assert_eq!(starts, 800);
    }

    #[test]
    fn delete_emits_stop_and_frees_capacity() {
        let mut cp = plane(1);
        cp.create_pod(PodSpec::mock("a", "img")).unwrap();
        cp.reconcile();
        cp.mark_running("a");
        let actions = cp.delete_pod("a").unwrap();
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], PodAction::Stop { .. }));
        assert_eq!(cp.scheduler().total_pods(), 0);
        assert!(cp.store().get("Pod", "a").is_none());
    }

    #[test]
    fn crash_restarts_with_always_policy() {
        let mut cp = plane(1);
        cp.create_pod(PodSpec::mock("a", "img")).unwrap();
        cp.reconcile();
        cp.mark_running("a");
        cp.report_exit("a");
        // A crashed pod waits out its backoff: reconcile must not pick it
        // up until the testbed requeues it.
        assert_eq!(cp.phase("a"), Some(PodPhase::BackOff { restarts: 1, crash_loop: false }));
        assert!(cp.reconcile().is_empty());
        cp.requeue("a");
        assert_eq!(cp.phase("a"), Some(PodPhase::Pending));
        let actions = cp.reconcile();
        assert!(matches!(actions[0], PodAction::Start { .. }));
    }

    #[test]
    fn backoff_schedule_doubles_to_cap() {
        let mut cp = plane(1);
        cp.create_pod(PodSpec::mock("a", "img")).unwrap();
        // base 500ms, cap 10s: 500, 1000, 2000, 4000, 8000, 10000, 10000…
        let expect_ms = [500u64, 1000, 2000, 4000, 8000, 10_000, 10_000];
        for (i, &ms) in expect_ms.iter().enumerate() {
            cp.reconcile();
            let name = "a".to_string();
            if let Some(PodPhase::Starting { .. }) = cp.phase(&name) {
                cp.mark_running(&name);
            }
            cp.report_exit(&name);
            let restarts = (i + 1) as u32;
            assert_eq!(cp.restart_delay_for(&name), SimDuration::from_millis(ms));
            // crash-loop flag flips exactly when the schedule hits the cap
            let crash_loop = ms >= 10_000;
            assert_eq!(
                cp.phase(&name),
                Some(PodPhase::BackOff { restarts, crash_loop }),
                "after crash #{restarts}"
            );
            cp.requeue(&name);
        }
        // store status surfaces the crash loop
        let status = &cp.store().get("Pod", "a").unwrap().status;
        assert_eq!(status.get("phase").unwrap().as_str(), Some("Pending (restarting)"));
    }

    #[test]
    fn backoff_boundary_restart_counts() {
        let cp = plane(1);
        // restarts=0 (never crashed) still quotes the base delay
        assert_eq!(cp.restart_delay_for("ghost"), SimDuration::from_millis(500));
        // the shift is clamped: a huge restart count must not overflow
        let mut cp = plane(1);
        cp.create_pod(PodSpec::mock("a", "img")).unwrap();
        for _ in 0..70 {
            cp.reconcile();
            cp.mark_running("a");
            cp.report_exit("a");
            cp.requeue("a");
        }
        assert_eq!(cp.restart_delay_for("a"), SimDuration::from_secs(10));
    }

    #[test]
    fn crash_terminates_with_never_policy() {
        let mut cp = plane(1);
        let mut spec = PodSpec::mock("job", "img");
        spec.restart = RestartPolicy::Never;
        cp.create_pod(spec).unwrap();
        cp.reconcile();
        cp.mark_running("job");
        cp.report_exit("job");
        assert_eq!(cp.phase("job"), Some(PodPhase::Terminated { restarts: 0 }));
        assert!(cp.reconcile().is_empty());
    }

    #[test]
    fn node_failure_reschedules_to_survivor() {
        let mut cp = plane(2);
        for i in 0..10 {
            cp.create_pod(PodSpec::mock(&format!("p{i}"), "img")).unwrap();
        }
        for a in cp.reconcile() {
            if let PodAction::Start { pod, .. } = a {
                cp.mark_running(&pod);
            }
        }
        let victim = NodeId(0);
        let affected = cp.fail_node(victim);
        assert_eq!(affected.len(), 5, "spread placement put half on each node");
        // evicted pods wait out their backoff like any other crash
        for name in &affected {
            assert!(matches!(cp.phase(name), Some(PodPhase::BackOff { .. })));
            cp.requeue(name);
        }
        let actions = cp.reconcile();
        for a in &actions {
            if let PodAction::Start { node, .. } = a {
                assert_eq!(*node, NodeId(1), "rescheduled off the failed node");
            }
        }
        assert_eq!(
            actions.iter().filter(|a| matches!(a, PodAction::Start { .. })).count(),
            5
        );
    }

    #[test]
    fn startup_delays_are_deterministic_per_seed() {
        let delays = |seed| {
            let mut cp = ControlPlane::new(
                &[(NodeId(0), NodeSpec::laptop())],
                ControlPlaneConfig { seed, ..Default::default() },
            );
            for i in 0..5 {
                cp.create_pod(PodSpec::mock(&format!("p{i}"), "img")).unwrap();
            }
            cp.reconcile()
                .into_iter()
                .filter_map(|a| match a {
                    PodAction::Start { delay, .. } => Some(delay.as_nanos()),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(delays(1), delays(1));
        assert_ne!(delays(1), delays(2));
    }
}
