use serde::{Deserialize, Serialize};

use digibox_net::NodeId;

/// What to do when a pod's process dies (paper §6 lists device
/// faults/failures as a prototyping dimension; mocks get `Always` so a
/// crashed mock comes back, one-shot jobs get `Never`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RestartPolicy {
    #[default]
    Always,
    Never,
}

/// Desired state of one pod (one digi microservice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodSpec {
    /// Unique pod name, conventionally `digi-<type>-<name>`.
    pub name: String,
    /// The "container image": the registered program identifier for the
    /// digi (e.g. `mock/Lamp:v1`). Images are resolved by the device
    /// catalog at start time.
    pub image: String,
    /// CPU request in millicores.
    pub cpu_millis: u64,
    /// Memory request in MiB.
    pub mem_mib: u64,
    pub restart: RestartPolicy,
    /// Pin to a specific node (tests/affinity); `None` lets the scheduler
    /// choose.
    pub node_selector: Option<NodeId>,
}

impl PodSpec {
    /// A typical mock: 5 millicores, 8 MiB — the paper runs 50 mocks on a
    /// laptop and ~500 per m5.xlarge (4000 millicores), so requests must be
    /// tiny, like the paper's Python mock containers.
    pub fn mock(name: &str, image: &str) -> PodSpec {
        PodSpec {
            name: name.to_string(),
            image: image.to_string(),
            cpu_millis: 5,
            mem_mib: 8,
            restart: RestartPolicy::Always,
            node_selector: None,
        }
    }

    /// A scene controller: a bit heavier (it coordinates many mocks).
    pub fn scene(name: &str, image: &str) -> PodSpec {
        PodSpec { cpu_millis: 10, mem_mib: 16, ..PodSpec::mock(name, image) }
    }

    pub fn with_resources(mut self, cpu_millis: u64, mem_mib: u64) -> PodSpec {
        self.cpu_millis = cpu_millis;
        self.mem_mib = mem_mib;
        self
    }

    pub fn on_node(mut self, node: NodeId) -> PodSpec {
        self.node_selector = Some(node);
        self
    }
}

/// Observed lifecycle state of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodPhase {
    /// Accepted, not yet placed.
    Pending,
    /// Placed on a node, container starting.
    Starting { node: NodeId },
    /// Live and serving.
    Running { node: NodeId },
    /// Crashed; waiting out its restart backoff before becoming Pending
    /// again. `crash_loop` is set once the pod has crashed enough times in
    /// a row that the backoff delay has hit its cap (k8s would show
    /// `CrashLoopBackOff`).
    BackOff { restarts: u32, crash_loop: bool },
    /// Stopped; `restarts` counts how many times it was restarted before.
    Terminated { restarts: u32 },
    /// Could not be placed (insufficient capacity).
    Unschedulable,
}

impl PodPhase {
    pub fn node(&self) -> Option<NodeId> {
        match self {
            PodPhase::Starting { node } | PodPhase::Running { node } => Some(*node),
            _ => None,
        }
    }

    pub fn is_running(&self) -> bool {
        matches!(self, PodPhase::Running { .. })
    }

    /// Restart count surfaced by the phase, if it carries one.
    pub fn restarts(&self) -> Option<u32> {
        match self {
            PodPhase::BackOff { restarts, .. } | PodPhase::Terminated { restarts } => {
                Some(*restarts)
            }
            _ => None,
        }
    }

    pub fn is_crash_loop(&self) -> bool {
        matches!(self, PodPhase::BackOff { crash_loop: true, .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let p = PodSpec::mock("digi-lamp-L1", "mock/Lamp:v1");
        assert_eq!(p.cpu_millis, 5);
        assert_eq!(p.restart, RestartPolicy::Always);
        let s = PodSpec::scene("digi-room-R1", "scene/Room:v2")
            .with_resources(100, 64)
            .on_node(NodeId(3));
        assert_eq!(s.cpu_millis, 100);
        assert_eq!(s.node_selector, Some(NodeId(3)));
    }

    #[test]
    fn phase_helpers() {
        assert!(PodPhase::Running { node: NodeId(0) }.is_running());
        assert!(!PodPhase::Pending.is_running());
        assert_eq!(PodPhase::Starting { node: NodeId(2) }.node(), Some(NodeId(2)));
        assert_eq!(PodPhase::Unschedulable.node(), None);
        let b = PodPhase::BackOff { restarts: 3, crash_loop: false };
        assert_eq!(b.restarts(), Some(3));
        assert!(!b.is_crash_loop());
        assert!(PodPhase::BackOff { restarts: 9, crash_loop: true }.is_crash_loop());
        assert_eq!(PodPhase::Terminated { restarts: 1 }.restarts(), Some(1));
        assert_eq!(PodPhase::Running { node: NodeId(0) }.restarts(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let p = PodSpec::mock("a", "b").on_node(NodeId(1));
        let back: PodSpec = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(p, back);
        let ph = PodPhase::Terminated { restarts: 2 };
        let back: PodPhase = serde_json::from_str(&serde_json::to_string(&ph).unwrap()).unwrap();
        assert_eq!(ph, back);
    }
}
