//! The object store: the API-server analogue.
//!
//! Objects are `(kind, name)`-addressed [`Value`] documents with a
//! monotonically increasing per-object resource version. Writers use
//! compare-and-swap on the version (optimistic concurrency, exactly like
//! the Kubernetes API); readers either get snapshots or follow an ordered
//! watch stream from any cursor.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use digibox_model::Value;

/// One stored object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredObject {
    pub kind: String,
    pub name: String,
    /// Unique for the lifetime of the store, survives spec updates, changes
    /// on delete + recreate.
    pub uid: u64,
    /// Bumped on every mutation.
    pub resource_version: u64,
    pub spec: Value,
    pub status: Value,
}

/// Store errors.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    AlreadyExists { kind: String, name: String },
    NotFound { kind: String, name: String },
    /// CAS failure: the caller's base version is stale.
    Conflict { kind: String, name: String, expected: u64, actual: u64 },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::AlreadyExists { kind, name } => write!(f, "{kind}/{name} already exists"),
            StoreError::NotFound { kind, name } => write!(f, "{kind}/{name} not found"),
            StoreError::Conflict { kind, name, expected, actual } => {
                write!(f, "conflict on {kind}/{name}: version {expected} is stale (now {actual})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A watch stream entry.
#[derive(Debug, Clone, PartialEq)]
pub enum WatchEvent {
    Added(StoredObject),
    Modified(StoredObject),
    Deleted(StoredObject),
}

impl WatchEvent {
    pub fn object(&self) -> &StoredObject {
        match self {
            WatchEvent::Added(o) | WatchEvent::Modified(o) | WatchEvent::Deleted(o) => o,
        }
    }
}

/// An opaque position in the watch log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchCursor(usize);

/// The object store.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: BTreeMap<(String, String), StoredObject>,
    log: Vec<WatchEvent>,
    next_uid: u64,
}

impl ObjectStore {
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Create an object; fails when `(kind, name)` exists.
    pub fn create(&mut self, kind: &str, name: &str, spec: Value) -> Result<StoredObject, StoreError> {
        let key = (kind.to_string(), name.to_string());
        if self.objects.contains_key(&key) {
            return Err(StoreError::AlreadyExists { kind: kind.into(), name: name.into() });
        }
        self.next_uid += 1;
        let obj = StoredObject {
            kind: kind.into(),
            name: name.into(),
            uid: self.next_uid,
            resource_version: 1,
            spec,
            status: Value::map(),
        };
        self.objects.insert(key, obj.clone());
        self.log.push(WatchEvent::Added(obj.clone()));
        Ok(obj)
    }

    pub fn get(&self, kind: &str, name: &str) -> Option<&StoredObject> {
        self.objects.get(&(kind.to_string(), name.to_string()))
    }

    /// All objects of one kind, name-ordered.
    pub fn list(&self, kind: &str) -> Vec<&StoredObject> {
        self.objects.values().filter(|o| o.kind == kind).collect()
    }

    /// Replace spec and/or status via compare-and-swap on
    /// `base_resource_version`.
    pub fn update(
        &mut self,
        kind: &str,
        name: &str,
        base_resource_version: u64,
        spec: Option<Value>,
        status: Option<Value>,
    ) -> Result<StoredObject, StoreError> {
        let key = (kind.to_string(), name.to_string());
        let obj = self
            .objects
            .get_mut(&key)
            .ok_or_else(|| StoreError::NotFound { kind: kind.into(), name: name.into() })?;
        if obj.resource_version != base_resource_version {
            return Err(StoreError::Conflict {
                kind: kind.into(),
                name: name.into(),
                expected: base_resource_version,
                actual: obj.resource_version,
            });
        }
        if let Some(s) = spec {
            obj.spec = s;
        }
        if let Some(s) = status {
            obj.status = s;
        }
        obj.resource_version += 1;
        let snapshot = obj.clone();
        self.log.push(WatchEvent::Modified(snapshot.clone()));
        Ok(snapshot)
    }

    /// Unconditional read-modify-write (retrying CAS internally); `f` may
    /// mutate spec and status.
    pub fn modify(
        &mut self,
        kind: &str,
        name: &str,
        f: impl FnOnce(&mut Value, &mut Value),
    ) -> Result<StoredObject, StoreError> {
        let key = (kind.to_string(), name.to_string());
        let obj = self
            .objects
            .get_mut(&key)
            .ok_or_else(|| StoreError::NotFound { kind: kind.into(), name: name.into() })?;
        f(&mut obj.spec, &mut obj.status);
        obj.resource_version += 1;
        let snapshot = obj.clone();
        self.log.push(WatchEvent::Modified(snapshot.clone()));
        Ok(snapshot)
    }

    pub fn delete(&mut self, kind: &str, name: &str) -> Result<StoredObject, StoreError> {
        let key = (kind.to_string(), name.to_string());
        let obj = self
            .objects
            .remove(&key)
            .ok_or_else(|| StoreError::NotFound { kind: kind.into(), name: name.into() })?;
        self.log.push(WatchEvent::Deleted(obj.clone()));
        Ok(obj)
    }

    /// A cursor at the current end of the watch log (only future events).
    pub fn watch_from_now(&self) -> WatchCursor {
        WatchCursor(self.log.len())
    }

    /// A cursor at the start of the log (replays everything).
    pub fn watch_from_start(&self) -> WatchCursor {
        WatchCursor(0)
    }

    /// Events since the cursor (optionally filtered by kind), advancing it.
    pub fn poll_watch(&self, cursor: &mut WatchCursor, kind: Option<&str>) -> Vec<WatchEvent> {
        let events: Vec<WatchEvent> = self.log[cursor.0..]
            .iter()
            .filter(|e| kind.is_none_or(|k| e.object().kind == k))
            .cloned()
            .collect();
        cursor.0 = self.log.len();
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::vmap;

    #[test]
    fn create_get_list() {
        let mut s = ObjectStore::new();
        s.create("Pod", "a", vmap! { "image" => "mock/lamp" }).unwrap();
        s.create("Pod", "b", Value::map()).unwrap();
        s.create("Node", "n0", Value::map()).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.list("Pod").len(), 2);
        assert_eq!(s.get("Pod", "a").unwrap().spec.get("image").unwrap().as_str(), Some("mock/lamp"));
        assert!(matches!(
            s.create("Pod", "a", Value::map()),
            Err(StoreError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn cas_update_detects_conflict() {
        let mut s = ObjectStore::new();
        let o = s.create("Pod", "a", Value::map()).unwrap();
        let updated = s.update("Pod", "a", o.resource_version, Some(vmap! { "x" => 1 }), None).unwrap();
        assert_eq!(updated.resource_version, 2);
        // stale write
        let err = s.update("Pod", "a", o.resource_version, Some(vmap! { "x" => 2 }), None).unwrap_err();
        assert!(matches!(err, StoreError::Conflict { expected: 1, actual: 2, .. }));
        // object unchanged by failed CAS
        assert_eq!(s.get("Pod", "a").unwrap().spec, vmap! { "x" => 1 });
    }

    #[test]
    fn modify_bumps_version() {
        let mut s = ObjectStore::new();
        s.create("Pod", "a", vmap! { "n" => 1 }).unwrap();
        s.modify("Pod", "a", |spec, status| {
            *spec = vmap! { "n" => 2 };
            *status = vmap! { "phase" => "Running" };
        })
        .unwrap();
        let o = s.get("Pod", "a").unwrap();
        assert_eq!(o.resource_version, 2);
        assert_eq!(o.status.get("phase").unwrap().as_str(), Some("Running"));
    }

    #[test]
    fn uid_changes_on_recreate() {
        let mut s = ObjectStore::new();
        let first = s.create("Pod", "a", Value::map()).unwrap();
        s.delete("Pod", "a").unwrap();
        let second = s.create("Pod", "a", Value::map()).unwrap();
        assert_ne!(first.uid, second.uid);
    }

    #[test]
    fn watch_replays_and_follows() {
        let mut s = ObjectStore::new();
        s.create("Pod", "a", Value::map()).unwrap();
        let mut from_start = s.watch_from_start();
        let mut from_now = s.watch_from_now();
        s.modify("Pod", "a", |_, _| {}).unwrap();
        s.delete("Pod", "a").unwrap();

        let all = s.poll_watch(&mut from_start, None);
        assert_eq!(all.len(), 3);
        assert!(matches!(all[0], WatchEvent::Added(_)));
        assert!(matches!(all[1], WatchEvent::Modified(_)));
        assert!(matches!(all[2], WatchEvent::Deleted(_)));

        let new_only = s.poll_watch(&mut from_now, None);
        assert_eq!(new_only.len(), 2, "cursor from now sees only later events");

        // cursor is advanced: polling again yields nothing
        assert!(s.poll_watch(&mut from_start, None).is_empty());
    }

    #[test]
    fn watch_kind_filter() {
        let mut s = ObjectStore::new();
        let mut cur = s.watch_from_start();
        s.create("Pod", "a", Value::map()).unwrap();
        s.create("Node", "n", Value::map()).unwrap();
        let pods = s.poll_watch(&mut cur, Some("Pod"));
        assert_eq!(pods.len(), 1);
        assert_eq!(pods[0].object().kind, "Pod");
    }

    #[test]
    fn missing_object_errors() {
        let mut s = ObjectStore::new();
        assert!(matches!(s.delete("Pod", "x"), Err(StoreError::NotFound { .. })));
        assert!(matches!(
            s.update("Pod", "x", 1, None, None),
            Err(StoreError::NotFound { .. })
        ));
        assert!(matches!(s.modify("Pod", "x", |_, _| {}), Err(StoreError::NotFound { .. })));
    }
}
