//! Pod placement: filter nodes that fit, score by least allocated CPU
//! fraction (spreading load), bind.

use std::collections::BTreeMap;
use std::fmt;

use digibox_net::{NodeId, NodeSpec};

use crate::pod::PodSpec;

/// Allocation bookkeeping for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAlloc {
    pub spec: NodeSpec,
    pub cpu_allocated: u64,
    pub mem_allocated: u64,
    pub pods: u32,
    /// Cordoned nodes accept no new pods (used by fault-injection tests).
    pub cordoned: bool,
}

impl NodeAlloc {
    pub fn new(spec: NodeSpec) -> NodeAlloc {
        NodeAlloc { spec, cpu_allocated: 0, mem_allocated: 0, pods: 0, cordoned: false }
    }

    pub fn fits(&self, pod: &PodSpec) -> bool {
        !self.cordoned
            && self.cpu_allocated + pod.cpu_millis <= self.spec.cpu_millis
            && self.mem_allocated + pod.mem_mib <= self.spec.mem_mib
    }

    /// Allocated CPU fraction in [0, 1] — the scheduler's spreading score.
    pub fn cpu_fraction(&self) -> f64 {
        if self.spec.cpu_millis == 0 {
            1.0
        } else {
            self.cpu_allocated as f64 / self.spec.cpu_millis as f64
        }
    }

    fn charge(&mut self, pod: &PodSpec) {
        self.cpu_allocated += pod.cpu_millis;
        self.mem_allocated += pod.mem_mib;
        self.pods += 1;
    }

    fn release(&mut self, pod: &PodSpec) {
        self.cpu_allocated = self.cpu_allocated.saturating_sub(pod.cpu_millis);
        self.mem_allocated = self.mem_allocated.saturating_sub(pod.mem_mib);
        self.pods = self.pods.saturating_sub(1);
    }
}

/// Placement failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// No node has room (or the selected node doesn't).
    Unschedulable { pod: String },
    UnknownNode(NodeId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unschedulable { pod } => write!(f, "pod {pod} is unschedulable"),
            ScheduleError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The scheduler: owns node allocation state.
#[derive(Debug, Default)]
pub struct Scheduler {
    nodes: BTreeMap<NodeId, NodeAlloc>,
}

impl Scheduler {
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    pub fn add_node(&mut self, id: NodeId, spec: NodeSpec) {
        self.nodes.insert(id, NodeAlloc::new(spec));
    }

    pub fn node(&self, id: NodeId) -> Option<&NodeAlloc> {
        self.nodes.get(&id)
    }

    pub fn nodes(&self) -> impl Iterator<Item = (&NodeId, &NodeAlloc)> {
        self.nodes.iter()
    }

    pub fn cordon(&mut self, id: NodeId, cordoned: bool) -> Result<(), ScheduleError> {
        self.nodes.get_mut(&id).ok_or(ScheduleError::UnknownNode(id))?.cordoned = cordoned;
        Ok(())
    }

    /// Place `pod`: honors `node_selector`, else picks the fitting node
    /// with the lowest allocated-CPU fraction (ties → lowest node id, so
    /// placement is deterministic). Charges the node on success.
    pub fn place(&mut self, pod: &PodSpec) -> Result<NodeId, ScheduleError> {
        if let Some(wanted) = pod.node_selector {
            let node = self.nodes.get_mut(&wanted).ok_or(ScheduleError::UnknownNode(wanted))?;
            if !node.fits(pod) {
                return Err(ScheduleError::Unschedulable { pod: pod.name.clone() });
            }
            node.charge(pod);
            return Ok(wanted);
        }
        let best = self
            .nodes
            .iter()
            .filter(|(_, n)| n.fits(pod))
            .min_by(|(ida, a), (idb, b)| {
                a.cpu_fraction()
                    .partial_cmp(&b.cpu_fraction())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ida.cmp(idb))
            })
            .map(|(id, _)| *id);
        match best {
            Some(id) => {
                self.nodes.get_mut(&id).expect("node exists").charge(pod);
                Ok(id)
            }
            None => Err(ScheduleError::Unschedulable { pod: pod.name.clone() }),
        }
    }

    /// Return a pod's resources to its node.
    pub fn unplace(&mut self, node: NodeId, pod: &PodSpec) {
        if let Some(n) = self.nodes.get_mut(&node) {
            n.release(pod);
        }
    }

    /// Total pods placed across nodes.
    pub fn total_pods(&self) -> u32 {
        self.nodes.values().map(|n| n.pods).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_node() -> NodeSpec {
        // plenty of memory: CPU is the binding constraint in these tests
        NodeSpec { label: "test".into(), cpu_millis: 100, mem_mib: 1000, service_overhead: Default::default() }
    }

    fn tight_mem_node() -> NodeSpec {
        NodeSpec { label: "tight".into(), cpu_millis: 100, mem_mib: 100, service_overhead: Default::default() }
    }

    #[test]
    fn spreads_by_cpu_fraction() {
        let mut s = Scheduler::new();
        s.add_node(NodeId(0), small_node());
        s.add_node(NodeId(1), small_node());
        let mut placements = Vec::new();
        for i in 0..4 {
            let pod = PodSpec::mock(&format!("p{i}"), "img");
            placements.push(s.place(&pod).unwrap());
        }
        // alternates between the two nodes
        assert_eq!(placements, vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)]);
    }

    #[test]
    fn respects_capacity() {
        let mut s = Scheduler::new();
        s.add_node(NodeId(0), small_node());
        // 100 millis capacity, 5 per pod → 20 pods fit
        for i in 0..20 {
            s.place(&PodSpec::mock(&format!("p{i}"), "img")).unwrap();
        }
        let err = s.place(&PodSpec::mock("p20", "img")).unwrap_err();
        assert!(matches!(err, ScheduleError::Unschedulable { .. }));
        assert_eq!(s.total_pods(), 20);
    }

    #[test]
    fn node_selector_pins() {
        let mut s = Scheduler::new();
        s.add_node(NodeId(0), small_node());
        s.add_node(NodeId(1), small_node());
        let pod = PodSpec::mock("pinned", "img").on_node(NodeId(1));
        assert_eq!(s.place(&pod).unwrap(), NodeId(1));
        assert!(matches!(
            s.place(&PodSpec::mock("ghost", "img").on_node(NodeId(9))),
            Err(ScheduleError::UnknownNode(NodeId(9)))
        ));
    }

    #[test]
    fn memory_also_limits() {
        let mut s = Scheduler::new();
        s.add_node(NodeId(0), tight_mem_node());
        let fat = PodSpec::mock("fat", "img").with_resources(10, 90);
        s.place(&fat).unwrap();
        // memory exhausted even though CPU remains
        let err = s.place(&PodSpec::mock("fat2", "img").with_resources(10, 20)).unwrap_err();
        assert!(matches!(err, ScheduleError::Unschedulable { .. }));
    }

    #[test]
    fn unplace_frees_resources() {
        let mut s = Scheduler::new();
        s.add_node(NodeId(0), small_node());
        let pod = PodSpec::mock("p", "img").with_resources(100, 100);
        let node = s.place(&pod).unwrap();
        assert!(s.place(&PodSpec::mock("q", "img")).is_err());
        s.unplace(node, &pod);
        s.place(&PodSpec::mock("q", "img")).unwrap();
    }

    #[test]
    fn cordoned_node_excluded() {
        let mut s = Scheduler::new();
        s.add_node(NodeId(0), small_node());
        s.add_node(NodeId(1), small_node());
        s.cordon(NodeId(0), true).unwrap();
        for i in 0..3 {
            assert_eq!(s.place(&PodSpec::mock(&format!("p{i}"), "img")).unwrap(), NodeId(1));
        }
        s.cordon(NodeId(0), false).unwrap();
        assert_eq!(s.place(&PodSpec::mock("px", "img")).unwrap(), NodeId(0));
    }
}
