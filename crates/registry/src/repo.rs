//! The repository: content-addressed objects + refs + commits, with
//! push/pull and optional directory persistence.

use std::collections::{BTreeMap, HashMap}; // content-addressed object store; the one hash-order iteration carries a det-ok(DH0002) at the site
use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::hash::{sha256, Digest};
use crate::manifest::{SetupManifest, TypePackage};

/// Repository errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    ObjectMissing(Digest),
    RefMissing(String),
    Corrupt(String),
    Io(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::ObjectMissing(d) => write!(f, "object {} not in repository", d.short()),
            RegistryError::RefMissing(r) => write!(f, "ref {r:?} not found"),
            RegistryError::Corrupt(m) => write!(f, "repository corrupt: {m}"),
            RegistryError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A commit: one shareable snapshot of a setup plus the type packages it
/// references, linked to its parent (history).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Commit {
    pub parent: Option<Digest>,
    pub message: String,
    /// Digest of the `SetupManifest` object.
    pub setup: Digest,
    /// kind@version → `TypePackage` object digest.
    pub packages: BTreeMap<String, Digest>,
}

impl Commit {
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("commits always serialize")
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Commit, RegistryError> {
        serde_json::from_slice(bytes).map_err(|e| RegistryError::Corrupt(e.to_string()))
    }
}

/// A content-addressed repository with named refs. Acts as both the "scene
/// repository" (GitHub) and the image registry (Docker Hub) of the paper.
#[derive(Debug, Default)]
pub struct Repository {
    objects: HashMap<Digest, Vec<u8>>,
    refs: BTreeMap<String, Digest>,
}

impl Repository {
    pub fn new() -> Repository {
        Repository::default()
    }

    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    pub fn refs(&self) -> &BTreeMap<String, Digest> {
        &self.refs
    }

    /// Store raw bytes, returning their digest (idempotent).
    pub fn put(&mut self, bytes: Vec<u8>) -> Digest {
        let digest = sha256(&bytes);
        self.objects.entry(digest).or_insert(bytes);
        digest
    }

    pub fn get(&self, digest: &Digest) -> Result<&[u8], RegistryError> {
        self.objects
            .get(digest)
            .map(Vec::as_slice)
            .ok_or(RegistryError::ObjectMissing(*digest))
    }

    pub fn contains(&self, digest: &Digest) -> bool {
        self.objects.contains_key(digest)
    }

    pub fn set_ref(&mut self, name: &str, digest: Digest) {
        self.refs.insert(name.to_string(), digest);
    }

    /// Refs whose name starts with `prefix`, sorted — the namespace
    /// listing behind `dbox record` with no arguments (`trace/`), and
    /// usable for any other ref family (`checkpoint/`, `broker-session/`).
    pub fn refs_with_prefix(&self, prefix: &str) -> Vec<(String, Digest)> {
        self.refs
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, digest)| (name.clone(), *digest))
            .collect()
    }

    pub fn resolve(&self, name: &str) -> Result<Digest, RegistryError> {
        self.refs.get(name).copied().ok_or_else(|| RegistryError::RefMissing(name.to_string()))
    }

    /// Commit a setup and its packages under `ref_name`, chaining to the
    /// ref's previous commit as parent. Returns the commit digest.
    pub fn commit(
        &mut self,
        ref_name: &str,
        message: &str,
        setup: &SetupManifest,
        packages: &[TypePackage],
    ) -> Digest {
        let parent = self.refs.get(ref_name).copied();
        let setup_digest = self.put(setup.to_bytes());
        let mut package_map = BTreeMap::new();
        for p in packages {
            let d = self.put(p.to_bytes());
            package_map.insert(format!("{}@{}", p.kind, p.version), d);
        }
        let commit = Commit { parent, message: message.to_string(), setup: setup_digest, packages: package_map };
        let commit_digest = self.put(commit.to_bytes());
        self.set_ref(ref_name, commit_digest);
        commit_digest
    }

    pub fn load_commit(&self, digest: &Digest) -> Result<Commit, RegistryError> {
        Commit::from_bytes(self.get(digest)?)
    }

    pub fn load_setup(&self, commit: &Commit) -> Result<SetupManifest, RegistryError> {
        SetupManifest::from_bytes(self.get(&commit.setup)?).map_err(RegistryError::Corrupt)
    }

    pub fn load_package(&self, digest: &Digest) -> Result<TypePackage, RegistryError> {
        TypePackage::from_bytes(self.get(digest)?).map_err(RegistryError::Corrupt)
    }

    /// History of a ref, newest first.
    pub fn log(&self, ref_name: &str) -> Result<Vec<(Digest, Commit)>, RegistryError> {
        let mut out = Vec::new();
        let mut cursor = Some(self.resolve(ref_name)?);
        while let Some(d) = cursor {
            let commit = self.load_commit(&d)?;
            cursor = commit.parent;
            out.push((d, commit));
        }
        Ok(out)
    }

    /// All objects reachable from a commit (the commit itself, its setup,
    /// its packages, and its ancestry).
    fn reachable(&self, from: Digest) -> Result<Vec<Digest>, RegistryError> {
        let mut out = Vec::new();
        let mut cursor = Some(from);
        while let Some(d) = cursor {
            let commit = self.load_commit(&d)?;
            out.push(d);
            out.push(commit.setup);
            out.extend(commit.packages.values().copied());
            cursor = commit.parent;
        }
        Ok(out)
    }

    /// Push `ref_name` to `remote`: transfer missing reachable objects and
    /// update the remote ref (`dbox push`). Returns objects transferred.
    pub fn push(&self, remote: &mut Repository, ref_name: &str) -> Result<usize, RegistryError> {
        let head = self.resolve(ref_name)?;
        let mut transferred = 0;
        for d in self.reachable(head)? {
            if !remote.contains(&d) {
                remote.objects.insert(d, self.get(&d)?.to_vec());
                transferred += 1;
            }
        }
        remote.set_ref(ref_name, head);
        Ok(transferred)
    }

    /// Pull `ref_name` from `remote` (`dbox pull`).
    pub fn pull(&mut self, remote: &Repository, ref_name: &str) -> Result<usize, RegistryError> {
        remote.push(self, ref_name)
    }

    // ---- directory persistence (the CLI's on-disk state) ----

    /// Save to a directory: `objects/<hex>` files plus a `refs.json`.
    pub fn save_to_dir(&self, dir: &Path) -> Result<(), RegistryError> {
        let objects = dir.join("objects");
        std::fs::create_dir_all(&objects).map_err(io_err)?;
        // det-ok(DH0002): each object lands in its own digest-named file, so visit order never reaches the artifact
        for (digest, bytes) in &self.objects {
            let path = objects.join(digest.to_string());
            if !path.exists() {
                std::fs::write(path, bytes).map_err(io_err)?;
            }
        }
        let refs_json = serde_json::to_vec_pretty(&self.refs).map_err(|e| RegistryError::Io(e.to_string()))?;
        std::fs::write(dir.join("refs.json"), refs_json).map_err(io_err)?;
        Ok(())
    }

    /// Load from a directory written by [`Repository::save_to_dir`].
    /// Verifies every object against its file name.
    pub fn load_from_dir(dir: &Path) -> Result<Repository, RegistryError> {
        let mut repo = Repository::new();
        let objects_dir = dir.join("objects");
        if objects_dir.is_dir() {
            for entry in std::fs::read_dir(&objects_dir).map_err(io_err)? {
                let entry = entry.map_err(io_err)?;
                let name = entry.file_name().to_string_lossy().to_string();
                let Some(expected) = Digest::parse(&name) else {
                    continue; // ignore stray files
                };
                let bytes = std::fs::read(entry.path()).map_err(io_err)?;
                let actual = sha256(&bytes);
                if actual != expected {
                    return Err(RegistryError::Corrupt(format!(
                        "object file {name} hashes to {actual}"
                    )));
                }
                repo.objects.insert(expected, bytes);
            }
        }
        let refs_path = dir.join("refs.json");
        if refs_path.exists() {
            let bytes = std::fs::read(refs_path).map_err(io_err)?;
            repo.refs = serde_json::from_slice(&bytes)
                .map_err(|e| RegistryError::Corrupt(e.to_string()))?;
        }
        Ok(repo)
    }

    /// Convenience: the default on-disk location under a workspace dir.
    pub fn default_dir(workspace: &Path) -> PathBuf {
        workspace.join(".dbox").join("registry")
    }
}

fn io_err(e: std::io::Error) -> RegistryError {
    RegistryError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::InstanceDecl;

    fn lamp_package() -> TypePackage {
        TypePackage {
            kind: "Lamp".into(),
            version: "v1".into(),
            program: "builtin/lamp".into(),
            schema_json: "{}".into(),
            default_params: BTreeMap::new(),
            notes: "a lamp".into(),
        }
    }

    fn setup(name: &str) -> SetupManifest {
        let mut m = SetupManifest::new(name, 7);
        m.instances.push(InstanceDecl {
            name: "L1".into(),
            kind: "Lamp".into(),
            version: "v1".into(),
            managed: false,
            params: BTreeMap::new(),
        });
        m
    }

    #[test]
    fn commit_and_load() {
        let mut repo = Repository::new();
        let digest = repo.commit("home", "first", &setup("home"), &[lamp_package()]);
        let commit = repo.load_commit(&digest).unwrap();
        assert_eq!(commit.message, "first");
        assert!(commit.parent.is_none());
        let s = repo.load_setup(&commit).unwrap();
        assert_eq!(s.name, "home");
        let pkg = repo.load_package(&commit.packages["Lamp@v1"]).unwrap();
        assert_eq!(pkg.program, "builtin/lamp");
    }

    #[test]
    fn history_chains() {
        let mut repo = Repository::new();
        repo.commit("home", "first", &setup("home"), &[]);
        let mut s2 = setup("home");
        s2.seed = 99;
        repo.commit("home", "second", &s2, &[]);
        let log = repo.log("home").unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].1.message, "second");
        assert_eq!(log[1].1.message, "first");
    }

    #[test]
    fn push_pull_transfers_missing_only() {
        let mut local = Repository::new();
        let mut remote = Repository::new();
        local.commit("home", "first", &setup("home"), &[lamp_package()]);
        let n = local.push(&mut remote, "home").unwrap();
        assert_eq!(n, 3); // commit + setup + package
        // pushing again transfers nothing
        assert_eq!(local.push(&mut remote, "home").unwrap(), 0);

        // a third party pulls and can reconstruct the setup
        let mut third = Repository::new();
        third.pull(&remote, "home").unwrap();
        let head = third.resolve("home").unwrap();
        let commit = third.load_commit(&head).unwrap();
        assert_eq!(third.load_setup(&commit).unwrap().name, "home");
    }

    #[test]
    fn identical_content_deduplicates() {
        let mut repo = Repository::new();
        let a = repo.put(b"same".to_vec());
        let b = repo.put(b"same".to_vec());
        assert_eq!(a, b);
        assert_eq!(repo.object_count(), 1);
    }

    #[test]
    fn refs_with_prefix_selects_a_namespace() {
        let mut repo = Repository::new();
        let d = repo.put(b"x".to_vec());
        repo.set_ref("trace/alpha", d);
        repo.set_ref("trace/beta", d);
        repo.set_ref("traces-unrelated", d);
        repo.set_ref("checkpoint/L1", d);
        let traces = repo.refs_with_prefix("trace/");
        assert_eq!(
            traces.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["trace/alpha", "trace/beta"]
        );
        assert!(repo.refs_with_prefix("nope/").is_empty());
    }

    #[test]
    fn missing_objects_and_refs_error() {
        let repo = Repository::new();
        assert!(matches!(repo.resolve("nope"), Err(RegistryError::RefMissing(_))));
        let ghost = sha256(b"ghost");
        assert!(matches!(repo.get(&ghost), Err(RegistryError::ObjectMissing(_))));
    }

    #[test]
    fn disk_roundtrip_with_verification() {
        let dir = std::env::temp_dir().join(format!("dbox-repo-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut repo = Repository::new();
        repo.commit("home", "first", &setup("home"), &[lamp_package()]);
        repo.save_to_dir(&dir).unwrap();

        let loaded = Repository::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.object_count(), repo.object_count());
        assert_eq!(loaded.refs(), repo.refs());
        let head = loaded.resolve("home").unwrap();
        assert_eq!(loaded.load_commit(&head).unwrap().message, "first");

        // corrupt one object file → load fails
        let objects = dir.join("objects");
        let victim = std::fs::read_dir(&objects).unwrap().next().unwrap().unwrap().path();
        std::fs::write(&victim, b"tampered").unwrap();
        assert!(matches!(
            Repository::load_from_dir(&dir),
            Err(RegistryError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
