//! The shareable IaC documents.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use digibox_model::{dml, Value};

use crate::hash::{sha256, Digest};

/// One mock/scene *type*, the "container image" equivalent: which program
/// implements it, its model schema, and default simulation parameters.
/// Content-addressed; two developers who build the same package get the
/// same digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypePackage {
    /// Type name, e.g. `Lamp`, `Room`.
    pub kind: String,
    /// Type version, e.g. `v1`.
    pub version: String,
    /// Program identifier resolved by the device catalog at run time,
    /// e.g. `builtin/lamp`.
    pub program: String,
    /// JSON-encoded `digibox_model::Schema` for the model.
    pub schema_json: String,
    /// Default `meta.params` applied to new instances.
    #[serde(default)]
    pub default_params: BTreeMap<String, Value>,
    /// Free-form notes shown by `dbox pull`.
    #[serde(default)]
    pub notes: String,
}

impl TypePackage {
    /// Canonical byte encoding (deterministic JSON) used for hashing and
    /// storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("type packages always serialize")
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<TypePackage, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }

    /// The package's content digest — its "image id".
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

/// One declared instance in a setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceDecl {
    /// Instance name, e.g. `L1`, `MeetingRoom`.
    pub name: String,
    /// Type name (must resolve to a `TypePackage` in the same commit).
    pub kind: String,
    pub version: String,
    /// Whether the instance starts `managed` (event generation paused).
    #[serde(default)]
    pub managed: bool,
    /// Per-instance overrides of the package's default params.
    #[serde(default)]
    pub params: BTreeMap<String, Value>,
}

/// A complete testbed setup — what `dbox commit` emits and `dbox pull`
/// recreates (paper §3.4: "a set of shareable configuration files
/// describing all the mocks and scenes ... and how they are attached to
/// one another").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SetupManifest {
    /// Setup name, e.g. `smart-building`.
    pub name: String,
    pub instances: Vec<InstanceDecl>,
    /// `(child, parent)` attachment pairs; parents must be scenes.
    pub attachments: Vec<(String, String)>,
    /// Master seed; a recreated setup with the same seed reproduces the
    /// same event streams.
    pub seed: u64,
}

impl SetupManifest {
    pub fn new(name: &str, seed: u64) -> SetupManifest {
        SetupManifest { name: name.to_string(), seed, ..Default::default() }
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("setup manifests always serialize")
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<SetupManifest, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }

    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }

    /// Render as a human-readable DML document (the file a developer would
    /// check into version control).
    pub fn to_dml(&self) -> String {
        let instances: Vec<Value> = self
            .instances
            .iter()
            .map(|i| {
                let mut m = BTreeMap::new();
                m.insert("name".into(), Value::from(i.name.clone()));
                m.insert("type".into(), Value::from(i.kind.clone()));
                m.insert("version".into(), Value::from(i.version.clone()));
                if i.managed {
                    m.insert("managed".into(), Value::Bool(true));
                }
                if !i.params.is_empty() {
                    m.insert("params".into(), Value::Map(i.params.clone()));
                }
                Value::Map(m)
            })
            .collect();
        let attachments: Vec<Value> = self
            .attachments
            .iter()
            .map(|(c, p)| Value::from(vec![c.clone(), p.clone()]))
            .collect();
        let doc = digibox_model::vmap! {
            "setup" => self.name.clone(),
            "seed" => self.seed as i64,
            "instances" => Value::List(instances),
            "attachments" => Value::List(attachments),
        };
        dml::to_string(&doc)
    }

    /// Parse the DML form back.
    pub fn from_dml(text: &str) -> Result<SetupManifest, String> {
        let doc = dml::parse(text).map_err(|e| e.to_string())?;
        let name = doc
            .get("setup")
            .and_then(Value::as_str)
            .ok_or("missing `setup` name")?
            .to_string();
        let seed = doc.get("seed").and_then(Value::as_int).unwrap_or(0) as u64;
        let mut manifest = SetupManifest::new(&name, seed);
        if let Some(instances) = doc.get("instances").and_then(Value::as_list) {
            for inst in instances {
                let get_str = |k: &str| inst.get(k).and_then(Value::as_str).map(str::to_string);
                manifest.instances.push(InstanceDecl {
                    name: get_str("name").ok_or("instance missing name")?,
                    kind: get_str("type").ok_or("instance missing type")?,
                    version: get_str("version").unwrap_or_else(|| "v1".into()),
                    managed: inst.get("managed").and_then(Value::as_bool).unwrap_or(false),
                    params: inst
                        .get("params")
                        .and_then(Value::as_map)
                        .cloned()
                        .unwrap_or_default(),
                });
            }
        }
        if let Some(atts) = doc.get("attachments").and_then(Value::as_list) {
            for att in atts {
                let pair = att.as_list().ok_or("attachment must be a [child, parent] pair")?;
                if pair.len() != 2 {
                    return Err("attachment must be a [child, parent] pair".into());
                }
                manifest.attachments.push((
                    pair[0].as_str().ok_or("attachment child must be a string")?.to_string(),
                    pair[1].as_str().ok_or("attachment parent must be a string")?.to_string(),
                ));
            }
        }
        Ok(manifest)
    }

    /// Basic structural validation: unique instance names, attachments
    /// reference declared instances, no self-attachment, no attachment
    /// cycles.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = std::collections::BTreeSet::new();
        for i in &self.instances {
            if !names.insert(&i.name) {
                return Err(format!("duplicate instance name {:?}", i.name));
            }
        }
        let mut parent_of: BTreeMap<&str, &str> = BTreeMap::new();
        for (child, parent) in &self.attachments {
            if child == parent {
                return Err(format!("{child:?} attached to itself"));
            }
            for end in [child, parent] {
                if !names.contains(end) {
                    return Err(format!("attachment references undeclared instance {end:?}"));
                }
            }
            if parent_of.insert(child, parent).is_some() {
                return Err(format!("{child:?} attached to multiple parents"));
            }
        }
        // cycle check: follow parent chains
        for start in parent_of.keys() {
            let mut cur = *start;
            let mut hops = 0;
            while let Some(next) = parent_of.get(cur) {
                cur = next;
                hops += 1;
                if cur == *start || hops > self.attachments.len() {
                    return Err(format!("attachment cycle involving {start:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::vmap;

    fn sample() -> SetupManifest {
        let mut m = SetupManifest::new("smart-building", 42);
        for (name, kind) in [
            ("O1", "Occupancy"),
            ("L1", "Lamp"),
            ("MeetingRoom", "Room"),
            ("ConfCenter", "Building"),
        ] {
            m.instances.push(InstanceDecl {
                name: name.into(),
                kind: kind.into(),
                version: "v1".into(),
                managed: kind == "Room",
                params: if name == "O1" {
                    [("interval_ms".to_string(), Value::Int(500))].into_iter().collect()
                } else {
                    BTreeMap::new()
                },
            });
        }
        m.attachments.push(("O1".into(), "MeetingRoom".into()));
        m.attachments.push(("L1".into(), "MeetingRoom".into()));
        m.attachments.push(("MeetingRoom".into(), "ConfCenter".into()));
        m
    }

    #[test]
    fn bytes_roundtrip_and_stable_digest() {
        let m = sample();
        let back = SetupManifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, back);
        assert_eq!(m.digest(), back.digest());
        // digest changes with content
        let mut m2 = m.clone();
        m2.seed = 43;
        assert_ne!(m.digest(), m2.digest());
    }

    #[test]
    fn dml_roundtrip() {
        let m = sample();
        let text = m.to_dml();
        let back = SetupManifest::from_dml(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn validate_accepts_good_setup() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_duplicates_and_bad_refs() {
        let mut m = sample();
        m.instances.push(m.instances[0].clone());
        assert!(m.validate().unwrap_err().contains("duplicate"));

        let mut m = sample();
        m.attachments.push(("ghost".into(), "MeetingRoom".into()));
        assert!(m.validate().unwrap_err().contains("undeclared"));

        let mut m = sample();
        m.attachments.push(("ConfCenter".into(), "ConfCenter".into()));
        assert!(m.validate().unwrap_err().contains("itself"));
    }

    #[test]
    fn validate_rejects_cycles_and_multi_parent() {
        let mut m = sample();
        m.attachments.push(("ConfCenter".into(), "MeetingRoom".into()));
        let err = m.validate().unwrap_err();
        assert!(err.contains("cycle") || err.contains("multiple"), "{err}");

        let mut m = sample();
        m.attachments.push(("O1".into(), "ConfCenter".into()));
        assert!(m.validate().unwrap_err().contains("multiple parents"));
    }

    #[test]
    fn type_package_digest_is_content_addressed() {
        let p1 = TypePackage {
            kind: "Lamp".into(),
            version: "v1".into(),
            program: "builtin/lamp".into(),
            schema_json: "{}".into(),
            default_params: [("interval_ms".to_string(), Value::Int(1000))].into_iter().collect(),
            notes: String::new(),
        };
        let p2 = p1.clone();
        assert_eq!(p1.digest(), p2.digest());
        let mut p3 = p1.clone();
        p3.version = "v2".into();
        assert_ne!(p1.digest(), p3.digest());
        let back = TypePackage::from_bytes(&p1.to_bytes()).unwrap();
        assert_eq!(p1, back);
    }

    #[test]
    fn instance_params_survive_dml() {
        let m = sample();
        let text = m.to_dml();
        let back = SetupManifest::from_dml(&text).unwrap();
        let o1 = back.instances.iter().find(|i| i.name == "O1").unwrap();
        assert_eq!(o1.params.get("interval_ms"), Some(&Value::Int(500)));
        let _ = vmap! {}; // keep the import used in both cfg branches
    }
}
