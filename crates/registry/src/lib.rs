//! # digibox-registry
//!
//! Sharing and reproducing testbed setups (paper §3.4–3.5, §4
//! "Infrastructure-as-Code").
//!
//! In the paper, `dbox commit` turns the current setup into declarative
//! configuration files that point at mock/scene configs, which point at
//! container images; files live in Git/GitHub, images in Docker Hub. Here
//! both stores collapse into one [`Repository`]: a content-addressed object
//! store (SHA-256, [`hash`]) plus named refs and commit objects, with
//! push/pull between repositories transferring exactly the missing objects.
//!
//! The shareable units are:
//! * [`TypePackage`] — one mock/scene *type*: program id, schema, defaults
//!   (the "container image" equivalent; programs themselves are resolved
//!   from the device catalog at run time).
//! * [`SetupManifest`] — one testbed *setup*: instances, attachments, seed
//!   (the IaC file `dbox pull` recreates a testbed from).

pub mod hash;
mod manifest;
mod repo;

pub use hash::{sha256, Digest};
pub use manifest::{InstanceDecl, SetupManifest, TypePackage};
pub use repo::{Commit, RegistryError, Repository};
