//! Property-based tests on the model layer's core invariants: arbitrary
//! value trees survive DML and JSON round-trips, diff/apply converges, and
//! path operations are consistent.

use proptest::prelude::*;

use digibox_model::{diff, dml, Path, Value};

/// Strategy: DML-representable scalar values.
///
/// Floats are drawn from a fixed-point grid (the DML printer renders
/// decimal; exotic floats like 1e-300 would need scientific-notation
/// support that DML deliberately omits).
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1_000_000i64..1_000_000, 0u32..4).prop_map(|(mantissa, scale)| {
            Value::Float(mantissa as f64 / 10f64.powi(scale as i32))
        }),
        // strings: printable, no control characters (DML is line-oriented)
        "[ -~]{0,24}".prop_map(Value::Str),
    ]
}

/// Strategy: map keys (non-empty, printable, no '.' so paths stay unambiguous).
fn key() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_-]{0,12}"
}

/// Strategy: arbitrary value trees up to depth 3.
fn value_tree() -> impl Strategy<Value = Value> {
    scalar().prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            prop::collection::btree_map(key(), inner, 0..6).prop_map(Value::Map),
        ]
    })
}

/// Strategy: a map-rooted tree (models are always maps at the root).
fn map_tree() -> impl Strategy<Value = Value> {
    prop::collection::btree_map(key(), value_tree(), 0..6).prop_map(Value::Map)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dml_roundtrip(v in map_tree()) {
        let text = dml::to_string(&v);
        let back = dml::parse(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n--- doc ---\n{text}"));
        // DML does not distinguish Int(k) from Float(k.0) in all positions;
        // loose equality tolerates exactly that
        prop_assert!(v.loose_eq(&back), "roundtrip mismatch:\n{v:?}\n{back:?}\n--- doc ---\n{text}");
    }

    #[test]
    fn json_roundtrip_exact(v in map_tree()) {
        let j = v.to_json();
        let back = Value::from_json(&j);
        prop_assert!(v.loose_eq(&back));
    }

    #[test]
    fn diff_apply_converges(from in map_tree(), to in map_tree()) {
        let patch = diff(&from, &to);
        let mut v = from.clone();
        patch.apply_to_value(&mut v).unwrap();
        prop_assert_eq!(&v, &to);
        // and a second diff is empty
        prop_assert!(diff(&v, &to).is_empty());
    }

    #[test]
    fn diff_is_minimal_for_identity(v in map_tree()) {
        prop_assert!(diff(&v, &v).is_empty());
    }

    #[test]
    fn patch_serde_roundtrip(from in map_tree(), to in map_tree()) {
        let patch = diff(&from, &to);
        let json = serde_json::to_string(&patch).unwrap();
        let back: digibox_model::Patch = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(patch, back);
    }

    #[test]
    fn path_set_then_get(segments in prop::collection::vec(key(), 1..4), v in scalar()) {
        let path = Path::from_segments(segments);
        let mut root = Value::map();
        path.set(&mut root, v.clone()).unwrap();
        prop_assert_eq!(path.lookup(&root), Some(&v));
        // removing it yields the same value and empties the location
        let removed = path.remove(&mut root).unwrap();
        prop_assert_eq!(removed, v);
        prop_assert!(path.lookup(&root).is_none());
    }

    #[test]
    fn path_parse_display_roundtrip(segments in prop::collection::vec("[a-z0-9_]{1,8}", 1..5)) {
        let path = Path::from_segments(segments);
        let parsed = Path::parse(&path.to_string()).unwrap();
        prop_assert_eq!(path, parsed);
    }

    #[test]
    fn inferred_schema_validates_its_samples(
        samples in prop::collection::vec(map_tree(), 1..8)
    ) {
        let schema = digibox_model::infer_schema("T", "v1", &samples);
        for (i, s) in samples.iter().enumerate() {
            let model = digibox_model::Model::with_fields(
                digibox_model::Meta::new("T", "v1", "probe"),
                s.clone(),
            );
            if let Err(e) = schema.validate(&model) {
                prop_assert!(false, "sample {i} does not validate: {e}\nsample: {s:?}");
            }
        }
        // and the generated default mock also validates
        let model = schema.instantiate("generated");
        prop_assert!(schema.validate(&model).is_ok());
    }

    #[test]
    fn leaves_cover_every_scalar(v in map_tree()) {
        let model = digibox_model::Model::with_fields(
            digibox_model::Meta::new("T", "v1", "t"),
            v.clone(),
        );
        for (path, leaf) in model.leaves() {
            prop_assert_eq!(path.lookup(&v), Some(&leaf));
        }
    }
}
