use serde::{Deserialize, Serialize};

use crate::{Meta, ModelError, Path, Result, Value};

/// A model document: the declarative state of one mock or scene.
///
/// Consists of a [`Meta`] block and a field tree (always a map at the root).
/// Fields follow two conventions (paper, Fig. 3):
///
/// * plain fields — e.g. `triggered: true`;
/// * *pair fields* — a map with `intent` (what the user/app wants) and
///   `status` (what the simulated device reports), e.g.
///   `power: { intent: "on", status: "off" }`.
///
/// Every mutation bumps `revision`, the optimistic-concurrency token used by
/// the object store and the watch machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    pub meta: Meta,
    /// Root of the field tree; invariant: always `Value::Map`.
    fields: Value,
    /// Monotonic revision; bumped on every mutation.
    #[serde(default)]
    revision: u64,
}

/// Borrowed view of an intent/status pair field.
#[derive(Debug, Clone, PartialEq)]
pub struct PairField {
    pub intent: Value,
    pub status: Value,
}

impl Model {
    /// Create an empty model for the given meta block.
    pub fn new(meta: Meta) -> Model {
        Model { meta, fields: Value::map(), revision: 0 }
    }

    /// Create a model with initial fields. Panics if `fields` is not a map
    /// (a programming error in device libraries, not runtime input).
    pub fn with_fields(meta: Meta, fields: Value) -> Model {
        assert!(fields.as_map().is_some(), "model fields must be a map");
        Model { meta, fields, revision: 0 }
    }

    pub fn revision(&self) -> u64 {
        self.revision
    }

    pub fn fields(&self) -> &Value {
        &self.fields
    }

    /// Replace the whole field tree (used by replay).
    pub fn set_fields(&mut self, fields: Value) -> Result<()> {
        if fields.as_map().is_none() {
            return Err(ModelError::TypeMismatch {
                path: String::new(),
                expected: "map",
                found: fields.type_name(),
            });
        }
        self.fields = fields;
        self.revision += 1;
        Ok(())
    }

    /// Read the value at `path`.
    pub fn get(&self, path: &Path) -> Result<&Value> {
        path.get(&self.fields)
    }

    /// Read the value at `path`, `None` when missing.
    pub fn lookup(&self, path: &Path) -> Option<&Value> {
        path.lookup(&self.fields)
    }

    /// Write `value` at `path`, creating intermediate maps; bumps revision.
    pub fn set(&mut self, path: &Path, value: impl Into<Value>) -> Result<()> {
        path.set(&mut self.fields, value.into())?;
        self.revision += 1;
        Ok(())
    }

    /// Remove the field at `path`; bumps revision.
    pub fn remove(&mut self, path: &Path) -> Result<Value> {
        let v = path.remove(&mut self.fields)?;
        self.revision += 1;
        Ok(v)
    }

    /// Shallow-merge a map of updates into the root, like the paper's
    /// `dbox.model.update({...})`.
    pub fn update(&mut self, updates: Value) -> Result<()> {
        let map = updates.as_map().ok_or(ModelError::TypeMismatch {
            path: String::new(),
            expected: "map",
            found: "scalar",
        })?;
        // Shallow merge targets root-level keys only, so insert directly
        // into the root map instead of routing each key through Path::set.
        let fields = self.fields.as_map_mut().expect("model fields are always a map");
        for (k, v) in map {
            fields.insert(k.clone(), v.clone());
        }
        self.revision += 1;
        Ok(())
    }

    /// Read a pair field (`{intent, status}`) at `path`.
    pub fn pair(&self, path: &Path) -> Result<PairField> {
        let v = self.get(path)?;
        let m = v.as_map().ok_or_else(|| ModelError::TypeMismatch {
            path: path.to_string(),
            expected: "pair map",
            found: v.type_name(),
        })?;
        match (m.get("intent"), m.get("status")) {
            (Some(i), Some(s)) => Ok(PairField { intent: i.clone(), status: s.clone() }),
            _ => Err(ModelError::SchemaViolation {
                path: path.to_string(),
                reason: "pair field requires both `intent` and `status`".into(),
            }),
        }
    }

    /// Set the `intent` half of a pair field (what `dbox edit` does).
    pub fn set_intent(&mut self, path: &Path, value: impl Into<Value>) -> Result<()> {
        self.set(&path.child("intent"), value)
    }

    /// Set the `status` half of a pair field (what simulators do).
    pub fn set_status(&mut self, path: &Path, value: impl Into<Value>) -> Result<()> {
        self.set(&path.child("status"), value)
    }

    /// Convenience: read `path.status`.
    pub fn status(&self, path: &Path) -> Result<&Value> {
        self.get(&path.child("status"))
    }

    /// Convenience: read `path.intent`.
    pub fn intent(&self, path: &Path) -> Result<&Value> {
        self.get(&path.child("intent"))
    }

    /// Iterate `(path, value)` over all scalar leaves, in sorted order.
    pub fn leaves(&self) -> Vec<(Path, Value)> {
        let mut out = Vec::new();
        collect_leaves(&Path::root(), &self.fields, &mut out);
        out
    }

    /// A stable one-line summary used by `dbox check`.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} ({} {}, rev {}): {}",
            self.meta.kind, self.meta.name, self.meta.kind, self.meta.version, self.revision, self.fields
        )
    }
}

fn collect_leaves(prefix: &Path, v: &Value, out: &mut Vec<(Path, Value)>) {
    match v {
        Value::Map(m) => {
            for (k, child) in m {
                collect_leaves(&prefix.child(k), child, out);
            }
        }
        other => out.push((prefix.clone(), other.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    fn lamp() -> Model {
        Model::with_fields(
            Meta::new("Lamp", "v1", "L1"),
            vmap! {
                "power" => vmap! { "intent" => "on", "status" => "off" },
                "intensity" => vmap! { "intent" => 0.2, "status" => 0.4 },
            },
        )
    }

    #[test]
    fn pair_roundtrip() {
        let mut m = lamp();
        let p = Path::from("power");
        let pair = m.pair(&p).unwrap();
        assert_eq!(pair.intent.as_str(), Some("on"));
        assert_eq!(pair.status.as_str(), Some("off"));
        m.set_status(&p, "on").unwrap();
        assert_eq!(m.status(&p).unwrap().as_str(), Some("on"));
    }

    #[test]
    fn revision_bumps_on_mutation() {
        let mut m = lamp();
        let r0 = m.revision();
        m.set(&Path::from("power.status"), "on").unwrap();
        assert_eq!(m.revision(), r0 + 1);
        m.update(vmap! { "triggered" => true }).unwrap();
        assert_eq!(m.revision(), r0 + 2);
        m.remove(&Path::from("triggered")).unwrap();
        assert_eq!(m.revision(), r0 + 3);
    }

    #[test]
    fn update_is_shallow_merge() {
        let mut m = lamp();
        m.update(vmap! { "triggered" => true }).unwrap();
        assert_eq!(m.get(&Path::from("triggered")).unwrap(), &Value::Bool(true));
        // existing fields survive
        assert!(m.get(&Path::from("power.intent")).is_ok());
    }

    #[test]
    fn pair_missing_half_is_violation() {
        let m = Model::with_fields(
            Meta::new("Lamp", "v1", "L2"),
            vmap! { "power" => vmap! { "intent" => "on" } },
        );
        assert!(matches!(
            m.pair(&Path::from("power")),
            Err(ModelError::SchemaViolation { .. })
        ));
    }

    #[test]
    fn leaves_enumerates_scalars() {
        let m = lamp();
        let leaves = m.leaves();
        let paths: Vec<String> = leaves.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(
            paths,
            ["intensity.intent", "intensity.status", "power.intent", "power.status"]
        );
    }

    #[test]
    fn serde_roundtrip_preserves_revision() {
        let mut m = lamp();
        m.set(&Path::from("power.status"), "on").unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Model = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
