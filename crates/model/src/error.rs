use std::fmt;

/// Errors produced by the model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A path referenced a field that does not exist.
    MissingField(String),
    /// A value had a different type than the operation required.
    TypeMismatch { path: String, expected: &'static str, found: &'static str },
    /// A path tried to traverse through a scalar.
    NotAContainer(String),
    /// Schema validation failed.
    SchemaViolation { path: String, reason: String },
    /// A DML document could not be parsed.
    Parse { line: usize, reason: String },
    /// A patch could not be applied (e.g. stale resource version).
    PatchConflict(String),
    /// An invalid path literal (empty segment etc.).
    BadPath(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingField(p) => write!(f, "missing field: {p}"),
            ModelError::TypeMismatch { path, expected, found } => {
                write!(f, "type mismatch at {path}: expected {expected}, found {found}")
            }
            ModelError::NotAContainer(p) => write!(f, "cannot traverse into scalar at {p}"),
            ModelError::SchemaViolation { path, reason } => {
                write!(f, "schema violation at {path}: {reason}")
            }
            ModelError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            ModelError::PatchConflict(m) => write!(f, "patch conflict: {m}"),
            ModelError::BadPath(p) => write!(f, "bad path: {p:?}"),
        }
    }
}

impl std::error::Error for ModelError {}
