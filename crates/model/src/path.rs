use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result, Value};

/// A dotted path into a model's field tree, e.g. `power.status`.
///
/// Paths are the addressing scheme used by patches, schemas, scene
/// properties and the `dbox edit` command. Segments may not be empty; the
/// empty path (`Path::root()`) addresses the whole field tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Path {
    segments: Vec<String>,
}

impl Path {
    /// The root path (addresses the whole tree).
    pub fn root() -> Path {
        Path { segments: Vec::new() }
    }

    /// Parse a dotted path literal. Rejects empty segments (`a..b`).
    pub fn parse(s: &str) -> Result<Path> {
        if s.is_empty() {
            return Ok(Path::root());
        }
        let segments: Vec<String> = s.split('.').map(str::to_string).collect();
        if segments.iter().any(String::is_empty) {
            return Err(ModelError::BadPath(s.to_string()));
        }
        Ok(Path { segments })
    }

    /// Build a path from pre-split segments.
    pub fn from_segments<I, S>(segs: I) -> Path
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Path { segments: segs.into_iter().map(Into::into).collect() }
    }

    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Append a segment, returning the extended path.
    pub fn child(&self, seg: &str) -> Path {
        let mut segments = self.segments.clone();
        segments.push(seg.to_string());
        Path { segments }
    }

    /// The parent path and final segment, or `None` at the root.
    pub fn split_last(&self) -> Option<(Path, &str)> {
        let (last, rest) = self.segments.split_last()?;
        Some((Path { segments: rest.to_vec() }, last))
    }

    /// Whether `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.segments.len() >= self.segments.len()
            && self.segments.iter().zip(&other.segments).all(|(a, b)| a == b)
    }

    /// Resolve this path against a value tree (read).
    pub fn get<'v>(&self, root: &'v Value) -> Result<&'v Value> {
        let mut cur = root;
        for (i, seg) in self.segments.iter().enumerate() {
            match cur {
                Value::Map(m) => {
                    cur = m.get(seg).ok_or_else(|| {
                        ModelError::MissingField(self.segments[..=i].join("."))
                    })?;
                }
                _ => return Err(ModelError::NotAContainer(self.segments[..i].join("."))),
            }
        }
        Ok(cur)
    }

    /// Resolve this path against a value tree (read, returns `None` on any
    /// missing step instead of an error).
    pub fn lookup<'v>(&self, root: &'v Value) -> Option<&'v Value> {
        let mut cur = root;
        for seg in &self.segments {
            cur = cur.as_map()?.get(seg)?;
        }
        Some(cur)
    }

    /// Set the value at this path, creating intermediate maps as needed.
    /// Fails when the path traverses through an existing scalar.
    pub fn set(&self, root: &mut Value, value: Value) -> Result<()> {
        if self.is_root() {
            *root = value;
            return Ok(());
        }
        let mut cur = root;
        for (i, seg) in self.segments.iter().enumerate() {
            let last = i + 1 == self.segments.len();
            let map = match cur {
                Value::Map(m) => m,
                _ => return Err(ModelError::NotAContainer(self.segments[..i].join("."))),
            };
            if last {
                map.insert(seg.clone(), value);
                return Ok(());
            }
            cur = map.entry(seg.clone()).or_insert_with(Value::map);
        }
        unreachable!("non-root path always has a final segment")
    }

    /// Remove the value at this path. Returns the removed value, or an error
    /// if it does not exist.
    pub fn remove(&self, root: &mut Value) -> Result<Value> {
        let (parent, last) = self
            .split_last()
            .ok_or_else(|| ModelError::BadPath("cannot remove root".into()))?;
        let mut cur = root;
        for (i, seg) in parent.segments.iter().enumerate() {
            match cur {
                Value::Map(m) => {
                    cur = m.get_mut(seg).ok_or_else(|| {
                        ModelError::MissingField(parent.segments[..=i].join("."))
                    })?;
                }
                _ => return Err(ModelError::NotAContainer(parent.segments[..i].join("."))),
            }
        }
        match cur {
            Value::Map(m) => m
                .remove(last)
                .ok_or_else(|| ModelError::MissingField(self.to_string())),
            _ => Err(ModelError::NotAContainer(parent.to_string())),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.segments.join("."))
    }
}

impl From<&str> for Path {
    /// Panicking conversion for path literals in code; use [`Path::parse`]
    /// for untrusted input.
    fn from(s: &str) -> Path {
        Path::parse(s).expect("invalid path literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn parse_and_display() {
        let p = Path::parse("power.status").unwrap();
        assert_eq!(p.segments(), ["power", "status"]);
        assert_eq!(p.to_string(), "power.status");
        assert!(Path::parse("a..b").is_err());
        assert!(Path::parse("").unwrap().is_root());
    }

    #[test]
    fn get_set_remove() {
        let mut v = vmap! { "power" => vmap! { "status" => "on" } };
        let p = Path::from("power.status");
        assert_eq!(p.get(&v).unwrap().as_str(), Some("on"));
        p.set(&mut v, Value::from("off")).unwrap();
        assert_eq!(p.get(&v).unwrap().as_str(), Some("off"));
        let removed = p.remove(&mut v).unwrap();
        assert_eq!(removed.as_str(), Some("off"));
        assert!(p.get(&v).is_err());
    }

    #[test]
    fn set_creates_intermediates() {
        let mut v = Value::map();
        Path::from("a.b.c").set(&mut v, Value::Int(1)).unwrap();
        assert_eq!(Path::from("a.b.c").get(&v).unwrap(), &Value::Int(1));
    }

    #[test]
    fn set_through_scalar_fails() {
        let mut v = vmap! { "a" => 1 };
        assert!(Path::from("a.b").set(&mut v, Value::Int(2)).is_err());
    }

    #[test]
    fn prefix_relation() {
        let a = Path::from("a.b");
        let b = Path::from("a.b.c");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(Path::root().is_prefix_of(&a));
    }

    #[test]
    fn lookup_vs_get() {
        let v = vmap! { "a" => 1 };
        assert!(Path::from("b").lookup(&v).is_none());
        assert!(Path::from("b").get(&v).is_err());
        assert_eq!(Path::from("a").lookup(&v), Some(&Value::Int(1)));
    }
}
