use std::cell::RefCell;
use std::collections::HashMap; // keyed lookup only; `dbox audit` (DH0002) checks every iteration site
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result, Value};

/// A dotted path into a model's field tree, e.g. `power.status`.
///
/// Paths are the addressing scheme used by patches, schemas, scene
/// properties and the `dbox edit` command. Segments may not be empty; the
/// empty path (`Path::root()`) addresses the whole field tree.
///
/// Segments are held behind an `Arc`, so `Clone` is a refcount bump and
/// interned paths ([`Path::interned`]) share one allocation across every
/// handler invocation instead of re-splitting the literal per read/write.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    segments: Arc<[String]>,
}

// Serialize exactly as the former `#[serde(transparent)] Vec<String>` did
// (a plain JSON array), so traces and stored models keep their format.
impl Serialize for Path {
    fn serialize<S: serde::Serializer>(&self, s: S) -> std::result::Result<S::Ok, S::Error> {
        self.segments[..].serialize(s)
    }
}

impl<'de> Deserialize<'de> for Path {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> std::result::Result<Path, D::Error> {
        let segments = Vec::<String>::deserialize(d)?;
        Ok(Path { segments: segments.into() })
    }
}

/// Interned `(base, base.intent, base.status)` triple for one field literal.
#[derive(Clone)]
struct InternedField {
    base: Path,
    intent: Path,
    status: Path,
}

thread_local! {
    /// Field-literal intern table. Keys come from device/scene programs and
    /// schemas, a small closed set per process; the cap only guards against
    /// a pathological caller interning unbounded untrusted input.
    static FIELD_CACHE: RefCell<HashMap<Box<str>, InternedField>> =
        RefCell::new(HashMap::new());

    /// Append-only id registry: literal → dense u32 and back. Unlike
    /// `FIELD_CACHE` this never clears — a column id handed out once must
    /// stay valid for the life of the thread, because columnar stores
    /// (`crate::columns`) index their dense arrays by it.
    static FIELD_IDS: RefCell<(HashMap<Box<str>, u32>, Vec<Box<str>>)> =
        RefCell::new((HashMap::new(), Vec::new()));
}

const FIELD_CACHE_CAP: usize = 4096;

fn interned_field(s: &str) -> Result<InternedField> {
    FIELD_CACHE.with(|c| {
        if let Some(f) = c.borrow().get(s) {
            return Ok(f.clone());
        }
        let base = Path::parse(s)?;
        let f = InternedField {
            intent: base.child("intent"),
            status: base.child("status"),
            base,
        };
        let mut cache = c.borrow_mut();
        if cache.len() >= FIELD_CACHE_CAP {
            cache.clear();
        }
        cache.insert(s.into(), f.clone());
        Ok(f)
    })
}

impl Path {
    /// The root path (addresses the whole tree).
    pub fn root() -> Path {
        Path { segments: Vec::new().into() }
    }

    /// Parse a dotted path literal. Rejects empty segments (`a..b`).
    pub fn parse(s: &str) -> Result<Path> {
        if s.is_empty() {
            return Ok(Path::root());
        }
        let segments: Vec<String> = s.split('.').map(str::to_string).collect();
        if segments.iter().any(String::is_empty) {
            return Err(ModelError::BadPath(s.to_string()));
        }
        Ok(Path { segments: segments.into() })
    }

    /// Parse with interning: repeated calls with the same literal return
    /// clones of one shared parse (the hot path for handler field access).
    pub fn interned(s: &str) -> Result<Path> {
        Ok(interned_field(s)?.base)
    }

    /// Interned `<field>.intent` — pre-resolved once per literal.
    pub fn interned_intent(s: &str) -> Result<Path> {
        Ok(interned_field(s)?.intent)
    }

    /// Interned `<field>.status` — pre-resolved once per literal.
    pub fn interned_status(s: &str) -> Result<Path> {
        Ok(interned_field(s)?.status)
    }

    /// Dense numeric handle for an interned field literal, for use as a
    /// column index in [`crate::columns`]. Ids are assigned sequentially in
    /// first-intern order and are **append-only**: they survive
    /// `FIELD_CACHE` evictions, so an id handed out once stays valid for
    /// the life of the thread. Ids are thread-local — never persist them or
    /// let them leak into serialized/observable output (use the literal).
    pub fn column_id(s: &str) -> Result<u32> {
        // Validate through the parse cache first so malformed literals
        // never claim an id slot.
        interned_field(s)?;
        Ok(FIELD_IDS.with(|ids| {
            let mut ids = ids.borrow_mut();
            if let Some(&id) = ids.0.get(s) {
                return id;
            }
            let id = ids.1.len() as u32;
            ids.0.insert(s.into(), id);
            ids.1.push(s.into());
            id
        }))
    }

    /// The literal a [`Path::column_id`] was assigned for, or `None` if the
    /// id was never issued on this thread.
    pub fn column_literal(id: u32) -> Option<String> {
        FIELD_IDS.with(|ids| ids.borrow().1.get(id as usize).map(|s| s.to_string()))
    }

    /// Build a path from pre-split segments.
    pub fn from_segments<I, S>(segs: I) -> Path
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Path { segments: segs.into_iter().map(Into::into).collect::<Vec<_>>().into() }
    }

    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Append a segment, returning the extended path.
    pub fn child(&self, seg: &str) -> Path {
        let mut segments = Vec::with_capacity(self.segments.len() + 1);
        segments.extend(self.segments.iter().cloned());
        segments.push(seg.to_string());
        Path { segments: segments.into() }
    }

    /// The parent path and final segment, or `None` at the root.
    pub fn split_last(&self) -> Option<(Path, &str)> {
        let (last, rest) = self.segments.split_last()?;
        Some((Path { segments: rest.to_vec().into() }, last))
    }

    /// Whether `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.segments.len() >= self.segments.len()
            && self.segments.iter().zip(other.segments.iter()).all(|(a, b)| a == b)
    }

    /// Resolve this path against a value tree (read).
    pub fn get<'v>(&self, root: &'v Value) -> Result<&'v Value> {
        let mut cur = root;
        for (i, seg) in self.segments.iter().enumerate() {
            match cur {
                Value::Map(m) => {
                    cur = m.get(seg).ok_or_else(|| {
                        ModelError::MissingField(self.segments[..=i].join("."))
                    })?;
                }
                _ => return Err(ModelError::NotAContainer(self.segments[..i].join("."))),
            }
        }
        Ok(cur)
    }

    /// Resolve this path against a value tree (read, returns `None` on any
    /// missing step instead of an error).
    pub fn lookup<'v>(&self, root: &'v Value) -> Option<&'v Value> {
        let mut cur = root;
        for seg in self.segments.iter() {
            cur = cur.as_map()?.get(seg)?;
        }
        Some(cur)
    }

    /// Set the value at this path, creating intermediate maps as needed.
    /// Fails when the path traverses through an existing scalar.
    pub fn set(&self, root: &mut Value, value: Value) -> Result<()> {
        if self.is_root() {
            *root = value;
            return Ok(());
        }
        let mut cur = root;
        for (i, seg) in self.segments.iter().enumerate() {
            let last = i + 1 == self.segments.len();
            let map = match cur {
                Value::Map(m) => m,
                _ => return Err(ModelError::NotAContainer(self.segments[..i].join("."))),
            };
            if last {
                map.insert(seg.clone(), value);
                return Ok(());
            }
            cur = map.entry(seg.clone()).or_insert_with(Value::map);
        }
        unreachable!("non-root path always has a final segment")
    }

    /// Remove the value at this path. Returns the removed value, or an error
    /// if it does not exist.
    pub fn remove(&self, root: &mut Value) -> Result<Value> {
        let (parent, last) = self
            .split_last()
            .ok_or_else(|| ModelError::BadPath("cannot remove root".into()))?;
        let mut cur = root;
        for (i, seg) in parent.segments.iter().enumerate() {
            match cur {
                Value::Map(m) => {
                    cur = m.get_mut(seg).ok_or_else(|| {
                        ModelError::MissingField(parent.segments[..=i].join("."))
                    })?;
                }
                _ => return Err(ModelError::NotAContainer(parent.segments[..i].join("."))),
            }
        }
        match cur {
            Value::Map(m) => m
                .remove(last)
                .ok_or_else(|| ModelError::MissingField(self.to_string())),
            _ => Err(ModelError::NotAContainer(parent.to_string())),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.segments.join("."))
    }
}

impl From<&str> for Path {
    /// Panicking conversion for path literals in code; use [`Path::parse`]
    /// for untrusted input.
    fn from(s: &str) -> Path {
        Path::parse(s).expect("invalid path literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn parse_and_display() {
        let p = Path::parse("power.status").unwrap();
        assert_eq!(p.segments(), ["power", "status"]);
        assert_eq!(p.to_string(), "power.status");
        assert!(Path::parse("a..b").is_err());
        assert!(Path::parse("").unwrap().is_root());
    }

    #[test]
    fn get_set_remove() {
        let mut v = vmap! { "power" => vmap! { "status" => "on" } };
        let p = Path::from("power.status");
        assert_eq!(p.get(&v).unwrap().as_str(), Some("on"));
        p.set(&mut v, Value::from("off")).unwrap();
        assert_eq!(p.get(&v).unwrap().as_str(), Some("off"));
        let removed = p.remove(&mut v).unwrap();
        assert_eq!(removed.as_str(), Some("off"));
        assert!(p.get(&v).is_err());
    }

    #[test]
    fn set_creates_intermediates() {
        let mut v = Value::map();
        Path::from("a.b.c").set(&mut v, Value::Int(1)).unwrap();
        assert_eq!(Path::from("a.b.c").get(&v).unwrap(), &Value::Int(1));
    }

    #[test]
    fn set_through_scalar_fails() {
        let mut v = vmap! { "a" => 1 };
        assert!(Path::from("a.b").set(&mut v, Value::Int(2)).is_err());
    }

    #[test]
    fn prefix_relation() {
        let a = Path::from("a.b");
        let b = Path::from("a.b.c");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(Path::root().is_prefix_of(&a));
    }

    #[test]
    fn interned_paths_share_one_parse() {
        let a = Path::interned("power.status").unwrap();
        let b = Path::interned("power.status").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.segments(), ["power", "status"]);
        assert_eq!(
            Path::interned_intent("power").unwrap(),
            Path::from("power.intent")
        );
        assert_eq!(
            Path::interned_status("power").unwrap(),
            Path::from("power.status")
        );
        assert!(Path::interned("a..b").is_err());
    }

    #[test]
    fn column_ids_are_dense_stable_and_reversible() {
        let a = Path::column_id("colid.test.a").unwrap();
        let b = Path::column_id("colid.test.b").unwrap();
        assert_ne!(a, b);
        assert_eq!(Path::column_id("colid.test.a").unwrap(), a);
        assert_eq!(Path::column_literal(a).as_deref(), Some("colid.test.a"));
        assert!(Path::column_id("a..b").is_err());
        // Ids survive a FIELD_CACHE eviction cycle: blow past the cap and
        // confirm the original literal still maps to the same id.
        for i in 0..(FIELD_CACHE_CAP + 8) {
            let _ = Path::interned(&format!("colid.churn.{i}"));
        }
        assert_eq!(Path::column_id("colid.test.a").unwrap(), a);
    }

    #[test]
    fn serde_format_is_a_plain_array() {
        let p = Path::from("a.b.c");
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, r#"["a","b","c"]"#);
        let back: Path = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn lookup_vs_get() {
        let v = vmap! { "a" => 1 };
        assert!(Path::from("b").lookup(&v).is_none());
        assert!(Path::from("b").get(&v).is_err());
        assert_eq!(Path::from("a").lookup(&v), Some(&Value::Int(1)));
    }
}
