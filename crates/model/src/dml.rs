//! DML — the *Digibox Model Language*.
//!
//! A hand-written parser and printer for the YAML-like subset Digibox uses
//! for shareable model and setup files (paper, Fig. 3). Supported syntax:
//!
//! * nested maps via 2-space indentation: `power:` followed by indented keys;
//! * scalars: `null`/`~`, `true`/`false`, integers, floats, quoted and bare
//!   strings;
//! * inline (flow) lists: `attach: [L1, O1]`;
//! * block lists: lines starting with `- `;
//! * comments with `#` (outside quotes) and blank lines;
//! * multiple documents separated by `---`.
//!
//! Full YAML (anchors, tags, flow maps, multi-line strings) is deliberately
//! out of scope — DML documents are machine-written and machine-read.

use crate::{ModelError, Result, Value};
use std::collections::BTreeMap;

/// Parse a DML string holding exactly one document.
pub fn parse(input: &str) -> Result<Value> {
    let mut docs = parse_documents(input)?;
    match docs.len() {
        1 => Ok(docs.remove(0)),
        n => Err(ModelError::Parse { line: 0, reason: format!("expected 1 document, found {n}") }),
    }
}

/// Parse a DML string into its `---`-separated documents.
pub fn parse_documents(input: &str) -> Result<Vec<Value>> {
    let mut docs = Vec::new();
    let mut lines: Vec<Line> = Vec::new();
    let mut lineno = 0usize;
    for raw in input.lines() {
        lineno += 1;
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim_end();
        if trimmed.trim().is_empty() {
            continue;
        }
        if trimmed.trim() == "---" {
            docs.push(parse_block(&lines)?);
            lines.clear();
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start().len();
        if indent % 2 != 0 {
            return Err(ModelError::Parse {
                line: lineno,
                reason: "indentation must be a multiple of 2 spaces".into(),
            });
        }
        lines.push(Line { no: lineno, depth: indent / 2, text: trimmed.trim_start().to_string() });
    }
    if !lines.is_empty() || docs.is_empty() {
        docs.push(parse_block(&lines)?);
    }
    Ok(docs)
}

/// Serialize a value as a DML document (no trailing `---`).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, 0, &mut out);
    out
}

/// Serialize several documents, `---`-separated.
pub fn documents_to_string(docs: &[Value]) -> String {
    let mut out = String::new();
    for (i, d) in docs.iter().enumerate() {
        if i > 0 {
            out.push_str("---\n");
        }
        write_value(d, 0, &mut out);
    }
    out
}

struct Line {
    no: usize,
    depth: usize,
    text: String,
}

fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_quotes = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
            out.push(c);
            continue;
        }
        match c {
            '\\' if in_quotes => {
                escaped = true;
                out.push(c);
            }
            '"' => {
                in_quotes = !in_quotes;
                out.push(c);
            }
            '#' if !in_quotes => break,
            _ => out.push(c),
        }
    }
    out
}

fn parse_block(lines: &[Line]) -> Result<Value> {
    if lines.is_empty() {
        return Ok(Value::map());
    }
    let (v, consumed) = parse_node(lines, 0, lines[0].depth)?;
    if consumed != lines.len() {
        return Err(ModelError::Parse {
            line: lines[consumed].no,
            reason: "unexpected de-indented content after document root".into(),
        });
    }
    Ok(v)
}

/// Parse the node starting at `lines[start]`, all at `depth`. Returns the
/// value and how many lines were consumed.
fn parse_node(lines: &[Line], start: usize, depth: usize) -> Result<(Value, usize)> {
    if lines[start].text.starts_with("- ") || lines[start].text == "-" {
        parse_list(lines, start, depth)
    } else {
        parse_map(lines, start, depth)
    }
}

fn parse_map(lines: &[Line], start: usize, depth: usize) -> Result<(Value, usize)> {
    let mut map = BTreeMap::new();
    let mut i = start;
    while i < lines.len() && lines[i].depth == depth && !lines[i].text.starts_with("- ") {
        let line = &lines[i];
        let (key, rest) = split_key(line)?;
        if map.contains_key(&key) {
            return Err(ModelError::Parse { line: line.no, reason: format!("duplicate key {key:?}") });
        }
        if rest.is_empty() {
            // nested block (map or list) on following, deeper lines
            if i + 1 < lines.len() && lines[i + 1].depth > depth {
                let (child, consumed) = parse_node(lines, i + 1, lines[i + 1].depth)?;
                map.insert(key, child);
                i += 1 + consumed;
            } else {
                // `key:` with nothing nested → null
                map.insert(key, Value::Null);
                i += 1;
            }
        } else {
            map.insert(key, parse_scalar_or_flow(&rest, line.no)?);
            i += 1;
        }
        if i < lines.len() && lines[i].depth > depth {
            return Err(ModelError::Parse {
                line: lines[i].no,
                reason: "unexpected indentation under scalar value".into(),
            });
        }
        if i < lines.len() && lines[i].depth < depth {
            break;
        }
    }
    Ok((Value::Map(map), i - start))
}

fn parse_list(lines: &[Line], start: usize, depth: usize) -> Result<(Value, usize)> {
    let mut items = Vec::new();
    let mut i = start;
    while i < lines.len() && lines[i].depth == depth && (lines[i].text.starts_with("- ") || lines[i].text == "-") {
        let line = &lines[i];
        let body = line.text.strip_prefix('-').unwrap().trim_start();
        if body.is_empty() {
            // nested structure as the list element
            if i + 1 < lines.len() && lines[i + 1].depth > depth {
                let (child, consumed) = parse_node(lines, i + 1, lines[i + 1].depth)?;
                items.push(child);
                i += 1 + consumed;
            } else {
                items.push(Value::Null);
                i += 1;
            }
        } else if body.contains(": ") || body.ends_with(':') {
            // inline `- key: value` single-line map entry (common in setups)
            let sub = Line { no: line.no, depth: 0, text: body.to_string() };
            let (v, _) = parse_map(std::slice::from_ref(&sub), 0, 0)?;
            items.push(v);
            i += 1;
        } else {
            items.push(parse_scalar_or_flow(body, line.no)?);
            i += 1;
        }
        if i < lines.len() && lines[i].depth < depth {
            break;
        }
    }
    Ok((Value::List(items), i - start))
}

fn split_key(line: &Line) -> Result<(String, String)> {
    // find the first `:` outside quotes
    let mut in_quotes = false;
    for (idx, c) in line.text.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ':' if !in_quotes => {
                let key_raw = line.text[..idx].trim();
                let rest = line.text[idx + 1..].trim().to_string();
                if key_raw.is_empty() {
                    return Err(ModelError::Parse { line: line.no, reason: "empty key".into() });
                }
                let key = unquote(key_raw);
                return Ok((key, rest));
            }
            _ => {}
        }
    }
    Err(ModelError::Parse { line: line.no, reason: format!("expected `key: value`, got {:?}", line.text) })
}

fn parse_scalar_or_flow(s: &str, lineno: usize) -> Result<Value> {
    let s = s.trim();
    if s == "{}" {
        return Ok(Value::map()); // the only flow-map form DML supports
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| ModelError::Parse { line: lineno, reason: "unterminated flow list".into() })?;
        let mut items = Vec::new();
        for part in split_flow_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_scalar(part));
        }
        return Ok(Value::List(items));
    }
    Ok(parse_scalar(s))
}

/// Split a flow list body on commas outside quotes/brackets.
fn split_flow_items(s: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    let mut bracket_depth = 0usize;
    for c in s.chars() {
        if escaped {
            escaped = false;
            cur.push(c);
            continue;
        }
        match c {
            '\\' if in_quotes => {
                escaped = true;
                cur.push(c);
            }
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            '[' if !in_quotes => {
                bracket_depth += 1;
                cur.push(c);
            }
            ']' if !in_quotes => {
                bracket_depth = bracket_depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if !in_quotes && bracket_depth == 0 => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        items.push(cur);
    }
    items
}

fn parse_scalar(s: &str) -> Value {
    match s {
        "null" | "~" => return Value::Null,
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if s.starts_with('"') && s.ends_with('"') && s.len() >= 2 {
        return Value::Str(unescape(&s[1..s.len() - 1]));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    // Floats must look numeric (avoid swallowing bare strings like `1.2.3`).
    if let Ok(x) = s.parse::<f64>() {
        if s.bytes().all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E')) {
            return Value::Float(x);
        }
    }
    Value::Str(s.to_string())
}

fn unquote(s: &str) -> String {
    if s.starts_with('"') && s.ends_with('"') && s.len() >= 2 {
        unescape(&s[1..s.len() - 1])
    } else {
        s.to_string()
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out
}

/// A bare string is one that parses back to itself as a string scalar.
fn needs_quotes(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    if s != s.trim() {
        return true;
    }
    if matches!(s, "null" | "~" | "true" | "false" | "---") {
        return true;
    }
    if s.parse::<i64>().is_ok() || s.parse::<f64>().is_ok() {
        return true;
    }
    s.contains(':')
        || s.contains('#')
        || s.contains('[')
        || s.contains(']')
        || s.contains(',')
        || s.contains('"')
        || s.contains('\n')
        || s.contains('\t')
        || s.starts_with('-')
}

fn scalar_to_string(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        Value::Str(s) => {
            if needs_quotes(s) {
                format!("\"{}\"", escape(s))
            } else {
                s.clone()
            }
        }
        _ => unreachable!("scalar_to_string called on container"),
    }
}

fn write_value(v: &Value, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match v {
        Value::Map(m) => {
            if m.is_empty() {
                // an empty root still needs to parse back to an empty map;
                // emit nothing (parse of empty input yields an empty map).
                return;
            }
            for (k, child) in m {
                let key = if needs_quotes(k) { format!("\"{}\"", escape(k)) } else { k.clone() };
                match child {
                    Value::Map(cm) if !cm.is_empty() => {
                        out.push_str(&format!("{pad}{key}:\n"));
                        write_value(child, depth + 1, out);
                    }
                    Value::Map(_) => {
                        // empty map has no block form; use the flow literal
                        out.push_str(&format!("{pad}{key}: {{}}\n"));
                    }
                    Value::List(items) if items.iter().all(Value::is_scalar) => {
                        let inline: Vec<String> = items.iter().map(scalar_to_string).collect();
                        out.push_str(&format!("{pad}{key}: [{}]\n", inline.join(", ")));
                    }
                    Value::List(_) => {
                        out.push_str(&format!("{pad}{key}:\n"));
                        write_value(child, depth + 1, out);
                    }
                    scalar => {
                        out.push_str(&format!("{pad}{key}: {}\n", scalar_to_string(scalar)));
                    }
                }
            }
        }
        Value::List(items) => {
            for item in items {
                match item {
                    Value::Map(m) if m.is_empty() => out.push_str(&format!("{pad}- {{}}\n")),
                    Value::List(l) if l.is_empty() => out.push_str(&format!("{pad}- []\n")),
                    Value::List(l) if l.iter().all(Value::is_scalar) => {
                        let inline: Vec<String> = l.iter().map(scalar_to_string).collect();
                        out.push_str(&format!("{pad}- [{}]\n", inline.join(", ")));
                    }
                    Value::Map(_) | Value::List(_) => {
                        out.push_str(&format!("{pad}-\n"));
                        write_value(item, depth + 1, out);
                    }
                    scalar => out.push_str(&format!("{pad}- {}\n", scalar_to_string(scalar))),
                }
            }
        }
        scalar => out.push_str(&format!("{pad}{}\n", scalar_to_string(scalar))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn parses_paper_fig3_occupancy() {
        let doc = "\
meta:
  type: Occupancy
  version: v1
  name: O1
  managed: true
  # ..more config
triggered: true
";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("triggered"), Some(&Value::Bool(true)));
        let meta = v.get("meta").unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("Occupancy"));
        assert_eq!(meta.get("managed"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_paper_fig3_room_with_attach() {
        let doc = "\
meta:
  type: Room
  version: v2
  name: MeetingRoom
  managed: true
  human_presence: true
  attach: [L1,O1]
";
        let v = parse(doc).unwrap();
        let attach = v.get("meta").unwrap().get("attach").unwrap().as_list().unwrap();
        assert_eq!(attach.len(), 2);
        assert_eq!(attach[0].as_str(), Some("L1"));
    }

    #[test]
    fn parses_multiple_documents() {
        let doc = "a: 1\n---\nb: 2\n";
        let docs = parse_documents(doc).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("a"), Some(&Value::Int(1)));
        assert_eq!(docs[1].get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn parses_nested_pairs() {
        let doc = "\
power:
  intent: \"on\"
  status: \"on\"
intensity:
  intent: 0.2
  status: 0.4
";
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("intensity").unwrap().get("intent").unwrap().as_float(),
            Some(0.2)
        );
        assert_eq!(v.get("power").unwrap().get("intent").unwrap().as_str(), Some("on"));
    }

    #[test]
    fn parses_block_lists() {
        let doc = "\
mocks:
  - L1
  - O1
scenes:
  -
    name: room
    kind: Room
";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("mocks").unwrap().as_list().unwrap().len(), 2);
        let scenes = v.get("scenes").unwrap().as_list().unwrap();
        assert_eq!(scenes[0].get("name").unwrap().as_str(), Some("room"));
    }

    #[test]
    fn scalar_types() {
        let doc = "a: 1\nb: 1.5\nc: true\nd: null\ne: hello world\nf: \"quoted: str\"\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), Some(&Value::Float(1.5)));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("hello world"));
        assert_eq!(v.get("f").unwrap().as_str(), Some("quoted: str"));
    }

    #[test]
    fn roundtrip_complex() {
        let v = vmap! {
            "meta" => vmap! {
                "type" => "Room",
                "name" => "MeetingRoom",
                "attach" => vec!["L1", "O1"],
                "managed" => true,
            },
            "human_presence" => false,
            "temps" => vec![20.5, 21.0],
            "notes" => "needs: cleanup",
            "count" => 3,
        };
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn roundtrip_documents() {
        let docs = vec![vmap! { "a" => 1 }, vmap! { "b" => vec![1i64, 2, 3] }];
        let text = documents_to_string(&docs);
        let back = parse_documents(&text).unwrap();
        assert_eq!(docs, back);
    }

    #[test]
    fn rejects_odd_indent() {
        assert!(parse("a:\n   b: 1\n").is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert!(parse("a: 1\na: 2\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let doc = "# header\n\na: 1 # trailing\n\n# footer\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
    }

    #[test]
    fn hash_inside_quotes_preserved() {
        let v = parse("a: \"x # y\"\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x # y"));
    }

    #[test]
    fn quoted_strings_that_look_like_other_types() {
        let v = parse("a: \"true\"\nb: \"1\"\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("true"));
        assert_eq!(v.get("b").unwrap().as_str(), Some("1"));
        // and they re-serialize with quotes
        let text = to_string(&v);
        assert!(text.contains("\"true\""));
        assert!(text.contains("\"1\""));
    }

    #[test]
    fn empty_input_is_empty_map() {
        assert_eq!(parse("").unwrap(), Value::map());
        assert_eq!(parse("# only comments\n").unwrap(), Value::map());
    }
}
