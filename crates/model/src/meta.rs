use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::Value;

/// The `meta` block of a model (paper, Fig. 3).
///
/// Identifies the digi (type/version/name), says whether its event
/// generation is `managed` (i.e. driven by an enclosing scene rather than by
/// its own generator), lists attachments, and carries free-form simulation
/// parameters (loop interval, RNG seed, value ranges, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Meta {
    /// The digi type, e.g. `Occupancy`, `Lamp`, `Room`, `Building`.
    #[serde(rename = "type")]
    pub kind: String,
    /// Schema/program version, e.g. `v1`.
    pub version: String,
    /// Instance name, unique within a testbed, e.g. `O1`, `MeetingRoom`.
    pub name: String,
    /// When true, this digi's own event generator is paused and an
    /// enclosing scene (or a test case) drives its status instead.
    #[serde(default)]
    pub managed: bool,
    /// Names of digis attached to this one (scenes only; empty for mocks).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub attach: Vec<String>,
    /// Free-form simulation parameters (interval ms, seed, ranges...).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub params: BTreeMap<String, Value>,
}

impl Meta {
    /// Create a meta block for `kind`/`name` at schema version `version`.
    pub fn new(kind: &str, version: &str, name: &str) -> Meta {
        Meta {
            kind: kind.to_string(),
            version: version.to_string(),
            name: name.to_string(),
            managed: false,
            attach: Vec::new(),
            params: BTreeMap::new(),
        }
    }

    /// Set a simulation parameter (builder style).
    pub fn with_param(mut self, key: &str, value: impl Into<Value>) -> Meta {
        self.params.insert(key.to_string(), value.into());
        self
    }

    /// Builder-style `managed` setter.
    pub fn with_managed(mut self, managed: bool) -> Meta {
        self.managed = managed;
        self
    }

    /// Read a parameter as integer (missing or non-int → `None`).
    pub fn param_int(&self, key: &str) -> Option<i64> {
        self.params.get(key).and_then(Value::as_int)
    }

    /// Read a parameter as float, widening ints.
    pub fn param_float(&self, key: &str) -> Option<f64> {
        self.params.get(key).and_then(Value::as_float)
    }

    /// Read a parameter as string.
    pub fn param_str(&self, key: &str) -> Option<&str> {
        self.params.get(key).and_then(Value::as_str)
    }

    /// Read a parameter as bool.
    pub fn param_bool(&self, key: &str) -> Option<bool> {
        self.params.get(key).and_then(Value::as_bool)
    }

    /// Event-generation loop interval in simulated milliseconds
    /// (`interval_ms` param; default 1000 ms, as in the paper's examples
    /// which tick about once a second).
    pub fn interval_ms(&self) -> u64 {
        self.param_int("interval_ms").map(|v| v.max(1) as u64).unwrap_or(1000)
    }

    /// RNG seed for this digi's event generator. Defaults to a stable hash
    /// of the instance name so distinct digis get distinct, reproducible
    /// streams even when no seed is configured.
    pub fn seed(&self) -> u64 {
        if let Some(s) = self.param_int("seed") {
            return s as u64;
        }
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_params() {
        let m = Meta::new("Lamp", "v1", "L1")
            .with_param("interval_ms", 250)
            .with_param("max_intensity", 0.9)
            .with_managed(true);
        assert_eq!(m.interval_ms(), 250);
        assert_eq!(m.param_float("max_intensity"), Some(0.9));
        assert!(m.managed);
    }

    #[test]
    fn default_interval() {
        assert_eq!(Meta::new("Fan", "v1", "F1").interval_ms(), 1000);
    }

    #[test]
    fn seed_is_stable_and_name_dependent() {
        let a = Meta::new("Occupancy", "v1", "O1").seed();
        let b = Meta::new("Occupancy", "v1", "O1").seed();
        let c = Meta::new("Occupancy", "v1", "O2").seed();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let with_seed = Meta::new("Occupancy", "v1", "O1").with_param("seed", 7);
        assert_eq!(with_seed.seed(), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let m = Meta::new("Room", "v2", "MeetingRoom").with_param("seed", 1);
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"type\":\"Room\""));
        let back: Meta = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
