//! Schema inference — the paper's §6 maintenance story:
//!
//! > "the IoT market is highly fragmented today: devices from different
//! > vendors may differ in the command/message schema, format, and
//! > behaviors … We are investigating technical solutions such as schema
//! > inference [35] … to simplify/automate the generation and maintenance
//! > of mocks and scenes."
//!
//! [`infer_schema`] derives a [`Schema`] from observed model samples (e.g.
//! the `model` messages of a real device captured with the paper's
//! "logging with real devices" workflow, §3.5): field kinds are unioned
//! across samples, numeric ranges widened to what was seen, small closed
//! string sets become enums, and `{intent, status}` maps become pair
//! fields. A mock generated from the inferred schema then validates
//! against every sample it was learned from (tested as an invariant).

use std::collections::BTreeSet;

use crate::{FieldKind, Schema, Value};

/// Max distinct strings that still infer as an enum (beyond this: `Str`).
const ENUM_LIMIT: usize = 6;
/// Minimum samples of a string field before we dare call it an enum.
const ENUM_MIN_SAMPLES: usize = 3;

/// Infer the schema of a model type from observed field trees.
///
/// Fields missing from some samples are inferred `optional`; fields
/// present in every sample are `required`. Returns a lenient (non-strict)
/// schema: unseen vendor extras should not fail validation.
pub fn infer_schema(kind: &str, version: &str, samples: &[Value]) -> Schema {
    let mut schema = Schema::new(kind, version);
    // collect field names across all samples
    let mut names: BTreeSet<&String> = BTreeSet::new();
    for sample in samples {
        if let Some(map) = sample.as_map() {
            names.extend(map.keys());
        }
    }
    for name in names {
        let observed: Vec<&Value> = samples.iter().filter_map(|s| s.get(name)).collect();
        if observed.is_empty() {
            continue;
        }
        let kind = infer_kind(&observed);
        let required = observed.len() == samples.len();
        if required {
            schema = schema.field(name, kind);
        } else {
            schema = schema.optional(name, kind);
        }
    }
    schema
}

/// Infer the kind of one field from its observed values.
fn infer_kind(observed: &[&Value]) -> FieldKind {
    // pair detection: every observation is a map with exactly intent+status
    let all_pairs = observed.iter().all(|v| {
        v.as_map()
            .map(|m| m.len() == 2 && m.contains_key("intent") && m.contains_key("status"))
            .unwrap_or(false)
    });
    if all_pairs {
        let halves: Vec<&Value> = observed
            .iter()
            .flat_map(|v| {
                let m = v.as_map().expect("checked above");
                [m.get("intent").expect("checked"), m.get("status").expect("checked")]
            })
            .collect();
        return FieldKind::pair(infer_kind(&halves));
    }

    // list detection
    if observed.iter().all(|v| v.as_list().is_some()) {
        let elements: Vec<&Value> =
            observed.iter().flat_map(|v| v.as_list().expect("checked").iter()).collect();
        let inner = if elements.is_empty() { FieldKind::Str } else { infer_kind(&elements) };
        return FieldKind::list(inner);
    }

    // scalar union
    let mut any_bool = false;
    let mut any_int = false;
    let mut any_float = false;
    let mut strings: BTreeSet<&str> = BTreeSet::new();
    let mut any_other = false;
    let mut any_null = false;
    let mut string_count = 0usize;
    let (mut min_f, mut max_f) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_i, mut max_i) = (i64::MAX, i64::MIN);
    for v in observed {
        match v {
            Value::Bool(_) => any_bool = true,
            Value::Int(i) => {
                any_int = true;
                min_i = min_i.min(*i);
                max_i = max_i.max(*i);
                min_f = min_f.min(*i as f64);
                max_f = max_f.max(*i as f64);
            }
            Value::Float(x) => {
                any_float = true;
                min_f = min_f.min(*x);
                max_f = max_f.max(*x);
            }
            Value::Str(s) => {
                string_count += 1;
                strings.insert(s);
            }
            Value::Null => any_null = true,
            _ => any_other = true,
        }
    }
    let any_string = string_count > 0;
    let numeric = any_int || any_float;
    let type_count = any_bool as u8 + numeric as u8 + any_string as u8;
    // nulls alongside a concrete type force Any: a null observation must
    // keep validating
    if any_other || type_count > 1 || (any_null && type_count > 0) {
        // mixed types: accept anything (the invariant is that every
        // observed sample validates against the inferred schema)
        return FieldKind::Any;
    }
    if any_bool {
        return FieldKind::Bool;
    }
    if any_float {
        return FieldKind::float_range(widen_min(min_f), widen_max(max_f));
    }
    if any_int {
        return FieldKind::int_range(widen_i(min_i, -1), widen_i(max_i, 1));
    }
    if any_string {
        if strings.len() <= ENUM_LIMIT
            && string_count >= ENUM_MIN_SAMPLES
            && string_count > strings.len()
        {
            // a small set seen repeatedly: a closed vocabulary
            return FieldKind::enumeration(strings.into_iter().map(str::to_string));
        }
        return FieldKind::Str;
    }
    // only nulls observed
    FieldKind::Any
}

/// Widen an observed bound by 10 % (plus a unit floor) so natural variance
/// beyond the samples does not immediately violate the schema.
fn widen_min(x: f64) -> f64 {
    x - (x.abs() * 0.1).max(1.0)
}

fn widen_max(x: f64) -> f64 {
    x + (x.abs() * 0.1).max(1.0)
}

fn widen_i(x: i64, dir: i64) -> i64 {
    x.saturating_add(dir * ((x.abs() / 10).max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vmap, Meta, Model};

    fn lamp_samples() -> Vec<Value> {
        vec![
            vmap! {
                "power" => vmap! { "intent" => "on", "status" => "on" },
                "intensity" => vmap! { "intent" => 0.2, "status" => 0.4 },
                "vendor_fw" => "2.1.0",
            },
            vmap! {
                "power" => vmap! { "intent" => "off", "status" => "off" },
                "intensity" => vmap! { "intent" => 0.0, "status" => 0.0 },
                "vendor_fw" => "2.1.0",
            },
            vmap! {
                "power" => vmap! { "intent" => "on", "status" => "off" },
                "intensity" => vmap! { "intent" => 0.9, "status" => 0.9 },
            },
        ]
    }

    #[test]
    fn infers_pairs_enums_and_ranges() {
        let schema = infer_schema("Lamp", "v1", &lamp_samples());
        // power: pair of enum{off,on}
        let power = &schema.fields["power"];
        assert!(power.required);
        match &power.kind {
            FieldKind::Pair { inner } => match inner.as_ref() {
                FieldKind::Enum { variants } => {
                    assert_eq!(variants, &vec!["off".to_string(), "on".to_string()]);
                }
                other => panic!("power inner should be enum, got {other:?}"),
            },
            other => panic!("power should be a pair, got {other:?}"),
        }
        // intensity: pair of float with widened range
        match &schema.fields["intensity"].kind {
            FieldKind::Pair { inner } => match inner.as_ref() {
                FieldKind::Float { min, max } => {
                    assert!(min.unwrap() <= 0.0);
                    assert!(max.unwrap() >= 0.9);
                }
                other => panic!("intensity inner should be float, got {other:?}"),
            },
            other => panic!("intensity should be a pair, got {other:?}"),
        }
        // vendor_fw appeared in 2/3 samples → optional
        assert!(!schema.fields["vendor_fw"].required);
    }

    #[test]
    fn every_sample_validates_against_inferred_schema() {
        let samples = lamp_samples();
        let schema = infer_schema("Lamp", "v1", &samples);
        for (i, s) in samples.iter().enumerate() {
            let model = Model::with_fields(Meta::new("Lamp", "v1", "probe"), s.clone());
            schema
                .validate(&model)
                .unwrap_or_else(|e| panic!("sample {i} does not validate: {e}"));
        }
    }

    #[test]
    fn instantiated_mock_validates() {
        let schema = infer_schema("Lamp", "v1", &lamp_samples());
        let model = schema.instantiate("L-generated");
        schema.validate(&model).unwrap();
    }

    #[test]
    fn int_fields_get_widened_ranges() {
        let samples = vec![vmap! { "n" => 10 }, vmap! { "n" => 20 }];
        let schema = infer_schema("T", "v1", &samples);
        match &schema.fields["n"].kind {
            FieldKind::Int { min, max } => {
                assert!(min.unwrap() < 10);
                assert!(max.unwrap() > 20);
            }
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn few_strings_seen_once_stay_strings() {
        // 2 samples, 2 distinct values: not enough evidence for an enum
        let samples = vec![vmap! { "s" => "a" }, vmap! { "s" => "b" }];
        let schema = infer_schema("T", "v1", &samples);
        assert!(matches!(schema.fields["s"].kind, FieldKind::Str));
    }

    #[test]
    fn mixed_types_fall_back_to_any() {
        let samples = vec![vmap! { "x" => 1 }, vmap! { "x" => "one" }];
        let schema = infer_schema("T", "v1", &samples);
        assert!(matches!(schema.fields["x"].kind, FieldKind::Any));
        // and both samples validate
        for s in &samples {
            let model = Model::with_fields(Meta::new("T", "v1", "p"), s.clone());
            schema.validate(&model).unwrap();
        }
    }

    #[test]
    fn lists_infer_element_kind() {
        let samples = vec![
            vmap! { "xs" => vec![1i64, 2, 3] },
            vmap! { "xs" => vec![4i64] },
        ];
        let schema = infer_schema("T", "v1", &samples);
        match &schema.fields["xs"].kind {
            FieldKind::List { inner } => assert!(matches!(**inner, FieldKind::Int { .. })),
            other => panic!("expected list, got {other:?}"),
        }
    }

    #[test]
    fn bools_and_nulls() {
        let samples = vec![vmap! { "b" => true, "n" => Value::Null }, vmap! { "b" => false }];
        let schema = infer_schema("T", "v1", &samples);
        assert!(matches!(schema.fields["b"].kind, FieldKind::Bool));
        assert!(matches!(schema.fields["n"].kind, FieldKind::Any));
        assert!(!schema.fields["n"].required);
    }

    #[test]
    fn empty_samples_give_empty_schema() {
        let schema = infer_schema("T", "v1", &[]);
        assert!(schema.fields.is_empty());
    }
}
