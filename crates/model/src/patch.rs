use serde::{Deserialize, Serialize};

use crate::{Model, Path, Result, Value};

/// One primitive patch operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum PatchOp {
    /// Set (create or replace) the value at `path`.
    Set { path: Path, value: Value },
    /// Remove the value at `path`.
    Remove { path: Path },
}

impl PatchOp {
    pub fn path(&self) -> &Path {
        match self {
            PatchOp::Set { path, .. } | PatchOp::Remove { path } => path,
        }
    }
}

/// A structural diff between two field trees, expressed as a list of ops on
/// scalar leaves. Patches are what scene controllers emit, what the logger
/// records as `ModelChange`, and what replay re-applies.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Patch {
    pub ops: Vec<PatchOp>,
}

impl Patch {
    pub fn new() -> Patch {
        Patch::default()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn set(mut self, path: impl Into<Path>, value: impl Into<Value>) -> Patch {
        self.ops.push(PatchOp::Set { path: path.into(), value: value.into() });
        self
    }

    pub fn remove(mut self, path: impl Into<Path>) -> Patch {
        self.ops.push(PatchOp::Remove { path: path.into() });
        self
    }

    /// Apply every op to `model` in order. On error, earlier ops stay
    /// applied (callers that need atomicity clone first; the runtime's
    /// object store does exactly that).
    pub fn apply(&self, model: &mut Model) -> Result<()> {
        for op in &self.ops {
            match op {
                PatchOp::Set { path, value } => model.set(path, value.clone())?,
                PatchOp::Remove { path } => {
                    model.remove(path)?;
                }
            }
        }
        Ok(())
    }

    /// Apply to a bare value tree (used by replay on snapshots).
    pub fn apply_to_value(&self, root: &mut Value) -> Result<()> {
        for op in &self.ops {
            match op {
                PatchOp::Set { path, value } => path.set(root, value.clone())?,
                PatchOp::Remove { path } => {
                    path.remove(root)?;
                }
            }
        }
        Ok(())
    }
}

/// Compute the patch that transforms field tree `from` into `to`.
///
/// The diff is leaf-granular: changed or added scalar leaves become `Set`
/// ops; leaves present in `from` but absent in `to` become `Remove` ops.
/// Whole subtrees that appear/disappear are handled leaf by leaf (and a
/// `Remove` for the subtree root when it disappears entirely).
pub fn diff(from: &Value, to: &Value) -> Patch {
    let mut patch = Patch::new();
    diff_rec(&Path::root(), from, to, &mut patch);
    patch
}

fn diff_rec(prefix: &Path, from: &Value, to: &Value, patch: &mut Patch) {
    match (from, to) {
        (Value::Map(fm), Value::Map(tm)) => {
            for (k, fv) in fm {
                match tm.get(k) {
                    Some(tv) => diff_rec(&prefix.child(k), fv, tv, patch),
                    None => patch.ops.push(PatchOp::Remove { path: prefix.child(k) }),
                }
            }
            for (k, tv) in tm {
                if !fm.contains_key(k) {
                    patch.ops.push(PatchOp::Set { path: prefix.child(k), value: tv.clone() });
                }
            }
        }
        (f, t) => {
            if f != t {
                patch.ops.push(PatchOp::Set { path: prefix.clone(), value: t.clone() });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vmap, Meta};

    #[test]
    fn diff_then_apply_converges() {
        let from = vmap! {
            "power" => vmap! { "intent" => "on", "status" => "off" },
            "legacy" => 1,
        };
        let to = vmap! {
            "power" => vmap! { "intent" => "on", "status" => "on" },
            "brightness" => 0.5,
        };
        let p = diff(&from, &to);
        let mut v = from.clone();
        p.apply_to_value(&mut v).unwrap();
        assert_eq!(v, to);
    }

    #[test]
    fn diff_of_identical_is_empty() {
        let v = vmap! { "a" => vmap! { "b" => 1 } };
        assert!(diff(&v, &v).is_empty());
    }

    #[test]
    fn scalar_to_map_replacement() {
        let from = vmap! { "x" => 1 };
        let to = vmap! { "x" => vmap! { "y" => 2 } };
        let p = diff(&from, &to);
        let mut v = from.clone();
        p.apply_to_value(&mut v).unwrap();
        assert_eq!(v, to);
    }

    #[test]
    fn apply_to_model_bumps_revision() {
        let mut m = Model::with_fields(Meta::new("Fan", "v1", "F1"), vmap! { "speed" => 1 });
        let r0 = m.revision();
        Patch::new().set("speed", 3).apply(&mut m).unwrap();
        assert!(m.revision() > r0);
        assert_eq!(m.get(&Path::from("speed")).unwrap(), &Value::Int(3));
    }

    #[test]
    fn remove_missing_errors() {
        let mut m = Model::new(Meta::new("Fan", "v1", "F1"));
        assert!(Patch::new().remove("nope").apply(&mut m).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let p = Patch::new().set("a.b", 1).remove("c");
        let json = serde_json::to_string(&p).unwrap();
        let back: Patch = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
