use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Model, ModelError, Path, Result, Value};

/// The declared type of one model field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FieldKind {
    /// Accepts any value (used by schema inference when observations mix
    /// types; hand-written schemas should prefer a concrete kind).
    Any,
    Bool,
    Int {
        #[serde(skip_serializing_if = "Option::is_none")]
        min: Option<i64>,
        #[serde(skip_serializing_if = "Option::is_none")]
        max: Option<i64>,
    },
    Float {
        #[serde(skip_serializing_if = "Option::is_none")]
        min: Option<f64>,
        #[serde(skip_serializing_if = "Option::is_none")]
        max: Option<f64>,
    },
    Str,
    /// A string constrained to one of the listed variants (e.g. "on"/"off").
    Enum { variants: Vec<String> },
    /// An intent/status pair whose halves both have the inner kind.
    Pair { inner: Box<FieldKind> },
    /// A list whose elements all have the inner kind.
    List { inner: Box<FieldKind> },
}

impl FieldKind {
    pub fn int() -> FieldKind {
        FieldKind::Int { min: None, max: None }
    }

    pub fn int_range(min: i64, max: i64) -> FieldKind {
        FieldKind::Int { min: Some(min), max: Some(max) }
    }

    pub fn float() -> FieldKind {
        FieldKind::Float { min: None, max: None }
    }

    pub fn float_range(min: f64, max: f64) -> FieldKind {
        FieldKind::Float { min: Some(min), max: Some(max) }
    }

    pub fn enumeration<S: Into<String>>(variants: impl IntoIterator<Item = S>) -> FieldKind {
        FieldKind::Enum { variants: variants.into_iter().map(Into::into).collect() }
    }

    pub fn pair(inner: FieldKind) -> FieldKind {
        FieldKind::Pair { inner: Box::new(inner) }
    }

    pub fn list(inner: FieldKind) -> FieldKind {
        FieldKind::List { inner: Box::new(inner) }
    }

    /// Check a value against this kind.
    fn check(&self, path: &Path, v: &Value) -> Result<()> {
        let violation = |reason: String| {
            Err(ModelError::SchemaViolation { path: path.to_string(), reason })
        };
        match self {
            FieldKind::Any => Ok(()),
            FieldKind::Bool => match v {
                Value::Bool(_) => Ok(()),
                other => violation(format!("expected bool, found {}", other.type_name())),
            },
            FieldKind::Int { min, max } => match v {
                Value::Int(i) => {
                    if min.is_some_and(|m| *i < m) || max.is_some_and(|m| *i > m) {
                        violation(format!("{i} outside [{min:?}, {max:?}]"))
                    } else {
                        Ok(())
                    }
                }
                other => violation(format!("expected int, found {}", other.type_name())),
            },
            FieldKind::Float { min, max } => match v.as_float() {
                Some(x) => {
                    if min.is_some_and(|m| x < m) || max.is_some_and(|m| x > m) {
                        violation(format!("{x} outside [{min:?}, {max:?}]"))
                    } else {
                        Ok(())
                    }
                }
                None => violation(format!("expected float, found {}", v.type_name())),
            },
            FieldKind::Str => match v {
                Value::Str(_) => Ok(()),
                other => violation(format!("expected string, found {}", other.type_name())),
            },
            FieldKind::Enum { variants } => match v {
                Value::Str(s) if variants.iter().any(|x| x == s) => Ok(()),
                Value::Str(s) => violation(format!("{s:?} not in {variants:?}")),
                other => violation(format!("expected enum string, found {}", other.type_name())),
            },
            FieldKind::Pair { inner } => {
                let m = match v.as_map() {
                    Some(m) => m,
                    None => {
                        return violation(format!(
                            "expected intent/status pair, found {}",
                            v.type_name()
                        ))
                    }
                };
                for half in ["intent", "status"] {
                    match m.get(half) {
                        Some(hv) => inner.check(&path.child(half), hv)?,
                        None => return violation(format!("pair missing `{half}`")),
                    }
                }
                for key in m.keys() {
                    if key != "intent" && key != "status" {
                        return violation(format!("unexpected pair member `{key}`"));
                    }
                }
                Ok(())
            }
            FieldKind::List { inner } => match v {
                Value::List(items) => {
                    for (i, item) in items.iter().enumerate() {
                        inner.check(&path.child(&i.to_string()), item)?;
                    }
                    Ok(())
                }
                other => violation(format!("expected list, found {}", other.type_name())),
            },
        }
    }

    /// A reasonable default value for this kind (used to materialize new
    /// instances of a mock/scene type).
    pub fn default_value(&self) -> Value {
        match self {
            FieldKind::Any => Value::Null,
            FieldKind::Bool => Value::Bool(false),
            FieldKind::Int { min, .. } => Value::Int(min.unwrap_or(0)),
            FieldKind::Float { min, .. } => Value::Float(min.unwrap_or(0.0)),
            FieldKind::Str => Value::Str(String::new()),
            FieldKind::Enum { variants } => {
                Value::Str(variants.first().cloned().unwrap_or_default())
            }
            FieldKind::Pair { inner } => {
                let v = inner.default_value();
                crate::vmap! { "intent" => v.clone(), "status" => v }
            }
            FieldKind::List { .. } => Value::List(Vec::new()),
        }
    }
}

/// Declaration of one top-level model field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    pub kind: FieldKind,
    /// Required fields must be present for the model to validate.
    #[serde(default)]
    pub required: bool,
    /// Human-oriented description (shown by `dbox check --schema`).
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub doc: String,
}

/// The schema of a mock/scene type: its name, version, and field specs
/// (paper §3.2 — "developers first define the schema of its model").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    pub kind: String,
    pub version: String,
    pub fields: BTreeMap<String, FieldSpec>,
    /// Whether unknown top-level fields are allowed (lenient by default:
    /// real devices often carry vendor extras; strict schemas are used in
    /// tests).
    #[serde(default)]
    pub strict: bool,
}

impl Schema {
    pub fn new(kind: &str, version: &str) -> Schema {
        Schema {
            kind: kind.to_string(),
            version: version.to_string(),
            fields: BTreeMap::new(),
            strict: false,
        }
    }

    /// Add a required field (builder style).
    pub fn field(mut self, name: &str, kind: FieldKind) -> Schema {
        self.fields.insert(
            name.to_string(),
            FieldSpec { kind, required: true, doc: String::new() },
        );
        self
    }

    /// Add an optional field (builder style).
    pub fn optional(mut self, name: &str, kind: FieldKind) -> Schema {
        self.fields.insert(
            name.to_string(),
            FieldSpec { kind, required: false, doc: String::new() },
        );
        self
    }

    /// Attach a doc string to the most natural target: the named field.
    pub fn doc(mut self, name: &str, doc: &str) -> Schema {
        if let Some(f) = self.fields.get_mut(name) {
            f.doc = doc.to_string();
        }
        self
    }

    pub fn strict(mut self) -> Schema {
        self.strict = true;
        self
    }

    /// Validate `model` against this schema: kind/version match, required
    /// fields present, every declared field well-typed, and (in strict
    /// mode) no undeclared fields.
    pub fn validate(&self, model: &Model) -> Result<()> {
        if model.meta.kind != self.kind {
            return Err(ModelError::SchemaViolation {
                path: "meta.type".into(),
                reason: format!("model is {}, schema is {}", model.meta.kind, self.kind),
            });
        }
        let root = model.fields().as_map().expect("model fields are a map");
        for (name, spec) in &self.fields {
            match root.get(name) {
                Some(v) => spec.kind.check(&Path::from_segments([name.clone()]), v)?,
                None if spec.required => {
                    return Err(ModelError::SchemaViolation {
                        path: name.clone(),
                        reason: "required field missing".into(),
                    })
                }
                None => {}
            }
        }
        if self.strict {
            for key in root.keys() {
                if !self.fields.contains_key(key) {
                    return Err(ModelError::SchemaViolation {
                        path: key.clone(),
                        reason: "undeclared field in strict schema".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Materialize a fresh model instance with every declared field set to
    /// its default value.
    pub fn instantiate(&self, name: &str) -> Model {
        let mut fields = Value::map();
        for (fname, spec) in &self.fields {
            Path::from_segments([fname.clone()])
                .set(&mut fields, spec.kind.default_value())
                .expect("fresh tree accepts all top-level sets");
        }
        Model::with_fields(crate::Meta::new(&self.kind, &self.version, name), fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vmap, Meta};

    fn lamp_schema() -> Schema {
        Schema::new("Lamp", "v1")
            .field("power", FieldKind::pair(FieldKind::enumeration(["off", "on"])))
            .field("intensity", FieldKind::pair(FieldKind::float_range(0.0, 1.0)))
            .optional("label", FieldKind::Str)
            .doc("power", "lamp power switch")
            .strict()
    }

    #[test]
    fn validates_good_model() {
        let schema = lamp_schema();
        let m = schema.instantiate("L1");
        schema.validate(&m).unwrap();
    }

    #[test]
    fn instantiate_defaults() {
        let m = lamp_schema().instantiate("L1");
        assert_eq!(m.status(&Path::from("power")).unwrap().as_str(), Some("off"));
        assert_eq!(m.status(&Path::from("intensity")).unwrap().as_float(), Some(0.0));
    }

    #[test]
    fn rejects_out_of_range() {
        let schema = lamp_schema();
        let mut m = schema.instantiate("L1");
        m.set_status(&Path::from("intensity"), 1.5).unwrap();
        assert!(schema.validate(&m).is_err());
    }

    #[test]
    fn rejects_bad_enum() {
        let schema = lamp_schema();
        let mut m = schema.instantiate("L1");
        m.set_intent(&Path::from("power"), "dim").unwrap();
        assert!(schema.validate(&m).is_err());
    }

    #[test]
    fn rejects_missing_required() {
        let schema = lamp_schema();
        let m = Model::new(Meta::new("Lamp", "v1", "L1"));
        assert!(schema.validate(&m).is_err());
    }

    #[test]
    fn strict_rejects_undeclared() {
        let schema = lamp_schema();
        let mut m = schema.instantiate("L1");
        m.update(vmap! { "vendor_extra" => 1 }).unwrap();
        assert!(schema.validate(&m).is_err());
    }

    #[test]
    fn lenient_allows_undeclared() {
        let mut schema = lamp_schema();
        schema.strict = false;
        let mut m = schema.instantiate("L1");
        m.update(vmap! { "vendor_extra" => 1 }).unwrap();
        schema.validate(&m).unwrap();
    }

    #[test]
    fn kind_mismatch_rejected() {
        let schema = lamp_schema();
        let m = Model::new(Meta::new("Fan", "v1", "F1"));
        assert!(schema.validate(&m).is_err());
    }

    #[test]
    fn pair_extra_member_rejected() {
        let kind = FieldKind::pair(FieldKind::Bool);
        let v = vmap! { "intent" => true, "status" => false, "bogus" => 1 };
        assert!(kind.check(&Path::from("p"), &v).is_err());
    }

    #[test]
    fn list_kind_checks_elements() {
        let kind = FieldKind::list(FieldKind::int_range(0, 10));
        assert!(kind.check(&Path::from("xs"), &Value::from(vec![1i64, 2])).is_ok());
        assert!(kind.check(&Path::from("xs"), &Value::from(vec![1i64, 99])).is_err());
    }

    #[test]
    fn schema_serde_roundtrip() {
        let schema = lamp_schema();
        let json = serde_json::to_string(&schema).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(schema, back);
    }
}
