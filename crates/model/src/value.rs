use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically typed value in a model tree.
///
/// `Value` is the universal currency of Digibox: model fields, MQTT message
/// payloads, trace records and IaC manifests all carry `Value` trees. Maps
/// use [`BTreeMap`] so serialization is deterministic — a property the
/// reproducibility machinery (content hashes, trace diffs) relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Value>),
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// An empty map value.
    pub fn map() -> Value {
        Value::Map(BTreeMap::new())
    }

    /// The name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_map_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// True when the value is a scalar (not list/map).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Value::List(_) | Value::Map(_))
    }

    /// Get a direct child of a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Deep equality that treats `Int(x)` and `Float(x as f64)` as equal,
    /// which matters when values round-trip through formats that do not
    /// preserve the int/float distinction.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                *a as f64 == *b
            }
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.loose_eq(y))
            }
            (Value::Map(a), Value::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loose_eq(vb))
            }
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

/// Build a `Value::Map` from `key => value` pairs.
///
/// ```
/// use digibox_model::{vmap, Value};
/// let v = vmap! { "power" => "on", "level" => 3 };
/// assert_eq!(v.get("level"), Some(&Value::Int(3)));
/// ```
#[macro_export]
macro_rules! vmap {
    () => { $crate::Value::map() };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut m = ::std::collections::BTreeMap::new();
        $( m.insert(::std::string::String::from($k), $crate::Value::from($v)); )+
        $crate::Value::Map(m)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(42i64).as_int(), Some(42));
        assert_eq!(Value::from(1.5).as_float(), Some(1.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(7i64).as_float(), Some(7.0));
    }

    #[test]
    fn vmap_builds_sorted_map() {
        let v = vmap! { "b" => 2, "a" => 1 };
        let keys: Vec<_> = v.as_map().unwrap().keys().cloned().collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn loose_eq_int_float() {
        assert!(Value::Int(3).loose_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).loose_eq(&Value::Float(3.5)));
        let a = vmap! { "x" => 1 };
        let b = vmap! { "x" => 1.0 };
        assert!(a.loose_eq(&b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(vmap! {"a" => 1, "b" => "x"}.to_string(), "{a: 1, b: x}");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::map().type_name(), "map");
        assert!(Value::Null.is_scalar());
        assert!(!Value::map().is_scalar());
    }
}

impl Value {
    /// Convert from a `serde_json::Value` (numbers become `Int` when they
    /// are exactly representable as `i64`, otherwise `Float`).
    pub fn from_json(j: &serde_json::Value) -> Value {
        match j {
            serde_json::Value::Null => Value::Null,
            serde_json::Value::Bool(b) => Value::Bool(*b),
            serde_json::Value::Number(n) => {
                if let Some(i) = n.as_i64() {
                    Value::Int(i)
                } else {
                    Value::Float(n.as_f64().unwrap_or(f64::NAN))
                }
            }
            serde_json::Value::String(s) => Value::Str(s.clone()),
            serde_json::Value::Array(a) => Value::List(a.iter().map(Value::from_json).collect()),
            serde_json::Value::Object(o) => {
                Value::Map(o.iter().map(|(k, v)| (k.clone(), Value::from_json(v))).collect())
            }
        }
    }

    /// Convert into a `serde_json::Value`.
    pub fn to_json(&self) -> serde_json::Value {
        match self {
            Value::Null => serde_json::Value::Null,
            Value::Bool(b) => serde_json::Value::Bool(*b),
            Value::Int(i) => serde_json::Value::Number((*i).into()),
            Value::Float(x) => serde_json::Number::from_f64(*x)
                .map(serde_json::Value::Number)
                .unwrap_or(serde_json::Value::Null),
            Value::Str(s) => serde_json::Value::String(s.clone()),
            Value::List(l) => serde_json::Value::Array(l.iter().map(Value::to_json).collect()),
            Value::Map(m) => serde_json::Value::Object(
                m.iter().map(|(k, v)| (k.clone(), v.to_json())).collect(),
            ),
        }
    }
}

#[cfg(test)]
mod json_interop_tests {
    use super::*;
    use crate::vmap as _;

    #[test]
    fn json_roundtrip() {
        let v = vmap! {
            "a" => 1, "b" => 1.5, "c" => true, "d" => "s",
            "e" => vec![1i64, 2], "f" => Value::Null,
        };
        let j = v.to_json();
        assert_eq!(Value::from_json(&j), v);
    }

    #[test]
    fn json_string_parse() {
        let j: serde_json::Value = serde_json::from_str(r#"{"x": [1, 2.5, "y"]}"#).unwrap();
        let v = Value::from_json(&j);
        let xs = v.get("x").unwrap().as_list().unwrap();
        assert_eq!(xs[0], Value::Int(1));
        assert_eq!(xs[1], Value::Float(2.5));
        assert_eq!(xs[2], Value::Str("y".into()));
    }

    #[test]
    fn nan_float_becomes_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), serde_json::Value::Null);
    }
}
