//! Struct-of-arrays column storage for digi model fields.
//!
//! A [`ColumnStore`] holds the scalar leaves of many digi models in dense
//! typed columns: one `Vec` per attribute literal, indexed by a [`RowId`]
//! per digi. Columns are keyed by [`ColumnId`] — the dense thread-local id
//! that [`crate::Path::column_id`] assigns to each interned attribute
//! literal — so a model read or write is two array indexes instead of a
//! pointer chase through a nested `BTreeMap` tree.
//!
//! Determinism note: column ids are assigned in first-intern order and are
//! therefore *thread-local* bookkeeping, never observable state. Everything
//! this module exposes to digests — [`ColumnStore::snapshot_row`] output —
//! is keyed by the attribute *literal* and lands in `Value::Map`
//! (`BTreeMap`) trees whose ordering is literal-sorted by construction, so
//! two threads that interned attributes in different orders still snapshot
//! byte-identical trees.

use std::collections::HashMap; // keyed lookup only; `dbox audit` (DH0002) checks every iteration site

use crate::{ModelError, Path, Result, Value};

/// Dense handle for one attribute column. Wraps the thread-local interned
/// id from [`Path::column_id`]; obtain one with [`ColumnId::of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(u32);

impl ColumnId {
    /// Intern `literal` (a dotted leaf path such as `power.status`) and
    /// return its column handle. Repeated calls with one literal return the
    /// same id for the life of the thread.
    pub fn of(literal: &str) -> Result<ColumnId> {
        Ok(ColumnId(Path::column_id(literal)?))
    }

    /// The attribute literal this column was interned for.
    pub fn literal(self) -> String {
        Path::column_literal(self.0).expect("ColumnId constructed without interning")
    }

    /// The raw dense id (an index into per-thread column tables).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Dense handle for one digi's row across every column of a store.
///
/// Row ids are plain indexes: they are only meaningful against the store
/// that allocated them and may be recycled after [`ColumnStore::free_row`].
/// Generation-checked identity lives one layer up (the digi arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl RowId {
    /// The raw row index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One typed column. Starts as the type of its first write and promotes
/// itself to `Mixed` if a later write disagrees (heterogeneous fleets).
enum ColumnData {
    Bool(Vec<Option<bool>>),
    Int(Vec<Option<i64>>),
    Float(Vec<Option<f64>>),
    Str(Vec<Option<String>>),
    Mixed(Vec<Option<Value>>),
}

impl ColumnData {
    fn new_for(v: &Value, rows: usize) -> ColumnData {
        match v {
            Value::Bool(_) => ColumnData::Bool(vec![None; rows]),
            Value::Int(_) => ColumnData::Int(vec![None; rows]),
            Value::Float(_) => ColumnData::Float(vec![None; rows]),
            Value::Str(_) => ColumnData::Str(vec![None; rows]),
            _ => ColumnData::Mixed(vec![None; rows]),
        }
    }

    fn grow(&mut self, rows: usize) {
        match self {
            ColumnData::Bool(v) => v.resize(rows, None),
            ColumnData::Int(v) => v.resize(rows, None),
            ColumnData::Float(v) => v.resize(rows, None),
            ColumnData::Str(v) => v.resize_with(rows, || None),
            ColumnData::Mixed(v) => v.resize_with(rows, || None),
        }
    }

    fn clear_at(&mut self, i: usize) {
        match self {
            ColumnData::Bool(v) => v[i] = None,
            ColumnData::Int(v) => v[i] = None,
            ColumnData::Float(v) => v[i] = None,
            ColumnData::Str(v) => v[i] = None,
            ColumnData::Mixed(v) => v[i] = None,
        }
    }

    fn get_at(&self, i: usize) -> Option<Value> {
        match self {
            ColumnData::Bool(v) => v[i].map(Value::Bool),
            ColumnData::Int(v) => v[i].map(Value::Int),
            ColumnData::Float(v) => v[i].map(Value::Float),
            ColumnData::Str(v) => v[i].clone().map(Value::Str),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Store `value` at row `i` if the column's type admits it; `false`
    /// means the caller must promote to `Mixed` first.
    fn try_set_at(&mut self, i: usize, value: &Value) -> bool {
        match (self, value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v[i] = Some(*b),
            (ColumnData::Int(v), Value::Int(n)) => v[i] = Some(*n),
            (ColumnData::Float(v), Value::Float(f)) => v[i] = Some(*f),
            (ColumnData::Str(v), Value::Str(s)) => v[i] = Some(s.clone()),
            (ColumnData::Mixed(v), any) => v[i] = Some(any.clone()),
            _ => return false,
        }
        true
    }

    fn to_mixed(&self) -> ColumnData {
        let rows = match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        };
        let mut out = Vec::with_capacity(rows);
        for i in 0..rows {
            out.push(self.get_at(i));
        }
        ColumnData::Mixed(out)
    }
}

struct Column {
    id: ColumnId,
    data: ColumnData,
}

/// Struct-of-arrays store: the scalar leaves of many digi models held in
/// dense per-attribute columns.
///
/// Rows are allocated/freed with a LIFO free list so a killed digi's slot
/// is reused by the next spawn (the arena layer adds generation tags on
/// top). A leaf value of `Value::Null` is not stored — absent and null are
/// the same cell state, matching how model trees omit unset fields.
#[derive(Default)]
pub struct ColumnStore {
    columns: Vec<Column>,
    /// ColumnId.raw() → index into `columns`.
    index: HashMap<u32, usize>,
    /// Allocated row capacity; every column vec is kept at this length.
    rows: usize,
    free: Vec<u32>,
    live: Vec<bool>,
}

impl ColumnStore {
    /// An empty store.
    pub fn new() -> ColumnStore {
        ColumnStore::default()
    }

    /// Allocate a row, reusing the most recently freed slot if any.
    pub fn alloc_row(&mut self) -> RowId {
        if let Some(i) = self.free.pop() {
            self.live[i as usize] = true;
            return RowId(i);
        }
        let i = self.rows;
        self.rows += 1;
        self.live.push(true);
        for c in &mut self.columns {
            c.data.grow(self.rows);
        }
        RowId(i as u32)
    }

    /// Clear a row across every column and return its slot to the free
    /// list. Freeing a dead row is a no-op.
    pub fn free_row(&mut self, row: RowId) {
        let i = row.index();
        if i >= self.rows || !self.live[i] {
            return;
        }
        self.clear_row(row);
        self.live[i] = false;
        self.free.push(row.0);
    }

    /// Whether `row` is currently allocated.
    pub fn is_live(&self, row: RowId) -> bool {
        self.live.get(row.index()).copied().unwrap_or(false)
    }

    /// Number of live rows.
    pub fn rows_live(&self) -> usize {
        self.rows - self.free.len()
    }

    /// Total row capacity (live + free slots).
    pub fn capacity(&self) -> usize {
        self.rows
    }

    /// Number of distinct attribute columns materialized so far.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Write one cell. `Value::Null` clears the cell. Creates the column on
    /// first touch, typed after this value; a later type mismatch promotes
    /// the column to `Mixed` in place.
    pub fn set(&mut self, row: RowId, col: ColumnId, value: &Value) -> Result<()> {
        let i = row.index();
        if i >= self.rows || !self.live[i] {
            return Err(ModelError::MissingField(format!("dead row {}", row.0)));
        }
        if matches!(value, Value::Null) {
            if let Some(&ci) = self.index.get(&col.raw()) {
                self.columns[ci].data.clear_at(i);
            }
            return Ok(());
        }
        let ci = match self.index.get(&col.raw()) {
            Some(&ci) => ci,
            None => {
                let ci = self.columns.len();
                self.columns.push(Column { id: col, data: ColumnData::new_for(value, self.rows) });
                self.index.insert(col.raw(), ci);
                ci
            }
        };
        let data = &mut self.columns[ci].data;
        if !data.try_set_at(i, value) {
            *data = data.to_mixed();
            let ok = data.try_set_at(i, value);
            debug_assert!(ok, "Mixed column admits every value");
        }
        Ok(())
    }

    /// Read one cell, reconstructing the `Value`. `None` when the cell is
    /// clear, the column doesn't exist, or the row is dead.
    pub fn get(&self, row: RowId, col: ColumnId) -> Option<Value> {
        let i = row.index();
        if i >= self.rows || !self.live[i] {
            return None;
        }
        let &ci = self.index.get(&col.raw())?;
        self.columns[ci].data.get_at(i)
    }

    /// Fast typed read: the cell as `i64` without allocating, or `None` if
    /// clear or not an integer.
    pub fn get_int(&self, row: RowId, col: ColumnId) -> Option<i64> {
        let i = row.index();
        if i >= self.rows || !self.live[i] {
            return None;
        }
        let &ci = self.index.get(&col.raw())?;
        match &self.columns[ci].data {
            ColumnData::Int(v) => v[i],
            ColumnData::Mixed(v) => match v[i] {
                Some(Value::Int(n)) => Some(n),
                _ => None,
            },
            _ => None,
        }
    }

    /// Fast typed read: the cell as `f64` (`Int` widens), or `None`.
    pub fn get_f64(&self, row: RowId, col: ColumnId) -> Option<f64> {
        let i = row.index();
        if i >= self.rows || !self.live[i] {
            return None;
        }
        let &ci = self.index.get(&col.raw())?;
        match &self.columns[ci].data {
            ColumnData::Float(v) => v[i],
            ColumnData::Int(v) => v[i].map(|n| n as f64),
            ColumnData::Mixed(v) => match v[i] {
                Some(Value::Float(f)) => Some(f),
                Some(Value::Int(n)) => Some(n as f64),
                _ => None,
            },
            _ => None,
        }
    }

    /// Clear every cell of a row without freeing the slot.
    pub fn clear_row(&mut self, row: RowId) {
        let i = row.index();
        if i >= self.rows {
            return;
        }
        for c in &mut self.columns {
            c.data.clear_at(i);
        }
    }

    /// Load a model field tree into a row: clears the row, then stores each
    /// leaf (any non-map value, so lists land whole in `Mixed` columns)
    /// under its dotted literal.
    pub fn load_row(&mut self, row: RowId, fields: &Value) -> Result<()> {
        let i = row.index();
        if i >= self.rows || !self.live[i] {
            return Err(ModelError::MissingField(format!("dead row {}", row.0)));
        }
        self.clear_row(row);
        let mut stack: Vec<(String, &Value)> = vec![(String::new(), fields)];
        while let Some((prefix, v)) = stack.pop() {
            match v {
                Value::Map(m) => {
                    for (k, child) in m {
                        let lit = if prefix.is_empty() {
                            k.clone()
                        } else {
                            format!("{prefix}.{k}")
                        };
                        stack.push((lit, child));
                    }
                }
                Value::Null => {}
                leaf => {
                    let col = ColumnId::of(&prefix)?;
                    self.set(row, col, leaf)?;
                }
            }
        }
        Ok(())
    }

    /// Rebuild a row's nested field tree from its columns. The output is a
    /// `Value::Map` tree whose key order is literal-sorted by `BTreeMap`
    /// construction, independent of column creation order — safe to digest.
    pub fn snapshot_row(&self, row: RowId) -> Result<Value> {
        let i = row.index();
        if i >= self.rows || !self.live[i] {
            return Err(ModelError::MissingField(format!("dead row {}", row.0)));
        }
        let mut root = Value::map();
        // Sort by literal so a parent/child literal conflict (e.g. both
        // `a` and `a.b` set via raw `set`) errors deterministically.
        let mut cells: Vec<(String, Value)> = Vec::new();
        for c in &self.columns {
            if let Some(v) = c.data.get_at(i) {
                cells.push((c.id.literal(), v));
            }
        }
        cells.sort_by(|(a, _), (b, _)| a.cmp(b));
        for (lit, v) in cells {
            Path::interned(&lit)?.set(&mut root, v)?;
        }
        Ok(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn alloc_free_reuses_lifo() {
        let mut s = ColumnStore::new();
        let a = s.alloc_row();
        let b = s.alloc_row();
        assert_eq!((a.0, b.0), (0, 1));
        s.free_row(a);
        s.free_row(b);
        // LIFO: most recently freed comes back first.
        assert_eq!(s.alloc_row(), b);
        assert_eq!(s.alloc_row(), a);
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.rows_live(), 2);
    }

    #[test]
    fn set_get_typed_roundtrip() {
        let mut s = ColumnStore::new();
        let r = s.alloc_row();
        let temp = ColumnId::of("cols.temp").unwrap();
        let on = ColumnId::of("cols.power.status").unwrap();
        s.set(r, temp, &Value::Float(21.5)).unwrap();
        s.set(r, on, &Value::Str("on".into())).unwrap();
        assert_eq!(s.get(r, temp), Some(Value::Float(21.5)));
        assert_eq!(s.get_f64(r, temp), Some(21.5));
        assert_eq!(s.get(r, on).unwrap().as_str(), Some("on"));
        assert_eq!(s.column_count(), 2);
    }

    #[test]
    fn type_conflict_promotes_to_mixed() {
        let mut s = ColumnStore::new();
        let a = s.alloc_row();
        let b = s.alloc_row();
        let col = ColumnId::of("cols.mode").unwrap();
        s.set(a, col, &Value::Int(3)).unwrap();
        s.set(b, col, &Value::Str("auto".into())).unwrap();
        // Both survive the promotion.
        assert_eq!(s.get(a, col), Some(Value::Int(3)));
        assert_eq!(s.get_int(a, col), Some(3));
        assert_eq!(s.get(b, col).unwrap().as_str(), Some("auto"));
    }

    #[test]
    fn null_clears_and_free_scrubs() {
        let mut s = ColumnStore::new();
        let r = s.alloc_row();
        let col = ColumnId::of("cols.batt").unwrap();
        s.set(r, col, &Value::Int(99)).unwrap();
        s.set(r, col, &Value::Null).unwrap();
        assert_eq!(s.get(r, col), None);
        s.set(r, col, &Value::Int(7)).unwrap();
        s.free_row(r);
        assert!(!s.is_live(r));
        assert!(s.get(r, col).is_none());
        assert!(s.set(r, col, &Value::Int(1)).is_err());
        // The recycled slot starts clean.
        let r2 = s.alloc_row();
        assert_eq!(r2, r);
        assert_eq!(s.get(r2, col), None);
    }

    #[test]
    fn load_snapshot_roundtrips_nested_trees() {
        let mut s = ColumnStore::new();
        let r = s.alloc_row();
        let tree = vmap! {
            "power" => vmap! { "status" => "on", "draw_w" => 12 },
            "temp" => 21.5,
            "tags" => Value::List(vec![Value::Int(1), Value::Int(2)]),
            "ok" => true
        };
        s.load_row(r, &tree).unwrap();
        assert_eq!(s.snapshot_row(r).unwrap(), tree);
        // Reload replaces, not merges.
        let tree2 = vmap! { "temp" => 18 };
        s.load_row(r, &tree2).unwrap();
        assert_eq!(s.snapshot_row(r).unwrap(), tree2);
    }

    #[test]
    fn rows_are_independent() {
        let mut s = ColumnStore::new();
        let a = s.alloc_row();
        let b = s.alloc_row();
        let col = ColumnId::of("cols.n").unwrap();
        s.set(a, col, &Value::Int(1)).unwrap();
        s.set(b, col, &Value::Int(2)).unwrap();
        assert_eq!(s.get_int(a, col), Some(1));
        assert_eq!(s.get_int(b, col), Some(2));
        s.free_row(a);
        assert_eq!(s.get_int(b, col), Some(2));
    }

    #[test]
    fn column_grows_with_later_rows() {
        let mut s = ColumnStore::new();
        let a = s.alloc_row();
        let col = ColumnId::of("cols.grow").unwrap();
        s.set(a, col, &Value::Bool(true)).unwrap();
        let b = s.alloc_row();
        assert_eq!(s.get(b, col), None);
        s.set(b, col, &Value::Bool(false)).unwrap();
        assert_eq!(s.get(b, col), Some(Value::Bool(false)));
    }
}
