//! # digibox-model
//!
//! The model layer of Digibox. A *model* is the declarative document that
//! describes a mockup device (mock) or a scene controller (scene): a tree of
//! key-value pairs holding the current `status` of the digi, the desired
//! `intent`, and a `meta` block with identity and simulation parameters
//! (paper, Fig. 3).
//!
//! This crate provides:
//!
//! * [`Value`] — the dynamically-typed value tree (null/bool/int/float/
//!   string/list/map) used everywhere in Digibox.
//! * [`Path`] — dotted field paths such as `power.status`.
//! * [`Model`] — the model document: a [`Meta`] block plus a field tree, with
//!   intent/status pair conventions and resource versioning.
//! * [`Patch`]/[`diff`] — structural diffs between models, applied as patches
//!   (the unit that the scene controllers, the logger and the replay engine
//!   all operate on).
//! * [`Schema`] — typed field declarations with validation, so mock and scene
//!   authors can declare which fields a model carries (paper §3.2).
//! * [`dml`] — the *Digibox Model Language*: the YAML-like subset used for
//!   shareable model/config files, with a hand-written parser and printer.
//! * [`columns`] — struct-of-arrays column storage ([`ColumnStore`]) that
//!   holds the scalar leaves of many digi models in dense typed columns,
//!   keyed by interned attribute ids ([`ColumnId`]) for million-digi pools.

pub mod columns;
pub mod dml;
mod error;
mod infer;
mod meta;
mod model;
mod patch;
mod path;
mod schema;
mod value;

pub use columns::{ColumnId, ColumnStore, RowId};
pub use error::ModelError;
pub use infer::infer_schema;
pub use meta::Meta;
pub use model::{Model, PairField};
pub use patch::{diff, Patch, PatchOp};
pub use path::Path;
pub use schema::{FieldKind, FieldSpec, Schema};
pub use value::Value;

/// Convenience result alias for model-layer operations.
pub type Result<T> = std::result::Result<T, ModelError>;
