//! Property-based tests: trace archives are lossless and corruption is
//! always detected; replay schedules are consistent with their traces.

use proptest::prelude::*;

use digibox_model::{Patch, Value};
use digibox_net::{SimDuration, SimTime};
use digibox_trace::{archive, Direction, RecordKind, ReplaySchedule, TraceRecord};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        "[a-z0-9 ]{0,16}".prop_map(Value::Str),
    ]
}

fn fields() -> impl Strategy<Value = Value> {
    prop::collection::btree_map("[a-z_]{1,8}", value(), 0..5).prop_map(Value::Map)
}

fn record_kind() -> impl Strategy<Value = RecordKind> {
    prop_oneof![
        fields().prop_map(|data| RecordKind::Event { data }),
        fields().prop_map(|f| RecordKind::ModelChange { patch: Patch::new(), fields: f }),
        ("[a-z/]{1,20}", fields(), any::<bool>()).prop_map(|(topic, payload, sent)| {
            RecordKind::Message {
                direction: if sent { Direction::Sent } else { Direction::Received },
                topic,
                payload,
            }
        }),
        ("[a-z]{1,10}", "[a-z ]{0,20}").prop_map(|(action, detail)| RecordKind::Lifecycle {
            action,
            detail
        }),
        ("[a-z-]{1,12}", "[a-z ]{0,20}").prop_map(|(property, detail)| RecordKind::Violation {
            property,
            detail
        }),
    ]
}

fn record() -> impl Strategy<Value = TraceRecord> {
    (any::<u64>(), 0u64..1_000_000, "[a-zA-Z0-9_-]{1,12}", record_kind()).prop_map(
        |(seq, ms, source, kind)| TraceRecord {
            seq,
            ts: SimTime::ZERO + SimDuration::from_millis(ms),
            source,
            kind,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn archive_roundtrip(records in prop::collection::vec(record(), 0..40)) {
        let bytes = archive::write(&records);
        let back = archive::read(&bytes).unwrap();
        prop_assert_eq!(records, back);
    }

    #[test]
    fn archive_detects_single_byte_corruption(
        records in prop::collection::vec(record(), 1..20),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = archive::write(&records);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        // any single-byte flip must be rejected (bad magic, bad CRC, or a
        // framing error) — never silently accepted with different content
        match archive::read(&bytes) {
            Err(_) => {}
            Ok(back) => prop_assert_eq!(back, records, "corruption silently altered the trace"),
        }
    }

    #[test]
    fn archive_detects_truncation(
        records in prop::collection::vec(record(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = archive::write(&records);
        let keep = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(archive::read(&bytes[..keep]).is_err());
    }

    #[test]
    fn replay_schedule_is_time_ordered_and_complete(
        records in prop::collection::vec(record(), 0..40)
    ) {
        let schedule = ReplaySchedule::from_records(&records);
        // ordered
        let steps = schedule.steps();
        for w in steps.windows(2) {
            prop_assert!(w[0].ts <= w[1].ts);
        }
        // complete: one step per model-change record
        let changes = records
            .iter()
            .filter(|r| matches!(r.kind, RecordKind::ModelChange { .. }))
            .count();
        prop_assert_eq!(steps.len(), changes);
        // final_states has one entry per distinct source
        let sources = schedule.sources();
        prop_assert_eq!(schedule.final_states().len(), sources.len());
    }
}
