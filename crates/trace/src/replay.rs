//! Turning traces into replayable schedules, and validating replays.
//!
//! Two distinct notions of "replay" meet here (DESIGN.md §16):
//!
//! * **State playback** — a [`ReplaySchedule`] extracted from a trace's
//!   model-change snapshots drives a testbed's digis by forcing their
//!   fields at the recorded virtual times. Time-travel is schedule
//!   surgery: [`ReplaySchedule::until`] truncates, [`ReplaySchedule::at_speed`]
//!   rescales, [`ReplaySchedule::states_at`] reconstructs the state a
//!   checkpoint would hold so playback can resume mid-trace.
//! * **Verified re-execution** — the deterministic kernel re-runs the
//!   recorded workload from its seed, and [`diff_report`] proves the
//!   regenerated trace matches the recorded one record-for-record.
//!
//! [`diff_report`] is also the divergence *bisector*: given two traces it
//! pinpoints the first record where they disagree and explains what
//! diverged — the source, the record kind, or a single model/payload
//! field ([`first_field_divergence`]).

use std::collections::BTreeMap;
use std::fmt;

use digibox_model::Value;
use digibox_net::SimTime;

use crate::record::{RecordKind, TraceRecord};

/// One step of a replay: at virtual time `ts`, force digi `source`'s model
/// fields to `fields`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStep {
    /// Virtual time at which to apply the step.
    pub ts: SimTime,
    /// Name of the digi whose model is forced.
    pub source: String,
    /// Full model snapshot to force (not a patch — seeks cannot drift).
    pub fields: Value,
}

/// An ordered schedule of model states extracted from a trace
/// (`dbox replay <trace>` drives the testbed with one of these).
///
/// Replay uses the *snapshots* recorded with each model change rather than
/// re-applying patches, so a replay can start at any point and cannot
/// drift.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplaySchedule {
    steps: Vec<ReplayStep>,
}

impl ReplaySchedule {
    /// Extract the schedule from a trace (model-change records only).
    pub fn from_records(records: &[TraceRecord]) -> ReplaySchedule {
        let mut steps: Vec<ReplayStep> = records
            .iter()
            .filter_map(|r| match &r.kind {
                RecordKind::ModelChange { fields, .. } => Some(ReplayStep {
                    ts: r.ts,
                    source: r.source.clone(),
                    fields: fields.clone(),
                }),
                _ => None,
            })
            .collect();
        steps.sort_by(|a, b| a.ts.cmp(&b.ts));
        ReplaySchedule { steps }
    }

    /// The steps, in virtual-time order (stable on ties: trace order).
    pub fn steps(&self) -> &[ReplayStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The set of digi names the schedule drives.
    pub fn sources(&self) -> Vec<String> {
        let mut names: Vec<String> = self.steps.iter().map(|s| s.source.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Final model state per digi (what the testbed should look like when
    /// the replay finishes).
    pub fn final_states(&self) -> BTreeMap<String, Value> {
        let mut out = BTreeMap::new();
        for step in &self.steps {
            out.insert(step.source.clone(), step.fields.clone());
        }
        out
    }

    /// Total virtual duration of the schedule.
    pub fn duration(&self) -> SimTime {
        self.steps.last().map(|s| s.ts).unwrap_or(SimTime::ZERO)
    }

    /// Time-travel truncation: keep only the steps at or before `cut`.
    ///
    /// The bound is **inclusive** — a record emitted at exactly the final
    /// virtual instant belongs to the window that ends there. (The kernel's
    /// `run_until` has the same inclusive contract; an exclusive bound here
    /// is the off-by-one that silently drops final-instant records from an
    /// `export-trace` → `replay` round trip.)
    pub fn until(&self, cut: SimTime) -> ReplaySchedule {
        ReplaySchedule { steps: self.steps.iter().filter(|s| s.ts <= cut).cloned().collect() }
    }

    /// The complement of [`ReplaySchedule::until`]: only the steps strictly
    /// after `cut` — what remains to play after resuming from a checkpoint
    /// taken at `cut`.
    pub fn after(&self, cut: SimTime) -> ReplaySchedule {
        ReplaySchedule { steps: self.steps.iter().filter(|s| s.ts > cut).cloned().collect() }
    }

    /// Rescale every timestamp by `1000 / speed_milli` (so `speed_milli =
    /// 2000` plays the trace back at 2× — timestamps halve).
    ///
    /// Speed is taken in integer milli-units and applied with u128
    /// arithmetic so a rescaled schedule is bit-exactly reproducible —
    /// floating-point accumulation would make `--speed` runs
    /// schedule-order-dependent. Returns `None` when `speed_milli` is 0.
    pub fn at_speed(&self, speed_milli: u64) -> Option<ReplaySchedule> {
        if speed_milli == 0 {
            return None;
        }
        let steps = self
            .steps
            .iter()
            .map(|s| {
                let scaled = (s.ts.as_nanos() as u128) * 1000 / speed_milli as u128;
                ReplayStep {
                    ts: SimTime::from_nanos(scaled.min(u64::MAX as u128) as u64),
                    source: s.source.clone(),
                    fields: s.fields.clone(),
                }
            })
            .collect();
        Some(ReplaySchedule { steps })
    }

    /// The last recorded model state of each source at or before `cut` —
    /// exactly what a periodic `CheckpointStore` snapshot taken at `cut`
    /// would hold. Pair with [`ReplaySchedule::after`] to resume a replay
    /// from a checkpoint instead of t=0.
    pub fn states_at(&self, cut: SimTime) -> BTreeMap<String, Value> {
        let mut out = BTreeMap::new();
        for step in &self.steps {
            if step.ts <= cut {
                out.insert(step.source.clone(), step.fields.clone());
            }
        }
        out
    }
}

/// A point where two traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceDivergence {
    /// Same position, different content.
    Mismatch {
        /// Index of the first differing record (in both traces).
        index: usize,
        /// The record on the left side.
        left: Box<TraceRecord>,
        /// The record on the right side.
        right: Box<TraceRecord>,
    },
    /// One trace is a strict prefix of the other.
    LengthMismatch {
        /// Record count of the left trace.
        left: usize,
        /// Record count of the right trace.
        right: usize,
    },
}

/// Compare two traces on their *semantic* content: (source, kind) pairs in
/// order, ignoring seq numbers and exact timestamps (two runs of the same
/// seeded workload have identical timestamps, but a replay legitimately
/// shifts them).
pub fn diff_traces(left: &[TraceRecord], right: &[TraceRecord]) -> Option<TraceDivergence> {
    for (i, (l, r)) in left.iter().zip(right.iter()).enumerate() {
        if l.source != r.source || l.kind != r.kind {
            return Some(TraceDivergence::Mismatch {
                index: i,
                left: Box::new(l.clone()),
                right: Box::new(r.clone()),
            });
        }
    }
    if left.len() != right.len() {
        return Some(TraceDivergence::LengthMismatch { left: left.len(), right: right.len() });
    }
    None
}

/// The human-readable outcome of bisecting two traces to their first
/// diverging record (`dbox replay --diff`).
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// Index of the first diverging record.
    pub index: usize,
    /// One-line classification of *what* diverged: a source name, a record
    /// kind, a specific field path, a message topic or direction, or a
    /// trace ending early.
    pub what: String,
    /// The left trace's record at the divergence (absent when the left
    /// trace ended).
    pub left: Option<TraceRecord>,
    /// The right trace's record at the divergence (absent when the right
    /// trace ended).
    pub right: Option<TraceRecord>,
}

impl DivergenceReport {
    /// Render the report as console lines (what `dbox replay --diff`
    /// prints before exiting 2).
    pub fn render(&self) -> String {
        let mut out = format!("traces diverge at record {}: {}\n", self.index, self.what);
        match &self.left {
            Some(r) => out.push_str(&format!("  left  #{} {}\n", r.seq, r.paper_line())),
            None => out.push_str("  left  <trace ends>\n"),
        }
        match &self.right {
            Some(r) => out.push_str(&format!("  right #{} {}\n", r.seq, r.paper_line())),
            None => out.push_str("  right <trace ends>\n"),
        }
        out
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// Bisect two traces to their first diverging record and explain the
/// divergence. Returns `None` when the traces match record-for-record
/// (same comparison as [`diff_traces`]: seq and timestamps ignored).
pub fn diff_report(left: &[TraceRecord], right: &[TraceRecord]) -> Option<DivergenceReport> {
    match diff_traces(left, right)? {
        TraceDivergence::Mismatch { index, left, right } => {
            let what = explain_mismatch(&left, &right);
            Some(DivergenceReport { index, what, left: Some(*left), right: Some(*right) })
        }
        TraceDivergence::LengthMismatch { left: ll, right: rl } => {
            let index = ll.min(rl);
            let what = if ll < rl {
                format!("left trace ends after {ll} records, right has {rl}")
            } else {
                format!("right trace ends after {rl} records, left has {ll}")
            };
            Some(DivergenceReport {
                index,
                what,
                left: left.get(index).cloned(),
                right: right.get(index).cloned(),
            })
        }
    }
}

/// Classify why two same-position records differ, drilling down to the
/// first differing field when both sides share source and kind.
fn explain_mismatch(l: &TraceRecord, r: &TraceRecord) -> String {
    if l.source != r.source {
        return format!("source ({} vs {})", l.source, r.source);
    }
    if l.kind.tag() != r.kind.tag() {
        return format!("record kind ({} vs {})", l.kind.tag(), r.kind.tag());
    }
    match (&l.kind, &r.kind) {
        (
            RecordKind::ModelChange { fields: lf, patch: lp },
            RecordKind::ModelChange { fields: rf, patch: rp },
        ) => match first_field_divergence(lf, rf) {
            Some(path) => format!("model field {path}"),
            None if lp != rp => "model patch (same resulting fields)".to_string(),
            None => "model change".to_string(),
        },
        (RecordKind::Event { data: ld }, RecordKind::Event { data: rd }) => {
            match first_field_divergence(ld, rd) {
                Some(path) => format!("event field {path}"),
                None => "event data".to_string(),
            }
        }
        (
            RecordKind::Message { direction: ldir, topic: lt, payload: lpay },
            RecordKind::Message { direction: rdir, topic: rt, payload: rpay },
        ) => {
            if ldir != rdir {
                "message direction".to_string()
            } else if lt != rt {
                format!("message topic ({lt} vs {rt})")
            } else {
                match first_field_divergence(lpay, rpay) {
                    Some(path) => format!("message payload field {path}"),
                    None => "message payload".to_string(),
                }
            }
        }
        (
            RecordKind::Lifecycle { action: la, detail: ld },
            RecordKind::Lifecycle { action: ra, detail: rd },
        ) => {
            if la != ra {
                format!("lifecycle action ({la} vs {ra})")
            } else if ld != rd {
                format!("lifecycle detail ({ld} vs {rd})")
            } else {
                "lifecycle".to_string()
            }
        }
        (
            RecordKind::Violation { property: lp, detail: ld },
            RecordKind::Violation { property: rp, detail: rd },
        ) => {
            if lp != rp {
                format!("violated property ({lp} vs {rp})")
            } else if ld != rd {
                format!("violation detail ({ld} vs {rd})")
            } else {
                "violation".to_string()
            }
        }
        _ => "record content".to_string(),
    }
}

/// Walk two [`Value`] trees in canonical (BTreeMap) key order and return
/// the dotted path of the first leaf where they differ — `None` when the
/// trees are equal. A key present on only one side diverges at that key.
pub fn first_field_divergence(left: &Value, right: &Value) -> Option<String> {
    fn walk(l: &Value, r: &Value, path: &str) -> Option<String> {
        match (l, r) {
            (Value::Map(lm), Value::Map(rm)) => {
                // canonical union: BTreeMap keys on both sides, in order
                let keys: std::collections::BTreeSet<&String> =
                    lm.keys().chain(rm.keys()).collect();
                for key in keys {
                    let child = if path.is_empty() {
                        key.to_string()
                    } else {
                        format!("{path}.{key}")
                    };
                    match (lm.get(key.as_str()), rm.get(key.as_str())) {
                        (Some(lv), Some(rv)) => {
                            if let Some(found) = walk(lv, rv, &child) {
                                return Some(found);
                            }
                        }
                        (None, _) | (_, None) => return Some(child),
                    }
                }
                None
            }
            (Value::List(ll), Value::List(rl)) => {
                for (i, (lv, rv)) in ll.iter().zip(rl.iter()).enumerate() {
                    let child = format!("{path}[{i}]");
                    if let Some(found) = walk(lv, rv, &child) {
                        return Some(found);
                    }
                }
                if ll.len() != rl.len() {
                    return Some(format!("{path}[{}]", ll.len().min(rl.len())));
                }
                None
            }
            _ => {
                if l != r {
                    Some(if path.is_empty() { "<root>".to_string() } else { path.to_string() })
                } else {
                    None
                }
            }
        }
    }
    walk(left, right, "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::{vmap, Patch};
    use digibox_net::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn change(seq: u64, ms: u64, source: &str, fields: Value) -> TraceRecord {
        TraceRecord {
            seq,
            ts: at(ms),
            source: source.into(),
            kind: RecordKind::ModelChange { patch: Patch::new(), fields },
        }
    }

    fn event(seq: u64, ms: u64, source: &str) -> TraceRecord {
        TraceRecord {
            seq,
            ts: at(ms),
            source: source.into(),
            kind: RecordKind::Event { data: Value::Null },
        }
    }

    #[test]
    fn schedule_extracts_only_model_changes_in_time_order() {
        let records = vec![
            event(0, 5, "O1"),
            change(1, 30, "L1", vmap! { "p" => 2 }),
            change(2, 10, "O1", vmap! { "t" => true }),
            event(3, 40, "L1"),
        ];
        let sched = ReplaySchedule::from_records(&records);
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.steps()[0].source, "O1");
        assert_eq!(sched.steps()[1].source, "L1");
        assert_eq!(sched.sources(), vec!["L1".to_string(), "O1".to_string()]);
        assert_eq!(sched.duration(), at(30));
    }

    #[test]
    fn final_states_take_last_change() {
        let records = vec![
            change(0, 1, "O1", vmap! { "t" => true }),
            change(1, 2, "O1", vmap! { "t" => false }),
        ];
        let sched = ReplaySchedule::from_records(&records);
        assert_eq!(sched.final_states()["O1"], vmap! { "t" => false });
    }

    #[test]
    fn diff_detects_mismatch_and_ignores_timestamps() {
        let a = vec![change(0, 1, "O1", vmap! { "t" => true })];
        // same content, shifted time and different seq: equal
        let mut b = a.clone();
        b[0].ts = at(999);
        b[0].seq = 42;
        assert_eq!(diff_traces(&a, &b), None);
        // different content: mismatch at 0
        let c = vec![change(0, 1, "O1", vmap! { "t" => false })];
        assert!(matches!(diff_traces(&a, &c), Some(TraceDivergence::Mismatch { index: 0, .. })));
        // prefix: length mismatch
        let d: Vec<TraceRecord> = Vec::new();
        assert_eq!(
            diff_traces(&a, &d),
            Some(TraceDivergence::LengthMismatch { left: 1, right: 0 })
        );
    }

    #[test]
    fn empty_schedule() {
        let sched = ReplaySchedule::from_records(&[]);
        assert!(sched.is_empty());
        assert_eq!(sched.duration(), SimTime::ZERO);
        assert!(sched.final_states().is_empty());
    }

    #[test]
    fn until_is_inclusive_at_the_final_instant() {
        // regression: a record at exactly the cut instant must survive —
        // an exclusive bound drops the last record of a round trip.
        let records = vec![
            change(0, 1, "O1", vmap! { "t" => true }),
            change(1, 30, "L1", vmap! { "p" => 2 }),
        ];
        let sched = ReplaySchedule::from_records(&records);
        assert_eq!(sched.until(at(30)).len(), 2, "cut at the final instant keeps it");
        assert_eq!(sched.until(sched.duration()).len(), sched.len());
        assert_eq!(sched.until(at(29)).len(), 1);
        // until + after partition the schedule exactly
        assert_eq!(sched.until(at(1)).len() + sched.after(at(1)).len(), sched.len());
    }

    #[test]
    fn until_keeps_sub_millisecond_final_instants() {
        // the old CLI end bound truncated the span to whole milliseconds;
        // a final record 400µs past the last millisecond was dropped.
        let mut r = change(0, 0, "O1", vmap! { "t" => true });
        r.ts = SimTime::from_nanos(2_000_400_000); // 2.0004s
        let sched = ReplaySchedule::from_records(&[r]);
        let ms_truncated = SimTime::ZERO + SimDuration::from_millis(sched.duration().as_millis());
        assert!(ms_truncated < sched.duration(), "test needs a sub-ms tail");
        assert_eq!(sched.until(ms_truncated).len(), 0, "ms truncation loses the record");
        assert_eq!(sched.until(sched.duration()).len(), 1, "exact nanos bound keeps it");
    }

    #[test]
    fn at_speed_rescales_deterministically() {
        let records = vec![
            change(0, 1000, "O1", vmap! { "t" => true }),
            change(1, 3000, "L1", vmap! { "p" => 2 }),
        ];
        let sched = ReplaySchedule::from_records(&records);
        let double = sched.at_speed(2000).unwrap();
        assert_eq!(double.steps()[0].ts, at(500));
        assert_eq!(double.steps()[1].ts, at(1500));
        let half = sched.at_speed(500).unwrap();
        assert_eq!(half.steps()[1].ts, at(6000));
        // 1x is the identity
        assert_eq!(sched.at_speed(1000).unwrap(), sched);
        assert_eq!(sched.at_speed(0), None);
    }

    #[test]
    fn states_at_reconstructs_checkpoint_state() {
        let records = vec![
            change(0, 1000, "O1", vmap! { "t" => true }),
            change(1, 2000, "O1", vmap! { "t" => false }),
            change(2, 3000, "L1", vmap! { "p" => 1 }),
        ];
        let sched = ReplaySchedule::from_records(&records);
        let s = sched.states_at(at(2000)); // inclusive
        assert_eq!(s["O1"], vmap! { "t" => false });
        assert!(!s.contains_key("L1"));
        assert!(sched.states_at(at(0)).is_empty());
        // resuming from states_at(c) + after(c) ends in the same final states
        let mut resumed = sched.states_at(at(2000));
        for step in sched.after(at(2000)).steps() {
            resumed.insert(step.source.clone(), step.fields.clone());
        }
        assert_eq!(resumed, sched.final_states());
    }

    #[test]
    fn report_pinpoints_field_divergence() {
        let a = vec![
            event(0, 1, "O1"),
            change(1, 2, "L1", vmap! { "power" => vmap! { "status" => "on", "watts" => 9 } }),
        ];
        let mut b = a.clone();
        b[1].kind = RecordKind::ModelChange {
            patch: Patch::new(),
            fields: vmap! { "power" => vmap! { "status" => "off", "watts" => 9 } },
        };
        let report = diff_report(&a, &b).unwrap();
        assert_eq!(report.index, 1);
        assert_eq!(report.what, "model field power.status");
        assert!(report.render().contains("record 1"));
        assert!(diff_report(&a, &a).is_none());
    }

    #[test]
    fn report_explains_kind_source_and_length() {
        let a = vec![event(0, 1, "O1")];
        let b = vec![change(0, 1, "O1", vmap! { "t" => true })];
        assert_eq!(diff_report(&a, &b).unwrap().what, "record kind (event vs model)");
        let c = vec![event(0, 1, "O2")];
        assert_eq!(diff_report(&a, &c).unwrap().what, "source (O1 vs O2)");
        let d = vec![event(0, 1, "O1"), event(1, 2, "O1")];
        let report = diff_report(&a, &d).unwrap();
        assert_eq!(report.index, 1);
        assert!(report.what.contains("left trace ends after 1"));
        assert!(report.left.is_none());
        assert!(report.right.is_some());
        assert!(report.render().contains("<trace ends>"));
    }

    #[test]
    fn field_divergence_walks_nested_paths() {
        let a = vmap! { "a" => vmap! { "b" => 1, "c" => 2 }, "d" => 3 };
        let b = vmap! { "a" => vmap! { "b" => 1, "c" => 9 }, "d" => 3 };
        assert_eq!(first_field_divergence(&a, &b), Some("a.c".to_string()));
        assert_eq!(first_field_divergence(&a, &a), None);
        // missing key diverges at the key
        let c = vmap! { "a" => vmap! { "b" => 1 }, "d" => 3 };
        assert_eq!(first_field_divergence(&a, &c), Some("a.c".to_string()));
        // list element
        let list = |xs: &[i64]| Value::List(xs.iter().map(|&x| Value::Int(x)).collect());
        let l1 = vmap! { "xs" => list(&[1, 2, 3]) };
        let l2 = vmap! { "xs" => list(&[1, 9, 3]) };
        assert_eq!(first_field_divergence(&l1, &l2), Some("xs[1]".to_string()));
        // scalar root
        assert_eq!(
            first_field_divergence(&Value::Int(1), &Value::Int(2)),
            Some("<root>".to_string())
        );
    }
}
