//! Turning traces into replayable schedules, and validating replays.

use std::collections::BTreeMap;

use digibox_model::Value;
use digibox_net::SimTime;

use crate::record::{RecordKind, TraceRecord};

/// One step of a replay: at virtual time `ts`, force digi `source`'s model
/// fields to `fields`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStep {
    pub ts: SimTime,
    pub source: String,
    pub fields: Value,
}

/// An ordered schedule of model states extracted from a trace
/// (`dbox replay <trace>` drives the testbed with one of these).
///
/// Replay uses the *snapshots* recorded with each model change rather than
/// re-applying patches, so a replay can start at any point and cannot
/// drift.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplaySchedule {
    steps: Vec<ReplayStep>,
}

impl ReplaySchedule {
    /// Extract the schedule from a trace (model-change records only).
    pub fn from_records(records: &[TraceRecord]) -> ReplaySchedule {
        let mut steps: Vec<ReplayStep> = records
            .iter()
            .filter_map(|r| match &r.kind {
                RecordKind::ModelChange { fields, .. } => Some(ReplayStep {
                    ts: r.ts,
                    source: r.source.clone(),
                    fields: fields.clone(),
                }),
                _ => None,
            })
            .collect();
        steps.sort_by(|a, b| a.ts.cmp(&b.ts));
        ReplaySchedule { steps }
    }

    pub fn steps(&self) -> &[ReplayStep] {
        &self.steps
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The set of digi names the schedule drives.
    pub fn sources(&self) -> Vec<String> {
        let mut names: Vec<String> = self.steps.iter().map(|s| s.source.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Final model state per digi (what the testbed should look like when
    /// the replay finishes).
    pub fn final_states(&self) -> BTreeMap<String, Value> {
        let mut out = BTreeMap::new();
        for step in &self.steps {
            out.insert(step.source.clone(), step.fields.clone());
        }
        out
    }

    /// Total virtual duration of the schedule.
    pub fn duration(&self) -> SimTime {
        self.steps.last().map(|s| s.ts).unwrap_or(SimTime::ZERO)
    }
}

/// A point where two traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceDivergence {
    /// Same position, different content.
    Mismatch { index: usize, left: Box<TraceRecord>, right: Box<TraceRecord> },
    /// One trace is a strict prefix of the other.
    LengthMismatch { left: usize, right: usize },
}

/// Compare two traces on their *semantic* content: (source, kind) pairs in
/// order, ignoring seq numbers and exact timestamps (two runs of the same
/// seeded workload have identical timestamps, but a replay legitimately
/// shifts them).
pub fn diff_traces(left: &[TraceRecord], right: &[TraceRecord]) -> Option<TraceDivergence> {
    for (i, (l, r)) in left.iter().zip(right.iter()).enumerate() {
        if l.source != r.source || l.kind != r.kind {
            return Some(TraceDivergence::Mismatch {
                index: i,
                left: Box::new(l.clone()),
                right: Box::new(r.clone()),
            });
        }
    }
    if left.len() != right.len() {
        return Some(TraceDivergence::LengthMismatch { left: left.len(), right: right.len() });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::{vmap, Patch};
    use digibox_net::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn change(seq: u64, ms: u64, source: &str, fields: Value) -> TraceRecord {
        TraceRecord {
            seq,
            ts: at(ms),
            source: source.into(),
            kind: RecordKind::ModelChange { patch: Patch::new(), fields },
        }
    }

    fn event(seq: u64, ms: u64, source: &str) -> TraceRecord {
        TraceRecord {
            seq,
            ts: at(ms),
            source: source.into(),
            kind: RecordKind::Event { data: Value::Null },
        }
    }

    #[test]
    fn schedule_extracts_only_model_changes_in_time_order() {
        let records = vec![
            event(0, 5, "O1"),
            change(1, 30, "L1", vmap! { "p" => 2 }),
            change(2, 10, "O1", vmap! { "t" => true }),
            event(3, 40, "L1"),
        ];
        let sched = ReplaySchedule::from_records(&records);
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.steps()[0].source, "O1");
        assert_eq!(sched.steps()[1].source, "L1");
        assert_eq!(sched.sources(), vec!["L1".to_string(), "O1".to_string()]);
        assert_eq!(sched.duration(), at(30));
    }

    #[test]
    fn final_states_take_last_change() {
        let records = vec![
            change(0, 1, "O1", vmap! { "t" => true }),
            change(1, 2, "O1", vmap! { "t" => false }),
        ];
        let sched = ReplaySchedule::from_records(&records);
        assert_eq!(sched.final_states()["O1"], vmap! { "t" => false });
    }

    #[test]
    fn diff_detects_mismatch_and_ignores_timestamps() {
        let a = vec![change(0, 1, "O1", vmap! { "t" => true })];
        // same content, shifted time and different seq: equal
        let mut b = a.clone();
        b[0].ts = at(999);
        b[0].seq = 42;
        assert_eq!(diff_traces(&a, &b), None);
        // different content: mismatch at 0
        let c = vec![change(0, 1, "O1", vmap! { "t" => false })];
        assert!(matches!(diff_traces(&a, &c), Some(TraceDivergence::Mismatch { index: 0, .. })));
        // prefix: length mismatch
        let d: Vec<TraceRecord> = Vec::new();
        assert_eq!(
            diff_traces(&a, &d),
            Some(TraceDivergence::LengthMismatch { left: 1, right: 0 })
        );
    }

    #[test]
    fn empty_schedule() {
        let sched = ReplaySchedule::from_records(&[]);
        assert!(sched.is_empty());
        assert_eq!(sched.duration(), SimTime::ZERO);
        assert!(sched.final_states().is_empty());
    }
}
