//! # digibox-trace
//!
//! Logging, sharing and replaying test runs (paper §3.5).
//!
//! Digibox logs *everything a testbed does* — scene/mock events, model
//! changes, messages, lifecycle transitions, property violations — as
//! [`TraceRecord`]s into a [`TraceLog`]. A finished log can be:
//!
//! * inspected and filtered (debugging, `dbox watch`-style views);
//! * serialized into a single-file [`archive`] (the paper shares traces as
//!   zip files; we use a CRC-checked length-prefixed container) and shared;
//! * turned into a [`ReplaySchedule`] that re-drives mocks and scenes so a
//!   recipient reproduces the exact run (`dbox replay`);
//! * diffed against another trace to validate that a replay or a
//!   re-execution matches ([`diff_traces`]).

pub mod analysis;
pub mod archive;
mod log;
mod record;
mod replay;

pub use log::{TraceLog, TraceView};
pub use record::{Direction, RecordKind, TraceRecord};
pub use replay::{diff_traces, ReplaySchedule, ReplayStep, TraceDivergence};
