//! # digibox-trace
//!
//! Logging, sharing and replaying test runs (paper §3.5).
//!
//! Digibox logs *everything a testbed does* — scene/mock events, model
//! changes, messages, lifecycle transitions, property violations — as
//! [`TraceRecord`]s into a [`TraceLog`]. A finished log can be:
//!
//! * inspected and filtered (debugging, `dbox watch`-style views);
//! * serialized into a single-file [`archive`] (the paper shares traces as
//!   zip files; we use a CRC-checked length-prefixed container) and shared;
//! * stored content-addressed in a registry under `trace/<name>`
//!   ([`store`]) so identical prefixes deduplicate and diffs can bisect by
//!   chunk digest (`dbox record` / `dbox replay --diff`);
//! * turned into a [`ReplaySchedule`] that re-drives mocks and scenes so a
//!   recipient reproduces the exact run (`dbox replay`), including
//!   time-travel truncation, speed scaling, and checkpoint resume;
//! * diffed against another trace to validate that a replay or a
//!   re-execution matches ([`diff_traces`], [`diff_report`]).

#![warn(missing_docs)]

pub mod analysis;
pub mod archive;
mod log;
mod record;
mod replay;
pub mod store;

pub use log::{TraceLog, TraceView};
pub use record::{Direction, RecordKind, TraceRecord};
pub use replay::{
    diff_report, diff_traces, first_field_divergence, DivergenceReport, ReplaySchedule,
    ReplayStep, TraceDivergence,
};
