//! Trace analytics: summaries a developer reads after a run (paper §3.3:
//! "developers can also analyze Digibox logs to validate whether the
//! application behaves as expected").

use std::collections::BTreeMap;

use digibox_net::{SimDuration, SimTime};

use crate::record::{Direction, RecordKind, TraceRecord};

/// Per-digi activity counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceSummary {
    /// Generator events fired.
    pub events: u64,
    /// Model-change records.
    pub model_changes: u64,
    /// Messages the source sent.
    pub messages_sent: u64,
    /// Messages the source received.
    pub messages_received: u64,
    /// Lifecycle transitions.
    pub lifecycle: u64,
    /// Property violations attributed to the source.
    pub violations: u64,
    /// Timestamp of the source's first record.
    pub first: Option<SimTime>,
    /// Timestamp of the source's last record.
    pub last: Option<SimTime>,
}

impl SourceSummary {
    /// Total records across all categories.
    pub fn total(&self) -> u64 {
        self.events + self.model_changes + self.messages_sent + self.messages_received
            + self.lifecycle
            + self.violations
    }

    /// Event rate over the source's active span (events per simulated
    /// second; 0 when the span is empty).
    pub fn event_rate(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => self.events as f64 / (b - a).as_secs_f64(),
            _ => 0.0,
        }
    }
}

/// Whole-trace analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total record count.
    pub records: u64,
    /// Virtual-time span from first to last record.
    pub span: SimDuration,
    /// Per-source activity, keyed by digi name.
    pub sources: BTreeMap<String, SourceSummary>,
}

impl TraceSummary {
    /// Analyze a trace.
    pub fn analyze(records: &[TraceRecord]) -> TraceSummary {
        let mut summary = TraceSummary { records: records.len() as u64, ..Default::default() };
        let mut min_ts: Option<SimTime> = None;
        let mut max_ts: Option<SimTime> = None;
        for r in records {
            min_ts = Some(min_ts.map_or(r.ts, |m| m.min(r.ts)));
            max_ts = Some(max_ts.map_or(r.ts, |m| m.max(r.ts)));
            let s = summary.sources.entry(r.source.clone()).or_default();
            s.first = Some(s.first.map_or(r.ts, |f| f.min(r.ts)));
            s.last = Some(s.last.map_or(r.ts, |l| l.max(r.ts)));
            match &r.kind {
                RecordKind::Event { .. } => s.events += 1,
                RecordKind::ModelChange { .. } => s.model_changes += 1,
                RecordKind::Message { direction: Direction::Sent, .. } => s.messages_sent += 1,
                RecordKind::Message { direction: Direction::Received, .. } => {
                    s.messages_received += 1
                }
                RecordKind::Lifecycle { .. } => s.lifecycle += 1,
                RecordKind::Violation { .. } => s.violations += 1,
            }
        }
        if let (Some(a), Some(b)) = (min_ts, max_ts) {
            summary.span = b - a;
        }
        summary
    }

    /// The chattiest sources, by total records, descending.
    pub fn top_talkers(&self, n: usize) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> =
            self.sources.iter().map(|(name, s)| (name.as_str(), s.total())).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// Render as an aligned console table (what `dbox log --summary`
    /// prints).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} records over {} of virtual time, {} sources\n",
            self.records,
            self.span,
            self.sources.len()
        );
        out.push_str(&format!(
            "{:<20} {:>7} {:>7} {:>6} {:>6} {:>6} {:>9}\n",
            "source", "events", "models", "sent", "recvd", "viols", "ev/s"
        ));
        for (name, s) in &self.sources {
            out.push_str(&format!(
                "{:<20} {:>7} {:>7} {:>6} {:>6} {:>6} {:>9.2}\n",
                name,
                s.events,
                s.model_changes,
                s.messages_sent,
                s.messages_received,
                s.violations,
                s.event_rate()
            ));
        }
        out
    }
}

/// Extract the model-change snapshots of one digi, in order — the samples
/// `dbox infer` feeds to schema inference.
pub fn model_samples(records: &[TraceRecord], source: &str) -> Vec<digibox_model::Value> {
    records
        .iter()
        .filter(|r| r.source == source)
        .filter_map(|r| match &r.kind {
            RecordKind::ModelChange { fields, .. } => Some(fields.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::{vmap, Patch, Value};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                seq: 0,
                ts: at(0),
                source: "O1".into(),
                kind: RecordKind::Event { data: vmap! { "t" => true } },
            },
            TraceRecord {
                seq: 1,
                ts: at(500),
                source: "O1".into(),
                kind: RecordKind::Event { data: vmap! { "t" => false } },
            },
            TraceRecord {
                seq: 2,
                ts: at(1000),
                source: "O1".into(),
                kind: RecordKind::ModelChange {
                    patch: Patch::new(),
                    fields: vmap! { "t" => false },
                },
            },
            TraceRecord {
                seq: 3,
                ts: at(2000),
                source: "L1".into(),
                kind: RecordKind::Message {
                    direction: Direction::Sent,
                    topic: "x".into(),
                    payload: Value::Null,
                },
            },
            TraceRecord {
                seq: 4,
                ts: at(2500),
                source: "room".into(),
                kind: RecordKind::Violation { property: "p".into(), detail: "d".into() },
            },
        ]
    }

    #[test]
    fn analyze_counts_and_span() {
        let s = TraceSummary::analyze(&sample_records());
        assert_eq!(s.records, 5);
        assert_eq!(s.span, SimDuration::from_millis(2500));
        assert_eq!(s.sources.len(), 3);
        let o1 = &s.sources["O1"];
        assert_eq!(o1.events, 2);
        assert_eq!(o1.model_changes, 1);
        assert_eq!(o1.total(), 3);
        // O1 active for 1s with 2 events
        assert!((o1.event_rate() - 2.0).abs() < 1e-9);
        assert_eq!(s.sources["room"].violations, 1);
    }

    #[test]
    fn top_talkers_ordering() {
        let s = TraceSummary::analyze(&sample_records());
        let top = s.top_talkers(2);
        assert_eq!(top[0], ("O1", 3));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn render_is_table_shaped() {
        let s = TraceSummary::analyze(&sample_records());
        let text = s.render();
        assert!(text.contains("5 records"));
        assert!(text.contains("O1"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn model_samples_extracts_snapshots() {
        let samples = model_samples(&sample_records(), "O1");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0], vmap! { "t" => false });
        assert!(model_samples(&sample_records(), "nobody").is_empty());
    }

    #[test]
    fn empty_trace() {
        let s = TraceSummary::analyze(&[]);
        assert_eq!(s.records, 0);
        assert_eq!(s.span, SimDuration::ZERO);
        assert!(s.top_talkers(5).is_empty());
    }
}
