//! Single-file trace archives.
//!
//! The paper shares traces as zip files; Digibox-RS uses its own small
//! container so recipients need nothing but this crate:
//!
//! ```text
//! magic "DBXT" | version: u16 | record_count: u64
//! repeat record_count times:
//!     len: u32 | json bytes (one TraceRecord)
//! crc32: u32 over everything after the magic
//! ```
//!
//! All integers little-endian. The CRC is IEEE 802.3 (same polynomial as
//! zip), table-driven.

use std::fmt;

use crate::record::TraceRecord;

const MAGIC: &[u8; 4] = b"DBXT";
const VERSION: u16 = 1;

/// Archive errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchiveError {
    /// The bytes don't start with the `DBXT` magic.
    BadMagic,
    /// The archive was written by an unknown format version.
    UnsupportedVersion(u16),
    /// The bytes end mid-header or mid-record.
    Truncated,
    /// The stored CRC doesn't match the content.
    CrcMismatch {
        /// CRC stored in the archive trailer.
        expected: u32,
        /// CRC computed over the body.
        actual: u32,
    },
    /// A record failed JSON decoding (or trailing bytes followed the last).
    BadRecord(String),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::BadMagic => write!(f, "not a digibox trace archive"),
            ArchiveError::UnsupportedVersion(v) => write!(f, "unsupported archive version {v}"),
            ArchiveError::Truncated => write!(f, "archive truncated"),
            ArchiveError::CrcMismatch { expected, actual } => {
                write!(f, "archive corrupt: crc {actual:#010x} != {expected:#010x}")
            }
            ArchiveError::BadRecord(e) => write!(f, "bad record: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// Serialize records into archive bytes.
pub fn write(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 128 + 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        let json = serde_json::to_vec(r).expect("trace records always serialize");
        out.extend_from_slice(&(json.len() as u32).to_le_bytes());
        out.extend_from_slice(&json);
    }
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse archive bytes back into records, verifying the checksum.
pub fn read(data: &[u8]) -> Result<Vec<TraceRecord>, ArchiveError> {
    if data.len() < 4 + 2 + 8 + 4 {
        return Err(if data.starts_with(MAGIC) || data.len() < 4 {
            ArchiveError::Truncated
        } else {
            ArchiveError::BadMagic
        });
    }
    if &data[..4] != MAGIC {
        return Err(ArchiveError::BadMagic);
    }
    let body = &data[4..data.len() - 4];
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    let actual = crc32(body);
    if stored_crc != actual {
        return Err(ArchiveError::CrcMismatch { expected: stored_crc, actual });
    }
    let mut cur = body;
    let version = u16::from_le_bytes(take(&mut cur, 2)?.try_into().unwrap());
    if version != VERSION {
        return Err(ArchiveError::UnsupportedVersion(version));
    }
    let count = u64::from_le_bytes(take(&mut cur, 8)?.try_into().unwrap());
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let len = u32::from_le_bytes(take(&mut cur, 4)?.try_into().unwrap()) as usize;
        let json = take(&mut cur, len)?;
        let record: TraceRecord =
            serde_json::from_slice(json).map_err(|e| ArchiveError::BadRecord(e.to_string()))?;
        records.push(record);
    }
    if !cur.is_empty() {
        return Err(ArchiveError::BadRecord(format!("{} trailing bytes", cur.len())));
    }
    Ok(records)
}

fn take<'a>(cur: &mut &'a [u8], n: usize) -> Result<&'a [u8], ArchiveError> {
    if cur.len() < n {
        return Err(ArchiveError::Truncated);
    }
    let (head, rest) = cur.split_at(n);
    *cur = rest;
    Ok(head)
}

/// IEEE CRC-32 (polynomial 0xEDB88320), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use digibox_model::vmap;
    use digibox_net::{SimDuration, SimTime};

    fn sample() -> Vec<TraceRecord> {
        (0..10)
            .map(|i| TraceRecord {
                seq: i,
                ts: SimTime::ZERO + SimDuration::from_millis(i * 100),
                source: format!("O{i}"),
                kind: RecordKind::Event { data: vmap! { "triggered" => (i % 2 == 0) } },
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let bytes = write(&records);
        let back = read(&bytes).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn empty_roundtrip() {
        let bytes = write(&[]);
        assert_eq!(read(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn detects_corruption() {
        let mut bytes = write(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(read(&bytes), Err(ArchiveError::CrcMismatch { .. })));
    }

    #[test]
    fn detects_truncation() {
        let bytes = write(&sample());
        // truncation breaks either the CRC or the framing, both are errors
        assert!(read(&bytes[..bytes.len() - 5]).is_err());
        assert!(read(&bytes[..8]).is_err());
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut bytes = write(&sample());
        bytes[0] = b'X';
        assert_eq!(read(&bytes).unwrap_err(), ArchiveError::BadMagic);
    }

    #[test]
    fn crc32_known_vectors() {
        // standard test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }
}
