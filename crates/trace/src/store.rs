//! Content-addressed trace storage on a [`digibox_registry::Repository`].
//!
//! `dbox record <name>` stores a trace under the ref `trace/<name>` as a
//! two-level object graph:
//!
//! ```text
//! refs: trace/<name> ──► TraceManifest (canonical JSON object)
//!                          ├─ chunk 0 ──► archive bytes (records 0..256)
//!                          ├─ chunk 1 ──► archive bytes (records 256..512)
//!                          └─ ...
//! ```
//!
//! Records are split into fixed-size chunks of [`CHUNK_RECORDS`], each
//! serialized with the [`crate::archive`] container and stored as one
//! content-addressed object. Because chunk boundaries are positional and
//! the archive encoding is canonical (`Value` maps are BTreeMaps), two
//! traces that share a record prefix share the prefix's chunk *objects* —
//! storing a longer re-recording of the same run costs only the new tail,
//! and [`first_divergent_chunk`] can skip the shared prefix without even
//! decoding it, which is what makes `dbox replay --diff` a bisection
//! rather than a linear scan for long traces.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use digibox_registry::{Digest, Repository};

use crate::archive;
use crate::record::TraceRecord;
use crate::replay::{diff_report, DivergenceReport};

/// Records per stored chunk. Fixed so equal record prefixes produce equal
/// chunk objects (the dedup and bisection invariant).
pub const CHUNK_RECORDS: usize = 256;

/// Manifest version written by this crate.
pub const MANIFEST_VERSION: u16 = 1;

/// The registry ref under which a named trace is stored.
pub fn trace_ref(name: &str) -> String {
    if name.starts_with("trace/") {
        name.to_string()
    } else {
        format!("trace/{name}")
    }
}

/// Errors from trace storage.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The named trace ref does not exist in the repository.
    TraceMissing(String),
    /// A referenced chunk or manifest object is missing or unreadable.
    Registry(String),
    /// A chunk failed archive decoding or CRC verification.
    Archive(String),
    /// The manifest is malformed or its counts disagree with its chunks.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TraceMissing(name) => write!(f, "no recorded trace {:?}", trace_ref(name)),
            StoreError::Registry(e) => write!(f, "registry error: {e}"),
            StoreError::Archive(e) => write!(f, "trace chunk corrupt: {e}"),
            StoreError::Corrupt(e) => write!(f, "trace manifest corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The root object of a stored trace: counts, span, the ordered chunk
/// digests, and free-form `extras` the recorder wants carried along (the
/// CLI stores the session recipe and the run's stats digest there).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceManifest {
    /// Manifest format version ([`MANIFEST_VERSION`]).
    pub version: u16,
    /// The trace's name (the `<name>` in `trace/<name>`).
    pub name: String,
    /// Total record count across all chunks.
    pub records: u64,
    /// Virtual-time span of the trace in nanoseconds (last record's ts).
    pub span_nanos: u64,
    /// Records per chunk used when the trace was written.
    pub chunk_records: u32,
    /// Content digests of the chunk objects, in record order.
    pub chunks: Vec<Digest>,
    /// Recorder-defined metadata (canonical: BTreeMap ⇒ stable JSON).
    pub extras: BTreeMap<String, String>,
}

impl TraceManifest {
    /// Canonical manifest bytes (what gets content-addressed).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("trace manifests always serialize")
    }

    /// Parse manifest bytes written by [`TraceManifest::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceManifest, StoreError> {
        serde_json::from_slice(bytes).map_err(|e| StoreError::Corrupt(e.to_string()))
    }
}

/// Store `records` as `trace/<name>`, chunked and content-addressed.
/// Overwrites the ref if the name is already taken (like `git push -f` to
/// the same branch). Returns the manifest digest.
pub fn save(
    repo: &mut Repository,
    name: &str,
    records: &[TraceRecord],
    extras: BTreeMap<String, String>,
) -> Result<Digest, StoreError> {
    let mut chunks = Vec::with_capacity(records.len() / CHUNK_RECORDS + 1);
    for chunk in records.chunks(CHUNK_RECORDS) {
        chunks.push(repo.put(archive::write(chunk)));
    }
    let manifest = TraceManifest {
        version: MANIFEST_VERSION,
        name: name.trim_start_matches("trace/").to_string(),
        records: records.len() as u64,
        span_nanos: records.last().map(|r| r.ts.as_nanos()).unwrap_or(0),
        chunk_records: CHUNK_RECORDS as u32,
        chunks,
        extras,
    };
    let digest = repo.put(manifest.to_bytes());
    repo.set_ref(&trace_ref(name), digest);
    Ok(digest)
}

/// Load the manifest of `trace/<name>` without decoding any chunks.
pub fn manifest(repo: &Repository, name: &str) -> Result<TraceManifest, StoreError> {
    let digest = repo
        .resolve(&trace_ref(name))
        .map_err(|_| StoreError::TraceMissing(name.to_string()))?;
    let bytes = repo.get(&digest).map_err(|e| StoreError::Registry(e.to_string()))?;
    TraceManifest::from_bytes(bytes)
}

/// Load the full record sequence of `trace/<name>`, verifying every
/// chunk's CRC and the manifest's record count.
pub fn load(repo: &Repository, name: &str) -> Result<(TraceManifest, Vec<TraceRecord>), StoreError> {
    let m = manifest(repo, name)?;
    let mut records = Vec::with_capacity(m.records as usize);
    for digest in &m.chunks {
        let bytes = repo.get(digest).map_err(|e| StoreError::Registry(e.to_string()))?;
        records.extend(archive::read(bytes).map_err(|e| StoreError::Archive(e.to_string()))?);
    }
    if records.len() as u64 != m.records {
        return Err(StoreError::Corrupt(format!(
            "manifest says {} records, chunks hold {}",
            m.records,
            records.len()
        )));
    }
    Ok((m, records))
}

/// Names of all stored traces (refs under `trace/`), sorted.
pub fn list(repo: &Repository) -> Vec<String> {
    repo.refs_with_prefix("trace/")
        .into_iter()
        .filter_map(|(r, _)| r.strip_prefix("trace/").map(str::to_string))
        .collect()
}

/// The index of the first chunk whose digest differs between two
/// manifests — the bisection shortcut: chunks before it are byte-identical
/// objects and need no decoding. `None` when the chunk lists are equal.
pub fn first_divergent_chunk(a: &TraceManifest, b: &TraceManifest) -> Option<usize> {
    let shared = a.chunks.len().min(b.chunks.len());
    for i in 0..shared {
        if a.chunks[i] != b.chunks[i] {
            return Some(i);
        }
    }
    if a.chunks.len() != b.chunks.len() {
        return Some(shared);
    }
    None
}

/// Bisect two *stored* traces to their first diverging record: skip the
/// shared chunk prefix by digest, decode only from the first divergent
/// chunk on, and run [`diff_report`] on the tails (indices reported
/// relative to the whole trace). `None` when the traces are identical.
pub fn diff_stored(
    repo: &Repository,
    a_name: &str,
    b_name: &str,
) -> Result<Option<DivergenceReport>, StoreError> {
    let ma = manifest(repo, a_name)?;
    let mb = manifest(repo, b_name)?;
    if ma.chunk_records != mb.chunk_records {
        // different chunking ⇒ positional digests don't line up; fall back
        // to a full decode + linear diff.
        let (_, ra) = load(repo, a_name)?;
        let (_, rb) = load(repo, b_name)?;
        return Ok(diff_report(&ra, &rb));
    }
    let Some(chunk) = first_divergent_chunk(&ma, &mb) else {
        // identical chunk lists mean identical bytes — content addressing
        // makes the "equal" answer free.
        return Ok(None);
    };
    let decode_tail = |m: &TraceManifest| -> Result<Vec<TraceRecord>, StoreError> {
        let mut out = Vec::new();
        for digest in m.chunks.iter().skip(chunk) {
            let bytes = repo.get(digest).map_err(|e| StoreError::Registry(e.to_string()))?;
            out.extend(archive::read(bytes).map_err(|e| StoreError::Archive(e.to_string()))?);
        }
        Ok(out)
    };
    let ta = decode_tail(&ma)?;
    let tb = decode_tail(&mb)?;
    let offset = chunk * ma.chunk_records.max(1) as usize;
    Ok(diff_report(&ta, &tb).map(|mut report| {
        report.index += offset;
        // a one-sided report means one tail ended: restate the explanation
        // with whole-trace record counts instead of tail-relative ones.
        if report.left.is_none() || report.right.is_none() {
            report.what = if ma.records < mb.records {
                format!("left trace ends after {} records, right has {}", ma.records, mb.records)
            } else {
                format!("right trace ends after {} records, left has {}", mb.records, ma.records)
            };
        }
        report
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use digibox_model::{vmap, Patch};
    use digibox_net::{SimDuration, SimTime};

    fn change(seq: u64, ms: u64, source: &str, on: bool) -> TraceRecord {
        TraceRecord {
            seq,
            ts: SimTime::ZERO + SimDuration::from_millis(ms),
            source: source.into(),
            kind: RecordKind::ModelChange {
                patch: Patch::new().set("power.status", if on { "on" } else { "off" }),
                fields: vmap! { "power" => vmap! { "status" => if on { "on" } else { "off" } } },
            },
        }
    }

    fn sample(n: u64) -> Vec<TraceRecord> {
        (0..n).map(|i| change(i, i * 10, "L1", i % 2 == 0)).collect()
    }

    #[test]
    fn store_roundtrip_preserves_records_and_extras() {
        let mut repo = Repository::new();
        let records = sample(600); // 3 chunks
        let mut extras = BTreeMap::new();
        extras.insert("seed".to_string(), "7".to_string());
        save(&mut repo, "run-a", &records, extras.clone()).unwrap();

        let (m, back) = load(&repo, "run-a").unwrap();
        assert_eq!(back, records);
        assert_eq!(m.records, 600);
        assert_eq!(m.chunks.len(), 3);
        assert_eq!(m.extras, extras);
        assert_eq!(m.span_nanos, records.last().unwrap().ts.as_nanos());
        assert_eq!(list(&repo), vec!["run-a".to_string()]);
        // name and ref forms are interchangeable
        assert!(load(&repo, "trace/run-a").is_ok());
        assert!(matches!(load(&repo, "nope"), Err(StoreError::TraceMissing(_))));
    }

    #[test]
    fn shared_prefixes_dedup_chunk_objects() {
        let mut repo = Repository::new();
        let short = sample(512); // exactly 2 chunks
        let mut long = sample(512);
        long.extend((512..700).map(|i| change(i, i * 10, "L1", i % 2 == 0)));

        save(&mut repo, "short", &short, BTreeMap::new()).unwrap();
        let before = repo.object_count();
        save(&mut repo, "long", &long, BTreeMap::new()).unwrap();
        // the long trace reuses both prefix chunks: only its third chunk
        // and its manifest are new objects.
        assert_eq!(repo.object_count(), before + 2);

        let ma = manifest(&repo, "short").unwrap();
        let mb = manifest(&repo, "long").unwrap();
        assert_eq!(ma.chunks[..2], mb.chunks[..2]);
        assert_eq!(first_divergent_chunk(&ma, &mb), Some(2));
        assert_eq!(first_divergent_chunk(&ma, &ma), None);
    }

    #[test]
    fn diff_stored_bisects_past_identical_chunks() {
        let mut repo = Repository::new();
        let a = sample(600);
        let mut b = a.clone();
        // mutate one field deep in the third chunk
        let victim = 570;
        b[victim].kind = RecordKind::ModelChange {
            patch: Patch::new(),
            fields: vmap! { "power" => vmap! { "status" => "mutated" } },
        };
        save(&mut repo, "a", &a, BTreeMap::new()).unwrap();
        save(&mut repo, "b", &b, BTreeMap::new()).unwrap();

        let report = diff_stored(&repo, "a", "b").unwrap().unwrap();
        assert_eq!(report.index, victim, "index is absolute, not tail-relative");
        assert_eq!(report.what, "model field power.status");
        assert_eq!(diff_stored(&repo, "a", "a").unwrap(), None);
    }

    #[test]
    fn diff_stored_reports_prefix_extension() {
        let mut repo = Repository::new();
        let short = sample(300);
        let long = sample(450);
        save(&mut repo, "short", &short, BTreeMap::new()).unwrap();
        save(&mut repo, "long", &long, BTreeMap::new()).unwrap();
        let report = diff_stored(&repo, "short", "long").unwrap().unwrap();
        assert_eq!(report.index, 300);
        assert!(report.what.contains("ends after 300"));
    }

    #[test]
    fn empty_trace_roundtrip() {
        let mut repo = Repository::new();
        save(&mut repo, "empty", &[], BTreeMap::new()).unwrap();
        let (m, records) = load(&repo, "empty").unwrap();
        assert!(records.is_empty());
        assert_eq!(m.chunks.len(), 0);
        assert_eq!(m.span_nanos, 0);
    }
}
