use serde::{Deserialize, Serialize};

use digibox_model::{Patch, Value};
use digibox_net::SimTime;

/// Direction of a logged message, from the perspective of the source digi.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Direction {
    /// The source digi sent the message.
    Sent,
    /// The source digi received the message.
    Received,
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum RecordKind {
    /// An event generator fired and produced `data` (paper: "generates
    /// events").
    Event {
        /// The generated event payload.
        data: Value,
    },
    /// The digi's model changed.
    ModelChange {
        /// Transforms the previous field tree into the new one.
        patch: Patch,
        /// Full snapshot of the resulting field tree, for replay seeks.
        fields: Value,
    },
    /// An MQTT/REST message was sent or received.
    Message {
        /// Sent or received, from the source digi's perspective.
        direction: Direction,
        /// MQTT topic (or REST path) the message travelled on.
        topic: String,
        /// Decoded message body.
        payload: Value,
    },
    /// Lifecycle transition: created, started, stopped, attached, detached...
    Lifecycle {
        /// The transition (e.g. `run`, `stop`, `attach`).
        action: String,
        /// Free-form context (e.g. the peer digi's name).
        detail: String,
    },
    /// A scene property (invariant) was violated.
    Violation {
        /// Name of the violated property.
        property: String,
        /// What the checker observed.
        detail: String,
    },
}

impl RecordKind {
    /// Short tag for filters and display.
    pub fn tag(&self) -> &'static str {
        match self {
            RecordKind::Event { .. } => "event",
            RecordKind::ModelChange { .. } => "model",
            RecordKind::Message { .. } => "message",
            RecordKind::Lifecycle { .. } => "lifecycle",
            RecordKind::Violation { .. } => "violation",
        }
    }
}

/// One line in a Digibox trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Global sequence number (total order, breaks timestamp ties).
    pub seq: u64,
    /// Virtual-clock timestamp.
    pub ts: SimTime,
    /// Which digi (mock or scene) produced the record.
    pub source: String,
    /// What happened (flattened into the record's JSON object).
    #[serde(flatten)]
    pub kind: RecordKind,
}

impl TraceRecord {
    /// The paper's compact display form, e.g.
    /// `{name:meetingroom,human_presence:false,ts:00:03}`.
    pub fn paper_line(&self) -> String {
        let middle = match &self.kind {
            RecordKind::Event { data } => compact_kv(data),
            RecordKind::ModelChange { patch, .. } => patch
                .ops
                .iter()
                .map(|op| match op {
                    digibox_model::PatchOp::Set { path, value } => format!("{path}:{value}"),
                    digibox_model::PatchOp::Remove { path } => format!("{path}:-"),
                })
                .collect::<Vec<_>>()
                .join(","),
            RecordKind::Message { direction, topic, .. } => format!(
                "{}:{topic}",
                match direction {
                    Direction::Sent => "send",
                    Direction::Received => "recv",
                }
            ),
            RecordKind::Lifecycle { action, .. } => format!("lifecycle:{action}"),
            RecordKind::Violation { property, .. } => format!("violation:{property}"),
        };
        format!("{{name:{},{},ts:{}}}", self.source.to_lowercase(), middle, self.ts)
    }
}

fn compact_kv(v: &Value) -> String {
    match v {
        Value::Map(m) => m
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(","),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::vmap;
    use digibox_net::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn paper_line_for_event_matches_paper_format() {
        let r = TraceRecord {
            seq: 1,
            ts: at(1000),
            source: "ConfCenter".into(),
            kind: RecordKind::Event { data: vmap! { "num_human" => 1 } },
        };
        assert_eq!(r.paper_line(), "{name:confcenter,num_human:1,ts:00:01.000}");
    }

    #[test]
    fn paper_line_for_model_change() {
        let r = TraceRecord {
            seq: 2,
            ts: at(3000),
            source: "MeetingRoom".into(),
            kind: RecordKind::ModelChange {
                patch: Patch::new().set("human_presence", false),
                fields: vmap! { "human_presence" => false },
            },
        };
        assert_eq!(r.paper_line(), "{name:meetingroom,human_presence:false,ts:00:03.000}");
    }

    #[test]
    fn serde_roundtrip_all_kinds() {
        let records = vec![
            TraceRecord {
                seq: 0,
                ts: at(1),
                source: "O1".into(),
                kind: RecordKind::Event { data: vmap! { "triggered" => true } },
            },
            TraceRecord {
                seq: 1,
                ts: at(2),
                source: "L1".into(),
                kind: RecordKind::ModelChange {
                    patch: Patch::new().set("power.status", "on"),
                    fields: vmap! { "power" => vmap! { "status" => "on" } },
                },
            },
            TraceRecord {
                seq: 2,
                ts: at(3),
                source: "L1".into(),
                kind: RecordKind::Message {
                    direction: Direction::Sent,
                    topic: "digibox/mock/L1/status".into(),
                    payload: vmap! { "power" => "on" },
                },
            },
            TraceRecord {
                seq: 3,
                ts: at(4),
                source: "room".into(),
                kind: RecordKind::Lifecycle { action: "attach".into(), detail: "L1".into() },
            },
            TraceRecord {
                seq: 4,
                ts: at(5),
                source: "room".into(),
                kind: RecordKind::Violation {
                    property: "lamp-off-when-empty".into(),
                    detail: "power.status=on while triggered=false".into(),
                },
            },
        ];
        for r in records {
            let json = serde_json::to_string(&r).unwrap();
            let back: TraceRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(r, back);
        }
    }

    #[test]
    fn kind_tags() {
        assert_eq!(RecordKind::Event { data: Value::Null }.tag(), "event");
        assert_eq!(
            RecordKind::Lifecycle { action: "run".into(), detail: String::new() }.tag(),
            "lifecycle"
        );
    }
}
