//! # digibox-obs
//!
//! Deterministic, virtual-time observability for Digibox testbeds: an
//! interned-key metrics registry (counters, gauges, fixed-bucket
//! histograms) plus hierarchical spans over the simulation hot paths.
//!
//! ## Determinism by construction
//!
//! Nothing in this crate reads a wall clock, draws randomness, or touches
//! the simulation: every value is an event count, a queue depth, or a
//! virtual-time reading handed in by the kernel ([`clock`]). Recording is
//! purely observational — it schedules no events and advances no RNG — so
//! enabling or disabling metrics cannot change a single simulated byte,
//! and a [`Snapshot`] of the same seeded run is byte-identical every time.
//!
//! That byte-identity is what `dbox record`/`dbox replay` build on: the
//! canonical JSON of a snapshot is the run's stats digest, and a verified
//! replay must reproduce it exactly. Replays surface their own activity
//! through the `replay.schedules` / `replay.steps` /
//! `replay.resumed_states` counters the testbed registers — replay is
//! observable here without being allowed to change anything else.
//!
//! ## Why thread-local
//!
//! Instrumented code (the kernel's dispatch loop, the broker's routing,
//! a digi's handlers) has no registry handle to thread through dozens of
//! call sites, so the collector lives in a thread-local — the same tap
//! pattern `core::footprint` uses. This is also exactly what makes sweeps
//! deterministic across `--jobs` counts: a `Testbed` is `!Send`, each
//! sweep seed builds its testbed inside one worker thread (resetting that
//! thread's collector), and only the extracted [`Snapshot`] crosses
//! threads — so per-seed metrics are independent of scheduling, just like
//! the sweep results themselves.
//!
//! ## Span weights in a virtual-time world
//!
//! Handlers execute in zero virtual time, so span "duration" is not a
//! meaningful sample value. Folded stacks therefore weigh each stack by
//! its *entry count* — a deterministic work proxy — which standard
//! flamegraph tooling renders just as happily as nanoseconds.
//!
//! The crate is std-only with no dependencies: it sits below `net` and
//! `broker` in the workspace graph, and `scripts/standalone_obs.rs`
//! compiles it with bare `rustc` for registry-less environments.

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::HashMap; // keyed lookup only; snapshots sort by name (`dbox audit` DH0002 convention)

/// Number of power-of-two histogram buckets (values up to 2^31 land in
/// their log2 bucket; larger ones saturate into the last).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Interned handle to a counter (monotonically increasing `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Interned handle to a gauge (last-write-wins `i64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Interned handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// Interned handle to a span frame name (one level of a folded stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameId(u32);

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct HistogramCell {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramCell {
    fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }
}

/// One node of the span tree: a frame plus its children, each child keyed
/// by frame id. Children are kept sorted by frame id so lookups are a
/// binary search and traversal order is reproducible.
struct SpanNode {
    frame: u32,
    count: u64,
    children: Vec<(u32, u32)>, // (frame id, node index), sorted by frame id
}

struct Collector {
    counters: Interner,
    counter_values: Vec<u64>,
    gauges: Interner,
    gauge_values: Vec<Option<i64>>,
    histograms: Interner,
    histogram_values: Vec<HistogramCell>,
    frames: Interner,
    /// Span tree nodes; index 0 is the virtual root.
    nodes: Vec<SpanNode>,
    /// Indices into `nodes` for the currently open span stack.
    stack: Vec<u32>,
    /// Latest virtual-time reading (nanoseconds) reported via [`clock`].
    clock_ns: u64,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            counters: Interner::default(),
            counter_values: Vec::new(),
            gauges: Interner::default(),
            gauge_values: Vec::new(),
            histograms: Interner::default(),
            histogram_values: Vec::new(),
            frames: Interner::default(),
            nodes: vec![SpanNode { frame: u32::MAX, count: 0, children: Vec::new() }],
            stack: Vec::new(),
            clock_ns: 0,
        }
    }

    /// Zero every value and drop the span tree, but keep the intern
    /// tables: handles cached in long-lived structs (a kernel, a broker)
    /// stay valid across testbeds built on the same thread.
    fn reset(&mut self) {
        self.counter_values.iter_mut().for_each(|v| *v = 0);
        self.gauge_values.iter_mut().for_each(|v| *v = None);
        self.histogram_values.iter_mut().for_each(|v| *v = HistogramCell::default());
        self.nodes.truncate(1);
        self.nodes[0].children.clear();
        self.nodes[0].count = 0;
        self.stack.clear();
        self.clock_ns = 0;
    }

    fn enter(&mut self, frame: FrameId) -> u32 {
        let parent = self.stack.last().copied().unwrap_or(0);
        let child = match self.nodes[parent as usize]
            .children
            .binary_search_by_key(&frame.0, |&(f, _)| f)
        {
            Ok(i) => self.nodes[parent as usize].children[i].1,
            Err(i) => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(SpanNode { frame: frame.0, count: 0, children: Vec::new() });
                self.nodes[parent as usize].children.insert(i, (frame.0, idx));
                idx
            }
        };
        self.nodes[child as usize].count += 1;
        self.stack.push(child);
        child
    }

    /// Collect folded stacks: `(path, count)` for every node, DFS from the
    /// root. Paths join frame names with `;` (flamegraph folded format).
    fn folded_into(&self, node: u32, prefix: &str, out: &mut Vec<(String, u64)>) {
        let n = &self.nodes[node as usize];
        let path = if node == 0 {
            String::new()
        } else if prefix.is_empty() {
            self.frames.names[n.frame as usize].clone()
        } else {
            format!("{prefix};{}", self.frames.names[n.frame as usize])
        };
        if node != 0 {
            out.push((path.clone(), n.count));
        }
        for &(_, child) in &n.children {
            self.folded_into(child, &path, out);
        }
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
}

/// Whether this thread's collector is currently recording.
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Turn recording on or off for this thread. Disabling leaves recorded
/// data in place (a later [`snapshot`] still sees it); use [`reset`] to
/// clear.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Zero all metric values and drop the span tree on this thread. Interned
/// handles stay valid (the name tables survive), so instruments that
/// cached ids keep working across resets.
pub fn reset() {
    COLLECTOR.with(|c| c.borrow_mut().reset());
}

/// An owned, detached collector (intern tables, values, span tree, enabled
/// flag) — the unit of swapping for code that multiplexes several
/// independent recording contexts on one thread.
///
/// The space-parallel island engine (`core::islands`) pins several island
/// kernels to one worker thread and interleaves them epoch by epoch; each
/// island keeps its own `CollectorState` and installs it around every
/// slice of island execution, so per-island metrics are exactly what a
/// dedicated thread would have recorded — independent of how many workers
/// the islands were packed onto. Interned handles (`CounterId`, ...) are
/// indices into the state they were created under, so a handle must only
/// be used while its own state is installed — which island pinning
/// guarantees by construction.
///
/// Deliberately `!Send` (it is only meaningful on the thread that fills
/// it); detached states are plain values, so dropping one discards its
/// recordings.
pub struct CollectorState {
    enabled: bool,
    collector: Collector,
    /// Keeps the type `!Send`/`!Sync`: handles inside reference
    /// thread-local intern order.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// A fresh, empty, disabled [`CollectorState`] — the starting point for
/// each multiplexed context.
pub fn fresh_state() -> CollectorState {
    CollectorState {
        enabled: false,
        collector: Collector::new(),
        _not_send: std::marker::PhantomData,
    }
}

/// Install `state` as this thread's collector and return the previously
/// installed one. The returned state can be re-installed later to resume
/// recording exactly where it left off.
pub fn swap_state(mut state: CollectorState) -> CollectorState {
    ENABLED.with(|e| {
        let prev = e.get();
        e.set(state.enabled);
        state.enabled = prev;
    });
    COLLECTOR.with(|c| std::mem::swap(&mut *c.borrow_mut(), &mut state.collector));
    state
}

/// Intern (or look up) a counter by name.
pub fn counter(name: &str) -> CounterId {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let id = c.counters.intern(name);
        if c.counter_values.len() <= id as usize {
            c.counter_values.resize(id as usize + 1, 0);
        }
        CounterId(id)
    })
}

/// Intern (or look up) a gauge by name.
pub fn gauge(name: &str) -> GaugeId {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let id = c.gauges.intern(name);
        if c.gauge_values.len() <= id as usize {
            c.gauge_values.resize(id as usize + 1, None);
        }
        GaugeId(id)
    })
}

/// Intern (or look up) a histogram by name.
pub fn histogram(name: &str) -> HistogramId {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let id = c.histograms.intern(name);
        if c.histogram_values.len() <= id as usize {
            c.histogram_values.resize(id as usize + 1, HistogramCell::default());
        }
        HistogramId(id)
    })
}

/// Intern (or look up) a span frame name.
pub fn frame(name: &str) -> FrameId {
    COLLECTOR.with(|c| FrameId(c.borrow_mut().frames.intern(name)))
}

/// Add `delta` to a counter (no-op while disabled).
#[inline]
pub fn add(counter: CounterId, delta: u64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| c.borrow_mut().counter_values[counter.0 as usize] += delta);
}

/// Increment a counter by one (no-op while disabled).
#[inline]
pub fn inc(counter: CounterId) {
    add(counter, 1);
}

/// Set a gauge to `value` (no-op while disabled).
#[inline]
pub fn set(gauge: GaugeId, value: i64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| c.borrow_mut().gauge_values[gauge.0 as usize] = Some(value));
}

/// Record `value` into a histogram (no-op while disabled).
#[inline]
pub fn observe(histogram: HistogramId, value: u64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| c.borrow_mut().histogram_values[histogram.0 as usize].record(value));
}

/// Report the kernel's virtual clock (nanoseconds). Snapshots carry the
/// latest reading — the only "timestamp" this crate ever emits.
#[inline]
pub fn clock(now_ns: u64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        c.clock_ns = c.clock_ns.max(now_ns);
    });
}

/// Open a span under the current one; the returned guard closes it on
/// drop. Inert (records nothing) while disabled.
#[inline]
pub fn enter(frame: FrameId) -> SpanGuard {
    if !enabled() {
        return SpanGuard { pushed: false };
    }
    COLLECTOR.with(|c| c.borrow_mut().enter(frame));
    SpanGuard { pushed: true }
}

/// RAII guard for an open span (see [`enter`]).
pub struct SpanGuard {
    pushed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.pushed {
            COLLECTOR.with(|c| {
                c.borrow_mut().stack.pop();
            });
        }
    }
}

/// A histogram as captured in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `(bucket index, count)` for every non-empty power-of-two bucket;
    /// bucket `i` covers values in `[2^(i-1), 2^i)` (bucket 0 is zero).
    pub buckets: Vec<(usize, u64)>,
}

/// An immutable, canonically ordered capture of this thread's collector.
///
/// Everything is sorted by name (metrics) or folded path (spans), so two
/// snapshots of identical runs render byte-identical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Latest virtual-time reading (ns) reported via [`clock`].
    pub clock_ns: u64,
    /// `(name, value)` for every counter that was ever registered, sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge that was *set*, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` for every histogram with recordings, sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(folded path, entry count)` per span stack, lexicographic order.
    pub spans: Vec<(String, u64)>,
}

/// Capture this thread's collector as a canonical [`Snapshot`].
pub fn snapshot() -> Snapshot {
    COLLECTOR.with(|c| {
        let c = c.borrow();
        let mut counters: Vec<(String, u64)> = c
            .counters
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), c.counter_values[i]))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = c
            .gauges
            .names
            .iter()
            .enumerate()
            .filter_map(|(i, n)| c.gauge_values[i].map(|v| (n.clone(), v)))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = c
            .histograms
            .names
            .iter()
            .enumerate()
            .filter(|&(i, _)| c.histogram_values[i].count > 0)
            .map(|(i, n)| {
                let h = &c.histogram_values[i];
                (
                    n.clone(),
                    HistogramSnapshot {
                        count: h.count,
                        sum: h.sum,
                        max: h.max,
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|&(_, &n)| n > 0)
                            .map(|(i, &n)| (i, n))
                            .collect(),
                    },
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut spans = Vec::new();
        c.folded_into(0, "", &mut spans);
        spans.sort();
        Snapshot { clock_ns: c.clock_ns, counters, gauges, histograms, spans }
    })
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Snapshot {
    /// The value of a counter by name (0 if absent) — the lookup the
    /// chaos/sweep per-seed summaries use.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Canonical JSON (hand-built, sorted keys, integers only) — the same
    /// digest-stable convention the chaos scorecard uses.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 48 * self.counters.len());
        out.push_str(&format!("{{\"clock_ns\":{},\"counters\":{{", self.clock_ns));
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_str(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_str(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                json_str(name),
                h.count,
                h.sum,
                h.max
            ));
            for (j, (bucket, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bucket},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"spans\":[");
        for (i, (path, count)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{count}]", json_str(path)));
        }
        out.push_str("]}");
        out
    }

    /// Merge independently captured snapshots into one, order-independently:
    /// counters, gauges, span counts and histogram buckets are summed per
    /// name, `clock_ns` takes the latest reading, and every output section
    /// is re-sorted — so any permutation of `parts` yields byte-identical
    /// JSON. This is how the space-parallel island engine folds per-island
    /// collectors into the single testbed-wide snapshot the digests use.
    ///
    /// Gauges are summed rather than last-write-wins because across
    /// *disjoint* recording contexts there is no meaningful "last": the
    /// testbed gauges (digi counts, pending restarts) are all additive
    /// partitions of a whole.
    pub fn merged(parts: &[Snapshot]) -> Snapshot {
        use std::collections::BTreeMap;
        let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<&str, i64> = BTreeMap::new();
        let mut histograms: BTreeMap<&str, HistogramSnapshot> = BTreeMap::new();
        let mut spans: BTreeMap<&str, u64> = BTreeMap::new();
        let mut clock_ns = 0;
        for part in parts {
            clock_ns = clock_ns.max(part.clock_ns);
            for (name, v) in &part.counters {
                *counters.entry(name).or_insert(0) += v;
            }
            for (name, v) in &part.gauges {
                *gauges.entry(name).or_insert(0) += v;
            }
            for (name, h) in &part.histograms {
                let merged = histograms.entry(name).or_insert_with(|| HistogramSnapshot {
                    count: 0,
                    sum: 0,
                    max: 0,
                    buckets: Vec::new(),
                });
                merged.count += h.count;
                merged.sum = merged.sum.saturating_add(h.sum);
                merged.max = merged.max.max(h.max);
                let mut buckets: BTreeMap<usize, u64> =
                    merged.buckets.iter().copied().collect();
                for &(bucket, n) in &h.buckets {
                    *buckets.entry(bucket).or_insert(0) += n;
                }
                merged.buckets = buckets.into_iter().collect();
            }
            for (path, count) in &part.spans {
                *spans.entry(path).or_insert(0) += count;
            }
        }
        Snapshot {
            clock_ns,
            counters: counters.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            gauges: gauges.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            histograms: histograms.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            spans: spans.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
        }
    }

    /// Folded-stack lines (`path;to;frame count`), one per span stack —
    /// directly consumable by `flamegraph.pl` / `inferno-flamegraph`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, count) in &self.spans {
            out.push_str(path);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Human-readable table for `dbox stats` pretty output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "metrics @ virtual t={}.{:03}s\n",
            self.clock_ns / 1_000_000_000,
            (self.clock_ns % 1_000_000_000) / 1_000_000
        ));
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let mean = if h.count > 0 { h.sum / h.count } else { 0 };
                out.push_str(&format!(
                    "  {name:<40} count={} mean={} max={}\n",
                    h.count, mean, h.max
                ));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (entry counts):\n");
            for (path, count) in &self.spans {
                let depth = path.matches(';').count();
                let leaf = path.rsplit(';').next().unwrap_or(path);
                out.push_str(&format!(
                    "  {:indent$}{leaf:<width$} {count:>12}\n",
                    "",
                    indent = depth * 2,
                    width = 40usize.saturating_sub(depth * 2)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_fresh<R>(f: impl FnOnce() -> R) -> R {
        // Tests share one thread-local collector per test thread; reset and
        // enable around each body so they are order-independent.
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    #[test]
    fn counters_accumulate_and_survive_reset_handles() {
        with_fresh(|| {
            let c = counter("kernel.events");
            add(c, 3);
            inc(c);
            assert_eq!(snapshot().counter("kernel.events"), 4);
            reset();
            // The handle stays valid across reset; values restart at zero.
            inc(c);
            assert_eq!(snapshot().counter("kernel.events"), 1);
        });
    }

    #[test]
    fn disabled_records_nothing() {
        with_fresh(|| {
            let c = counter("quiet");
            let h = histogram("quiet.h");
            let f = frame("quiet.f");
            set_enabled(false);
            add(c, 10);
            observe(h, 5);
            clock(99);
            drop(enter(f));
            set_enabled(true);
            let s = snapshot();
            assert_eq!(s.counter("quiet"), 0);
            assert!(s.histograms.is_empty());
            assert!(s.spans.is_empty());
            assert_eq!(s.clock_ns, 0);
        });
    }

    #[test]
    fn gauges_last_write_wins_and_only_set_ones_appear() {
        with_fresh(|| {
            let g = gauge("queue.depth");
            let _unset = gauge("never.set");
            set(g, 7);
            set(g, -2);
            let s = snapshot();
            assert_eq!(s.gauges, vec![("queue.depth".to_string(), -2)]);
        });
    }

    #[test]
    fn histogram_buckets_are_log2() {
        with_fresh(|| {
            let h = histogram("sizes");
            for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
                observe(h, v);
            }
            let s = snapshot();
            let (_, hs) = &s.histograms[0];
            assert_eq!(hs.count, 7);
            assert_eq!(hs.max, u64::MAX);
            // 0→b0, 1→b1, 2..3→b2, 4→b3, 1024→b11, MAX→b31
            let buckets: Vec<(usize, u64)> =
                vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1), (31, 1)];
            assert_eq!(hs.buckets, buckets);
        });
    }

    #[test]
    fn spans_fold_hierarchically() {
        with_fresh(|| {
            let step = frame("kernel.step");
            let deliver = frame("deliver");
            let timer = frame("timer");
            for _ in 0..3 {
                let _s = enter(step);
                let _d = enter(deliver);
            }
            {
                let _s = enter(step);
                let _t = enter(timer);
            }
            let s = snapshot();
            assert_eq!(
                s.spans,
                vec![
                    ("kernel.step".to_string(), 4),
                    ("kernel.step;deliver".to_string(), 3),
                    ("kernel.step;timer".to_string(), 1),
                ]
            );
            let folded = s.folded();
            assert!(folded.contains("kernel.step;deliver 3\n"), "{folded}");
        });
    }

    #[test]
    fn snapshot_json_is_canonical_and_deterministic() {
        let build = || {
            with_fresh(|| {
                // Register in one order, bump in another: output sorts.
                let b = counter("b.second");
                let a = counter("a.first");
                add(a, 1);
                add(b, 2);
                set(gauge("g"), 5);
                observe(histogram("h"), 3);
                let _s = enter(frame("root"));
                clock(1_500_000_000);
                snapshot().to_json()
            })
        };
        let j = build();
        assert_eq!(j, build());
        assert!(j.starts_with("{\"clock_ns\":1500000000,\"counters\":{\"a.first\":1,\"b.second\":2}"), "{j}");
        assert!(j.contains("\"gauges\":{\"g\":5}"), "{j}");
        assert!(j.contains("\"h\":{\"count\":1,\"sum\":3,\"max\":3,\"buckets\":[[2,1]]}"), "{j}");
        assert!(j.ends_with("\"spans\":[[\"root\",1]]}"), "{j}");
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn render_mentions_every_section() {
        with_fresh(|| {
            inc(counter("c"));
            set(gauge("g"), 1);
            observe(histogram("h"), 2);
            let _s = enter(frame("f"));
            let table = snapshot().render();
            for needle in ["counters:", "gauges:", "histograms:", "spans"] {
                assert!(table.contains(needle), "missing {needle} in:\n{table}");
            }
        });
    }

    #[test]
    fn swap_state_multiplexes_independent_contexts() {
        with_fresh(|| {
            // Fill the "outer" context a little.
            inc(counter("outer.events"));

            // Context A records under its own state.
            let mut a = fresh_state();
            a.enabled = true;
            let outer = swap_state(a);
            let ca = counter("ctx.events");
            add(ca, 2);
            let mut a = swap_state(outer);

            // Context B uses the same metric name; its state is disjoint.
            let mut b = fresh_state();
            b.enabled = true;
            let outer = swap_state(b);
            let cb = counter("ctx.events");
            add(cb, 5);
            let b = swap_state(outer);

            // Resume A: its handle and its tally survived the detach.
            let outer = swap_state(a);
            add(ca, 1);
            let snap_a = snapshot();
            a = swap_state(outer);

            let outer = swap_state(b);
            let snap_b = snapshot();
            let _b = swap_state(outer);
            drop(a);

            assert_eq!(snap_a.counter("ctx.events"), 3);
            assert_eq!(snap_b.counter("ctx.events"), 5);
            // The outer context never saw the multiplexed counters.
            let outer_snap = snapshot();
            assert_eq!(outer_snap.counter("ctx.events"), 0);
            assert_eq!(outer_snap.counter("outer.events"), 1);
        });
    }

    #[test]
    fn merged_snapshots_are_order_independent_sums() {
        let capture = |c1: u64, g: i64, h: u64, span_n: u64| {
            with_fresh(|| {
                add(counter("c"), c1);
                set(gauge("g"), g);
                observe(histogram("h"), h);
                let f = frame("f");
                for _ in 0..span_n {
                    drop(enter(f));
                }
                clock(h * 10);
                snapshot()
            })
        };
        let a = capture(1, 2, 4, 1);
        let b = capture(10, 20, 1024, 3);
        let ab = Snapshot::merged(&[a.clone(), b.clone()]);
        let ba = Snapshot::merged(&[b, a]);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.counter("c"), 11);
        assert_eq!(ab.gauges, vec![("g".to_string(), 22)]);
        assert_eq!(ab.clock_ns, 10_240);
        let (_, h) = &ab.histograms[0];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1028);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets, vec![(3, 1), (11, 1)]);
        assert_eq!(ab.spans, vec![("f".to_string(), 4)]);
    }

    #[test]
    fn clock_keeps_the_latest_reading() {
        with_fresh(|| {
            clock(5);
            clock(100);
            clock(7); // stale reading (never happens in-kernel, but safe)
            assert_eq!(snapshot().clock_ns, 100);
        });
    }
}
