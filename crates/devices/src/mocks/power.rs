//! Power and airflow mocks.

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use super::digi_identity;

/// Multi-speed fan: intent `speed` 0–3; airflow and power draw follow.
#[derive(Default)]
pub struct Fan;

impl DigiProgram for Fan {
    digi_identity!("Fan", "v1", "builtin/fan");

    fn schema(&self) -> Schema {
        Schema::new("Fan", "v1")
            .field("speed", FieldKind::pair(FieldKind::int_range(0, 3)))
            .field("airflow_cfm", FieldKind::float_range(0.0, 500.0))
            .field("power_w", FieldKind::float_range(0.0, 120.0))
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("speed").cloned() {
            ctx.set_status("speed", want);
        }
        let speed = ctx.status("speed").and_then(Value::as_int).unwrap_or(0);
        ctx.set_field("airflow_cfm", speed as f64 * 110.0);
        ctx.set_field("power_w", match speed {
            0 => 0.0,
            1 => 18.0,
            2 => 35.0,
            _ => 62.0,
        });
    }
}

/// Switchable smart plug that meters the active power of whatever is
/// plugged into it. Scenes (or apps) write `load_w`; switching the plug
/// off cuts the measured power.
#[derive(Default)]
pub struct SmartPlug;

impl DigiProgram for SmartPlug {
    digi_identity!("SmartPlug", "v1", "builtin/smart-plug");

    fn schema(&self) -> Schema {
        Schema::new("SmartPlug", "v1")
            .field("power", FieldKind::pair(FieldKind::enumeration(["off", "on"])))
            .field("load_w", FieldKind::float_range(0.0, 3600.0))
            .field("measured_w", FieldKind::float_range(0.0, 3600.0))
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("power").cloned() {
            ctx.set_status("power", want);
        }
        let on = ctx.status_str("power").as_deref() == Some("on");
        let load = ctx.field_f64("load_w").unwrap_or(0.0);
        ctx.set_field("measured_w", if on { load } else { 0.0 });
    }
}

/// Cumulative energy meter: integrates `demand_w` (written by a scene or
/// defaulted by its own generator) into `energy_kwh` every tick.
#[derive(Default)]
pub struct SmartMeter;

impl DigiProgram for SmartMeter {
    digi_identity!("SmartMeter", "v1", "builtin/smart-meter");

    fn schema(&self) -> Schema {
        Schema::new("SmartMeter", "v1")
            .field("demand_w", FieldKind::float_range(0.0, 100_000.0))
            .field("energy_kwh", FieldKind::float())
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let base = ctx.param_f64("base_demand_w", 250.0);
        let managed_demand =
            ctx.model.lookup(&"demand_w".into()).and_then(Value::as_float).unwrap_or(base);
        // Unmanaged meters jitter around the base demand; managed meters
        // keep whatever the scene wrote.
        let demand = if ctx.model.meta.params.contains_key("base_demand_w") || managed_demand == 0.0
        {
            base * ctx.rng.range_f64(0.7, 1.3)
        } else {
            managed_demand * ctx.rng.range_f64(0.95, 1.05)
        };
        let tick_hours = ctx.model.meta.interval_ms() as f64 / 3_600_000.0;
        let energy = ctx
            .model
            .lookup(&"energy_kwh".into())
            .and_then(Value::as_float)
            .unwrap_or(0.0)
            + demand / 1000.0 * tick_hours;
        ctx.update(vmap! {
            "demand_w" => demand.round(),
            "energy_kwh" => (energy * 1e6).round() / 1e6,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimTime};

    fn sim_once(p: &mut dyn DigiProgram, m: &mut digibox_model::Model) {
        let mut rng = Prng::new(1);
        let mut atts = Atts::new();
        let mut ctx =
            SimCtx { model: m, atts: &mut atts, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_model(&mut ctx);
    }

    #[test]
    fn fan_speed_drives_airflow_and_power() {
        let mut p = Fan;
        let mut m = p.schema().instantiate("F1");
        m.set_intent(&"speed".into(), 2).unwrap();
        sim_once(&mut p, &mut m);
        assert_eq!(m.status(&"speed".into()).unwrap().as_int(), Some(2));
        assert_eq!(m.lookup(&"airflow_cfm".into()).unwrap().as_float(), Some(220.0));
        assert_eq!(m.lookup(&"power_w".into()).unwrap().as_float(), Some(35.0));
        m.set_intent(&"speed".into(), 0).unwrap();
        sim_once(&mut p, &mut m);
        assert_eq!(m.lookup(&"power_w".into()).unwrap().as_float(), Some(0.0));
    }

    #[test]
    fn plug_cuts_load_when_off() {
        let mut p = SmartPlug;
        let mut m = p.schema().instantiate("P1");
        m.set(&"load_w".into(), 1200.0).unwrap();
        m.set_intent(&"power".into(), "on").unwrap();
        sim_once(&mut p, &mut m);
        assert_eq!(m.lookup(&"measured_w".into()).unwrap().as_float(), Some(1200.0));
        m.set_intent(&"power".into(), "off").unwrap();
        sim_once(&mut p, &mut m);
        sim_once(&mut p, &mut m);
        assert_eq!(m.lookup(&"measured_w".into()).unwrap().as_float(), Some(0.0));
    }

    #[test]
    fn meter_accumulates_energy() {
        let mut p = SmartMeter;
        let mut m = p.schema().instantiate("M1");
        let mut rng = Prng::new(2);
        let mut last = 0.0;
        for _ in 0..10 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
            let e = m.lookup(&"energy_kwh".into()).unwrap().as_float().unwrap();
            assert!(e > last, "energy must be monotonically increasing");
            last = e;
        }
    }
}
