//! The 20 built-in device mocks.

mod climate;
mod lighting;
mod logistics;
mod occupancy;
mod power;
mod security;

pub use climate::{AirQuality, Co2, Humidity, Hvac, Temperature, Thermostat};
pub use lighting::{Lamp, LightLevel};
pub use logistics::{CargoCondition, GpsTracker};
pub use occupancy::{MotionCamera, Occupancy, Underdesk};
pub use power::{Fan, SmartMeter, SmartPlug};
pub use security::{DoorLock, Leak, Speaker, Window};

use digibox_core::Catalog;

/// Identity boilerplate shared by every built-in program.
macro_rules! digi_identity {
    ($kind:literal, $version:literal, $program:literal) => {
        fn kind(&self) -> &str {
            $kind
        }
        fn version(&self) -> &str {
            $version
        }
        fn program_id(&self) -> &str {
            $program
        }
    };
}
pub(crate) use digi_identity;

/// Register the 20 mocks.
pub fn register(catalog: &mut Catalog) {
    crate::must_register(catalog, || Box::new(Occupancy::default()));
    crate::must_register(catalog, || Box::new(Underdesk::default()));
    crate::must_register(catalog, || Box::new(MotionCamera::default()));
    crate::must_register(catalog, || Box::new(Lamp::default()));
    crate::must_register(catalog, || Box::new(LightLevel::default()));
    crate::must_register(catalog, || Box::new(Fan::default()));
    crate::must_register(catalog, || Box::new(Hvac::default()));
    crate::must_register(catalog, || Box::new(Thermostat::default()));
    crate::must_register(catalog, || Box::new(Temperature::default()));
    crate::must_register(catalog, || Box::new(Humidity::default()));
    crate::must_register(catalog, || Box::new(Co2::default()));
    crate::must_register(catalog, || Box::new(AirQuality::default()));
    crate::must_register(catalog, || Box::new(SmartPlug::default()));
    crate::must_register(catalog, || Box::new(SmartMeter::default()));
    crate::must_register(catalog, || Box::new(DoorLock::default()));
    crate::must_register(catalog, || Box::new(Window::default()));
    crate::must_register(catalog, || Box::new(Leak::default()));
    crate::must_register(catalog, || Box::new(Speaker::default()));
    crate::must_register(catalog, || Box::new(GpsTracker::default()));
    crate::must_register(catalog, || Box::new(CargoCondition::default()));
}
