//! Lighting mocks.

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema};

use crate::physics;

use super::digi_identity;

/// Dimmable lamp (paper, Fig. 4 bottom): `power` and `intensity` are
/// intent/status pairs; intensity collapses to 0 while the power status is
/// off.
#[derive(Default)]
pub struct Lamp;

impl DigiProgram for Lamp {
    digi_identity!("Lamp", "v1", "builtin/lamp");

    fn schema(&self) -> Schema {
        Schema::new("Lamp", "v1")
            .field("power", FieldKind::pair(FieldKind::enumeration(["off", "on"])))
            .field("intensity", FieldKind::pair(FieldKind::float_range(0.0, 1.0)))
            .doc("intensity", "dimming level; status forced to 0.0 while off")
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("power").cloned() {
            ctx.set_status("power", want);
        }
        if ctx.status_str("power").as_deref() == Some("off") {
            ctx.set_status("intensity", 0.0);
        } else if let Some(want) = ctx.intent("intensity").cloned() {
            ctx.set_status("intensity", want);
        }
    }
}

/// Ambient light sensor reporting lux. Unmanaged it follows a day/night
/// curve (`physics::light_level`) using the virtual clock as time-of-day
/// (`hours_per_day_secs` params compress a day); managed, its scene drives
/// it (e.g. a street block at night).
#[derive(Default)]
pub struct LightLevel;

impl DigiProgram for LightLevel {
    digi_identity!("LightLevel", "v1", "builtin/light-level");

    fn schema(&self) -> Schema {
        Schema::new("LightLevel", "v1")
            .field("lux", FieldKind::float_range(0.0, 200_000.0))
            .field("artificial_lux", FieldKind::float_range(0.0, 100_000.0))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        // One simulated day compressed into `day_secs` virtual seconds
        // (default: 24 virtual minutes per day).
        let day_secs = ctx.param_f64("day_secs", 1440.0);
        let hour = (ctx.now.as_secs_f64() / day_secs).fract() * 24.0;
        let artificial = ctx
            .model
            .lookup(&"artificial_lux".into())
            .and_then(|v| v.as_float())
            .unwrap_or(0.0);
        let noise = ctx.rng.range_f64(0.95, 1.05);
        let lux = (physics::light_level(hour, artificial) * noise).round();
        ctx.update(vmap! { "lux" => lux });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimDuration, SimTime};

    #[test]
    fn lamp_power_gates_intensity() {
        let mut p = Lamp;
        let mut m = p.schema().instantiate("L1");
        m.set_intent(&"power".into(), "on").unwrap();
        m.set_intent(&"intensity".into(), 0.8).unwrap();
        let mut rng = Prng::new(1);
        let mut atts = Atts::new();
        let mut ctx = SimCtx {
            model: &mut m,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        p.on_model(&mut ctx);
        p.on_model(&mut ctx); // idempotent second pass
        assert_eq!(m.status(&"power".into()).unwrap().as_str(), Some("on"));
        assert_eq!(m.status(&"intensity".into()).unwrap().as_float(), Some(0.8));

        m.set_intent(&"power".into(), "off").unwrap();
        let mut ctx = SimCtx {
            model: &mut m,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        p.on_model(&mut ctx);
        p.on_model(&mut ctx);
        assert_eq!(m.status(&"intensity".into()).unwrap().as_float(), Some(0.0));
    }

    #[test]
    fn light_level_tracks_day_cycle() {
        let mut p = LightLevel;
        let mut m = p.schema().instantiate("LL1");
        m.meta.params.insert("day_secs".into(), 240.0.into()); // 4-minute days
        let mut rng = Prng::new(2);
        // midnight (t = 0)
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_loop(&mut ctx);
        let midnight = m.lookup(&"lux".into()).unwrap().as_float().unwrap();
        // midday (t = day/2)
        let noon_t = SimTime::ZERO + SimDuration::from_secs(120);
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: noon_t, emitted: vec![] };
        p.on_loop(&mut ctx);
        let noon = m.lookup(&"lux".into()).unwrap().as_float().unwrap();
        assert_eq!(midnight, 0.0);
        assert!(noon > 5_000.0, "noon lux = {noon}");
    }
}
