//! Supply-chain mocks (paper §5: cargo/inventory condition tracking across
//! locations and administrative domains).

use digibox_core::program::{DigiProgram, LoopCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use crate::physics;

use super::digi_identity;

/// GPS tracker that advances along a route at `speed_kmh`. The route is a
/// simple parameterized line between `(lat0, lon0)` and `(lat1, lon1)`;
/// scenes (e.g. `SupplyChainRoute`) set the endpoints when legs change.
#[derive(Default)]
pub struct GpsTracker;

impl DigiProgram for GpsTracker {
    digi_identity!("GpsTracker", "v1", "builtin/gps-tracker");

    fn schema(&self) -> Schema {
        Schema::new("GpsTracker", "v1")
            .field("lat", FieldKind::float_range(-90.0, 90.0))
            .field("lon", FieldKind::float_range(-180.0, 180.0))
            .field("progress", FieldKind::float_range(0.0, 1.0))
            .field("moving", FieldKind::Bool)
            .doc("progress", "fraction of the current leg completed")
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let lat0 = model.meta.param_float("lat0").unwrap_or(37.87);
        let lon0 = model.meta.param_float("lon0").unwrap_or(-122.27);
        let _ = model.set(&"lat".into(), lat0);
        let _ = model.set(&"lon".into(), lon0);
        let _ = model.set(&"moving".into(), true);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let moving = ctx.model.lookup(&"moving".into()).and_then(Value::as_bool).unwrap_or(true);
        if !moving {
            return;
        }
        let (lat0, lon0) = (ctx.param_f64("lat0", 37.87), ctx.param_f64("lon0", -122.27));
        let (lat1, lon1) = (ctx.param_f64("lat1", 34.05), ctx.param_f64("lon1", -118.24));
        let leg_secs = ctx.param_f64("leg_secs", 600.0);
        let step = ctx.model.meta.interval_ms() as f64 / 1000.0 / leg_secs;
        let progress = (ctx
            .model
            .lookup(&"progress".into())
            .and_then(Value::as_float)
            .unwrap_or(0.0)
            + step * ctx.rng.range_f64(0.8, 1.2))
        .min(1.0);
        let lat = lat0 + (lat1 - lat0) * progress;
        let lon = lon0 + (lon1 - lon0) * progress;
        ctx.update(vmap! {
            "progress" => (progress * 1000.0).round() / 1000.0,
            "lat" => (lat * 1e5).round() / 1e5,
            "lon" => (lon * 1e5).round() / 1e5,
            "moving" => progress < 1.0,
        });
    }
}

/// In-transit cargo condition monitor: temperature pulls toward the
/// container's `ambient_c` (written by the truck scene), shocks occur while
/// moving, and an `excursion` flag latches when the cold chain is broken.
#[derive(Default)]
pub struct CargoCondition;

impl DigiProgram for CargoCondition {
    digi_identity!("CargoCondition", "v1", "builtin/cargo-condition");

    fn schema(&self) -> Schema {
        Schema::new("CargoCondition", "v1")
            .field("temp_c", FieldKind::float_range(-40.0, 60.0))
            .field("ambient_c", FieldKind::float_range(-40.0, 60.0))
            .field("shock_g", FieldKind::float_range(0.0, 50.0))
            .field("excursion", FieldKind::Bool)
            .doc("excursion", "latched true once temp_c leaves the safe band")
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let start = model.meta.param_float("start_temp_c").unwrap_or(4.0);
        let _ = model.set(&"temp_c".into(), start);
        let _ = model.set(&"ambient_c".into(), start);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let ambient =
            ctx.model.lookup(&"ambient_c".into()).and_then(Value::as_float).unwrap_or(4.0);
        let temp = ctx.model.lookup(&"temp_c".into()).and_then(Value::as_float).unwrap_or(4.0);
        let tau = ctx.param_f64("thermal_tau_s", 1800.0);
        let dt = ctx.model.meta.interval_ms() as f64 / 1000.0;
        let next = physics::approach(temp, ambient, tau, dt) + ctx.rng.range_f64(-0.05, 0.05);
        let max_safe = ctx.param_f64("max_safe_c", 8.0);
        let excursion = ctx
            .model
            .lookup(&"excursion".into())
            .and_then(Value::as_bool)
            .unwrap_or(false)
            || next > max_safe;
        let shock = if ctx.rng.chance(ctx.param_f64("shock_prob", 0.05)) {
            ctx.rng.range_f64(2.0, 12.0)
        } else {
            0.0
        };
        ctx.update(vmap! {
            "temp_c" => (next * 100.0).round() / 100.0,
            "shock_g" => (shock * 10.0).round() / 10.0,
            "excursion" => excursion,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_net::{Prng, SimTime};

    fn loop_n(p: &mut dyn DigiProgram, m: &mut digibox_model::Model, n: usize, seed: u64) {
        let mut rng = Prng::new(seed);
        for _ in 0..n {
            let mut ctx =
                LoopCtx { model: m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
        }
    }

    #[test]
    fn tracker_reaches_destination() {
        let mut p = GpsTracker;
        let mut m = p.schema().instantiate("G1");
        m.meta.params.insert("leg_secs".into(), 10.0.into()); // fast leg
        p.init(&mut m);
        loop_n(&mut p, &mut m, 30, 1);
        assert_eq!(m.lookup(&"progress".into()).unwrap().as_float(), Some(1.0));
        assert_eq!(m.lookup(&"moving".into()).unwrap().as_bool(), Some(false));
        // arrived at (lat1, lon1) defaults
        let lat = m.lookup(&"lat".into()).unwrap().as_float().unwrap();
        assert!((lat - 34.05).abs() < 0.01, "lat = {lat}");
    }

    #[test]
    fn tracker_stops_when_not_moving() {
        let mut p = GpsTracker;
        let mut m = p.schema().instantiate("G1");
        p.init(&mut m);
        m.set(&"moving".into(), false).unwrap();
        loop_n(&mut p, &mut m, 10, 2);
        assert_eq!(m.lookup(&"progress".into()).unwrap().as_float(), Some(0.0));
    }

    #[test]
    fn cargo_excursion_latches() {
        let mut p = CargoCondition;
        let mut m = p.schema().instantiate("C1");
        p.init(&mut m);
        // door open: ambient jumps to 25 °C with a fast pull
        m.set(&"ambient_c".into(), 25.0).unwrap();
        m.meta.params.insert("thermal_tau_s".into(), 5.0.into());
        loop_n(&mut p, &mut m, 50, 3);
        assert_eq!(m.lookup(&"excursion".into()).unwrap().as_bool(), Some(true));
        // cooling back down does not clear the latch
        m.set(&"ambient_c".into(), 2.0).unwrap();
        loop_n(&mut p, &mut m, 50, 4);
        assert_eq!(m.lookup(&"excursion".into()).unwrap().as_bool(), Some(true));
        let temp = m.lookup(&"temp_c".into()).unwrap().as_float().unwrap();
        assert!(temp < 8.0, "cooled back to {temp}");
    }
}
