//! Climate mocks: HVAC, thermostat, and environmental sensors.

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use crate::physics;

use super::digi_identity;

/// Heating/cooling unit. Intent: `mode` (off/heat/cool/auto) and
/// `setpoint_c`; the simulator reports the achieved mode and the heat it
/// injects (`heat_output_c_per_s`, signed), which room scenes at the
/// physical fidelity tier feed into their thermal model.
#[derive(Default)]
pub struct Hvac;

impl DigiProgram for Hvac {
    digi_identity!("Hvac", "v1", "builtin/hvac");

    fn schema(&self) -> Schema {
        Schema::new("Hvac", "v1")
            .field("mode", FieldKind::pair(FieldKind::enumeration(["off", "heat", "cool", "auto"])))
            .field("setpoint_c", FieldKind::pair(FieldKind::float_range(10.0, 35.0)))
            .field("room_temp_c", FieldKind::float_range(-20.0, 60.0))
            .field("heat_output_c_per_s", FieldKind::float_range(-1.0, 1.0))
            .doc("room_temp_c", "temperature reported by the unit's return-air sensor; scenes write this")
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"room_temp_c".into(), 21.0);
        let _ = model.set_intent(&"setpoint_c".into(), 21.0);
        let _ = model.set_status(&"setpoint_c".into(), 21.0);
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("mode").cloned() {
            ctx.set_status("mode", want);
        }
        if let Some(want) = ctx.intent("setpoint_c").cloned() {
            ctx.set_status("setpoint_c", want);
        }
        let mode = ctx.status_str("mode").unwrap_or_else(|| "off".into());
        let setpoint = ctx.status_f64("setpoint_c").unwrap_or(21.0);
        let temp = ctx.field_f64("room_temp_c").unwrap_or(21.0);
        let gain = ctx.param_f64("heat_gain_c_per_s", 0.02);
        // Thermostatic control with a 0.5 °C deadband.
        let output = match mode.as_str() {
            "heat" if temp < setpoint - 0.5 => gain,
            "cool" if temp > setpoint + 0.5 => -gain,
            "auto" if temp < setpoint - 0.5 => gain,
            "auto" if temp > setpoint + 0.5 => -gain,
            _ => 0.0,
        };
        ctx.set_field("heat_output_c_per_s", output);
    }
}

/// Wall thermostat: reports temperature (driven by a scene or random walk)
/// and exposes a target setpoint intent that building apps adjust.
#[derive(Default)]
pub struct Thermostat;

impl DigiProgram for Thermostat {
    digi_identity!("Thermostat", "v1", "builtin/thermostat");

    fn schema(&self) -> Schema {
        Schema::new("Thermostat", "v1")
            .field("temp_c", FieldKind::float_range(-20.0, 60.0))
            .field("target_c", FieldKind::pair(FieldKind::float_range(10.0, 35.0)))
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"temp_c".into(), 21.0);
        let _ = model.set_intent(&"target_c".into(), 21.0);
        let _ = model.set_status(&"target_c".into(), 21.0);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let temp = ctx.model.lookup(&"temp_c".into()).and_then(Value::as_float).unwrap_or(21.0);
        let next = temp + ctx.rng.range_f64(-0.2, 0.2);
        ctx.update(vmap! { "temp_c" => (next * 10.0).round() / 10.0 });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("target_c").cloned() {
            ctx.set_status("target_c", want);
        }
    }
}

/// Random-walk temperature sensor with configurable baseline and drift
/// (params: `baseline_c`, `walk_c`).
#[derive(Default)]
pub struct Temperature;

impl DigiProgram for Temperature {
    digi_identity!("Temperature", "v1", "builtin/temperature");

    fn schema(&self) -> Schema {
        Schema::new("Temperature", "v1").field("temp_c", FieldKind::float_range(-40.0, 85.0))
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let baseline = model.meta.param_float("baseline_c").unwrap_or(21.0);
        let _ = model.set(&"temp_c".into(), baseline);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let baseline = ctx.param_f64("baseline_c", 21.0);
        let walk = ctx.param_f64("walk_c", 0.3);
        let temp = ctx.model.lookup(&"temp_c".into()).and_then(Value::as_float).unwrap_or(baseline);
        // mean-reverting walk so unmanaged sensors stay plausible
        let pulled = physics::approach(temp, baseline, 600.0, 10.0);
        let next = pulled + ctx.rng.range_f64(-walk, walk);
        ctx.update(vmap! { "temp_c" => (next * 100.0).round() / 100.0 });
    }
}

/// Relative-humidity sensor (%RH, mean-reverting walk).
#[derive(Default)]
pub struct Humidity;

impl DigiProgram for Humidity {
    digi_identity!("Humidity", "v1", "builtin/humidity");

    fn schema(&self) -> Schema {
        Schema::new("Humidity", "v1").field("rh_pct", FieldKind::float_range(0.0, 100.0))
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"rh_pct".into(), model.meta.param_float("baseline_pct").unwrap_or(45.0));
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let baseline = ctx.param_f64("baseline_pct", 45.0);
        let rh = ctx.model.lookup(&"rh_pct".into()).and_then(Value::as_float).unwrap_or(baseline);
        let next = (physics::approach(rh, baseline, 900.0, 10.0) + ctx.rng.range_f64(-1.0, 1.0))
            .clamp(0.0, 100.0);
        ctx.update(vmap! { "rh_pct" => (next * 10.0).round() / 10.0 });
    }
}

/// CO₂ concentration sensor (ppm). Scenes write `occupant_equiv` (how many
/// people's worth of CO₂ sources are present); the sensor mixes toward the
/// implied equilibrium.
#[derive(Default)]
pub struct Co2;

impl DigiProgram for Co2 {
    digi_identity!("Co2", "v1", "builtin/co2");

    fn schema(&self) -> Schema {
        Schema::new("Co2", "v1")
            .field("ppm", FieldKind::float_range(300.0, 10_000.0))
            .field("occupant_equiv", FieldKind::float_range(0.0, 1000.0))
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"ppm".into(), 420.0);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let occupants = ctx
            .model
            .lookup(&"occupant_equiv".into())
            .and_then(Value::as_float)
            .unwrap_or(0.0);
        let equilibrium = 420.0 + occupants * ctx.param_f64("ppm_per_person", 350.0);
        let ppm = ctx.model.lookup(&"ppm".into()).and_then(Value::as_float).unwrap_or(420.0);
        let mixed = physics::approach(ppm, equilibrium, ctx.param_f64("mix_tau_s", 300.0), 10.0);
        let next = (mixed + ctx.rng.range_f64(-5.0, 5.0)).clamp(300.0, 10_000.0);
        ctx.update(vmap! { "ppm" => next.round() });
    }
}

/// PM2.5 air-quality sensor with occasional pollution spikes.
#[derive(Default)]
pub struct AirQuality;

impl DigiProgram for AirQuality {
    digi_identity!("AirQuality", "v1", "builtin/air-quality");

    fn schema(&self) -> Schema {
        Schema::new("AirQuality", "v1")
            .field("pm25_ugm3", FieldKind::float_range(0.0, 1000.0))
            .field("spike", FieldKind::Bool)
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"pm25_ugm3".into(), 8.0);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let baseline = ctx.param_f64("baseline_ugm3", 8.0);
        let spike = ctx.rng.chance(ctx.param_f64("spike_prob", 0.02));
        let current =
            ctx.model.lookup(&"pm25_ugm3".into()).and_then(Value::as_float).unwrap_or(baseline);
        let next = if spike {
            current + ctx.rng.range_f64(30.0, 120.0)
        } else {
            physics::approach(current, baseline, 200.0, 10.0) + ctx.rng.range_f64(-0.5, 0.5)
        };
        ctx.update(vmap! {
            "pm25_ugm3" => (next.max(0.0) * 10.0).round() / 10.0,
            "spike" => spike,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimTime};

    fn sim_once(p: &mut dyn DigiProgram, m: &mut digibox_model::Model) {
        let mut rng = Prng::new(1);
        let mut atts = Atts::new();
        let mut ctx =
            SimCtx { model: m, atts: &mut atts, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_model(&mut ctx);
    }

    fn loop_n(p: &mut dyn DigiProgram, m: &mut digibox_model::Model, n: usize, seed: u64) {
        let mut rng = Prng::new(seed);
        for _ in 0..n {
            let mut ctx =
                LoopCtx { model: m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
        }
    }

    #[test]
    fn hvac_heats_when_below_setpoint() {
        let mut p = Hvac;
        let mut m = p.schema().instantiate("H1");
        p.init(&mut m);
        m.set_intent(&"mode".into(), "heat").unwrap();
        m.set_intent(&"setpoint_c".into(), 24.0).unwrap();
        m.set(&"room_temp_c".into(), 18.0).unwrap();
        sim_once(&mut p, &mut m);
        let out = m.lookup(&"heat_output_c_per_s".into()).unwrap().as_float().unwrap();
        assert!(out > 0.0, "heating output expected, got {out}");
        // at setpoint: deadband → zero output
        m.set(&"room_temp_c".into(), 24.0).unwrap();
        sim_once(&mut p, &mut m);
        assert_eq!(m.lookup(&"heat_output_c_per_s".into()).unwrap().as_float(), Some(0.0));
    }

    #[test]
    fn hvac_auto_cools_when_hot() {
        let mut p = Hvac;
        let mut m = p.schema().instantiate("H1");
        p.init(&mut m);
        m.set_intent(&"mode".into(), "auto").unwrap();
        m.set(&"room_temp_c".into(), 30.0).unwrap();
        sim_once(&mut p, &mut m);
        let out = m.lookup(&"heat_output_c_per_s".into()).unwrap().as_float().unwrap();
        assert!(out < 0.0, "cooling output expected, got {out}");
    }

    #[test]
    fn temperature_stays_near_baseline() {
        let mut p = Temperature;
        let mut m = p.schema().instantiate("T1");
        m.meta.params.insert("baseline_c".into(), 5.0.into());
        p.init(&mut m);
        loop_n(&mut p, &mut m, 500, 2);
        let t = m.lookup(&"temp_c".into()).unwrap().as_float().unwrap();
        assert!((t - 5.0).abs() < 5.0, "drifted to {t}");
    }

    #[test]
    fn co2_rises_with_occupants() {
        let mut p = Co2;
        let mut m = p.schema().instantiate("C1");
        p.init(&mut m);
        m.set(&"occupant_equiv".into(), 4.0).unwrap();
        loop_n(&mut p, &mut m, 200, 3);
        let ppm = m.lookup(&"ppm".into()).unwrap().as_float().unwrap();
        assert!(ppm > 1200.0, "occupied room ppm = {ppm}");
        // emptying the room pulls it back down
        m.set(&"occupant_equiv".into(), 0.0).unwrap();
        loop_n(&mut p, &mut m, 300, 4);
        let ppm = m.lookup(&"ppm".into()).unwrap().as_float().unwrap();
        assert!(ppm < 600.0, "vacated room ppm = {ppm}");
    }

    #[test]
    fn air_quality_spikes_decay() {
        let mut p = AirQuality;
        let mut m = p.schema().instantiate("A1");
        p.init(&mut m);
        m.meta.params.insert("spike_prob".into(), 1.0.into());
        loop_n(&mut p, &mut m, 3, 5);
        let high = m.lookup(&"pm25_ugm3".into()).unwrap().as_float().unwrap();
        assert!(high > 30.0);
        m.meta.params.insert("spike_prob".into(), 0.0.into());
        loop_n(&mut p, &mut m, 300, 6);
        let low = m.lookup(&"pm25_ugm3".into()).unwrap().as_float().unwrap();
        assert!(low < 15.0, "spike did not decay: {low}");
    }

    #[test]
    fn thermostat_target_follows_intent() {
        let mut p = Thermostat;
        let mut m = p.schema().instantiate("TS1");
        p.init(&mut m);
        m.set_intent(&"target_c".into(), 25.5).unwrap();
        sim_once(&mut p, &mut m);
        assert_eq!(m.status(&"target_c".into()).unwrap().as_float(), Some(25.5));
    }
}
