//! Presence-sensing mocks: the paper's walkthrough devices.

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema};

use super::digi_identity;

/// Ceiling PIR occupancy sensor (paper, Fig. 4 top).
///
/// Unmanaged, it flips `triggered` at random each tick (the paper's
/// `random.choice([True, False])`); managed, its room scene drives it.
/// Params: `trigger_prob` (default 0.5).
#[derive(Default)]
pub struct Occupancy;

impl DigiProgram for Occupancy {
    digi_identity!("Occupancy", "v1", "builtin/occupancy");

    fn schema(&self) -> Schema {
        Schema::new("Occupancy", "v1")
            .field("triggered", FieldKind::Bool)
            .doc("triggered", "motion detected in the sensor's zone")
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let p = ctx.param_f64("trigger_prob", 0.5);
        let motion = ctx.rng.chance(p);
        ctx.update(vmap! { "triggered" => motion });
    }
}

/// Under-desk occupancy sensor (the paper's second sensor type, whose
/// readings a room scene must keep consistent with the ceiling sensor:
/// a desk can only be occupied when the room is).
#[derive(Default)]
pub struct Underdesk;

impl DigiProgram for Underdesk {
    digi_identity!("Underdesk", "v1", "builtin/underdesk");

    fn schema(&self) -> Schema {
        Schema::new("Underdesk", "v1")
            .field("triggered", FieldKind::Bool)
            .field("desk_id", FieldKind::int())
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        // Desks are empty more often than rooms.
        let p = ctx.param_f64("trigger_prob", 0.3);
        let motion = ctx.rng.chance(p);
        ctx.update(vmap! { "triggered" => motion });
    }
}

/// A motion camera: emits motion detections with a confidence score and
/// keeps a rolling detection count (a richer signal than a PIR, used by
/// security-style apps).
#[derive(Default)]
pub struct MotionCamera;

impl DigiProgram for MotionCamera {
    digi_identity!("MotionCamera", "v1", "builtin/motion-camera");

    fn schema(&self) -> Schema {
        Schema::new("MotionCamera", "v1")
            .field("motion", FieldKind::Bool)
            .field("confidence", FieldKind::float_range(0.0, 1.0))
            .field("detections_total", FieldKind::int())
            .field("recording", FieldKind::pair(FieldKind::Bool))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let p = ctx.param_f64("motion_prob", 0.2);
        let motion = ctx.rng.chance(p);
        let confidence = if motion { ctx.rng.range_f64(0.5, 1.0) } else { ctx.rng.range_f64(0.0, 0.3) };
        let total = ctx.model.lookup(&"detections_total".into()).and_then(|v| v.as_int()).unwrap_or(0);
        ctx.update(vmap! {
            "motion" => motion,
            "confidence" => (confidence * 100.0).round() / 100.0,
            "detections_total" => total + i64::from(motion),
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        // recording follows intent (an actuatable camera)
        if let Some(want) = ctx.intent("recording").cloned() {
            ctx.set_status("recording", want);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimTime};

    fn loop_once(program: &mut dyn DigiProgram, model: &mut digibox_model::Model, seed: u64) {
        let mut rng = Prng::new(seed);
        let mut ctx = LoopCtx { model, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        program.on_loop(&mut ctx);
    }

    #[test]
    fn occupancy_sets_triggered() {
        let mut p = Occupancy;
        let mut m = p.schema().instantiate("O1");
        loop_once(&mut p, &mut m, 1);
        assert!(m.lookup(&"triggered".into()).unwrap().as_bool().is_some());
    }

    #[test]
    fn occupancy_trigger_prob_respected() {
        let mut p = Occupancy;
        let mut m = p.schema().instantiate("O1");
        m.meta.params.insert("trigger_prob".into(), 1.0.into());
        for seed in 0..20 {
            loop_once(&mut p, &mut m, seed);
            assert_eq!(m.lookup(&"triggered".into()).unwrap().as_bool(), Some(true));
        }
    }

    #[test]
    fn camera_counts_detections_monotonically() {
        let mut p = MotionCamera;
        let mut m = p.schema().instantiate("C1");
        m.meta.params.insert("motion_prob".into(), 1.0.into());
        let mut rng = Prng::new(3);
        for i in 1..=5i64 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
            assert_eq!(m.lookup(&"detections_total".into()).unwrap().as_int(), Some(i));
        }
    }

    #[test]
    fn camera_recording_follows_intent() {
        let mut p = MotionCamera;
        let mut m = p.schema().instantiate("C1");
        m.set_intent(&"recording".into(), true).unwrap();
        let mut rng = Prng::new(1);
        let mut atts = Atts::new();
        let mut ctx = SimCtx {
            model: &mut m,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        p.on_model(&mut ctx);
        assert_eq!(m.status(&"recording".into()).unwrap().as_bool(), Some(true));
    }
}
