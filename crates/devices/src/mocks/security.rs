//! Safety and security mocks, plus the speaker.

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use super::digi_identity;

/// Electronic door lock. Locking can fail (param `fail_prob`), modelling
/// the flaky actuators that reliability papers like SafeHome test against.
#[derive(Default)]
pub struct DoorLock;

impl DigiProgram for DoorLock {
    digi_identity!("DoorLock", "v1", "builtin/door-lock");

    fn schema(&self) -> Schema {
        Schema::new("DoorLock", "v1")
            .field("locked", FieldKind::pair(FieldKind::Bool))
            .field("last_actuation", FieldKind::enumeration(["none", "ok", "failed"]))
            .field("battery_pct", FieldKind::float_range(0.0, 100.0))
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"battery_pct".into(), 100.0);
        let _ = model.set(&"last_actuation".into(), "none");
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        // battery drains slowly
        let batt =
            ctx.model.lookup(&"battery_pct".into()).and_then(Value::as_float).unwrap_or(100.0);
        let drain = ctx.param_f64("battery_drain_pct", 0.01);
        ctx.update(vmap! { "battery_pct" => ((batt - drain).max(0.0) * 100.0).round() / 100.0 });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let want = ctx.intent("locked").and_then(Value::as_bool);
        let have = ctx.status_bool("locked");
        if let Some(want) = want {
            if Some(want) != have {
                let fail = ctx.rng.chance(ctx.param_f64("fail_prob", 0.0));
                if fail {
                    ctx.set_field("last_actuation", "failed");
                } else {
                    ctx.set_status("locked", want);
                    ctx.set_field("last_actuation", "ok");
                }
            }
        }
    }
}

/// Window contact sensor + actuator (motorized windows exist; manual ones
/// are driven by scene events writing `open.status`).
#[derive(Default)]
pub struct Window;

impl DigiProgram for Window {
    digi_identity!("Window", "v1", "builtin/window");

    fn schema(&self) -> Schema {
        Schema::new("Window", "v1")
            .field("open", FieldKind::pair(FieldKind::Bool))
            .field("tamper", FieldKind::Bool)
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let tamper = ctx.rng.chance(ctx.param_f64("tamper_prob", 0.001));
        if tamper {
            ctx.update(vmap! { "tamper" => true });
        }
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("open").cloned() {
            ctx.set_status("open", want);
        }
    }
}

/// Water-leak sensor: rare leak events that latch until reset via intent.
#[derive(Default)]
pub struct Leak;

impl DigiProgram for Leak {
    digi_identity!("Leak", "v1", "builtin/leak");

    fn schema(&self) -> Schema {
        Schema::new("Leak", "v1")
            .field("wet", FieldKind::Bool)
            .field("reset", FieldKind::pair(FieldKind::Bool))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let already_wet =
            ctx.model.lookup(&"wet".into()).and_then(Value::as_bool).unwrap_or(false);
        if !already_wet && ctx.rng.chance(ctx.param_f64("leak_prob", 0.005)) {
            ctx.update(vmap! { "wet" => true });
        }
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        // app writes reset intent to clear a latched alarm
        if ctx.intent("reset").and_then(Value::as_bool) == Some(true) {
            ctx.set_field("wet", false);
            ctx.set_status("reset", true);
        }
    }
}

/// Networked speaker: volume and playback state follow intent; reports
/// what it is "playing".
#[derive(Default)]
pub struct Speaker;

impl DigiProgram for Speaker {
    digi_identity!("Speaker", "v1", "builtin/speaker");

    fn schema(&self) -> Schema {
        Schema::new("Speaker", "v1")
            .field("volume", FieldKind::pair(FieldKind::int_range(0, 100)))
            .field("playing", FieldKind::pair(FieldKind::Bool))
            .field("track", FieldKind::pair(FieldKind::Str))
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        for field in ["volume", "playing", "track"] {
            if let Some(want) = ctx.intent(field).cloned() {
                ctx.set_status(field, want);
            }
        }
        // a speaker at volume 0 is effectively paused
        if ctx.status("volume").and_then(Value::as_int) == Some(0) {
            ctx.set_status("playing", false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimTime};

    fn sim_once_seeded(p: &mut dyn DigiProgram, m: &mut digibox_model::Model, seed: u64) {
        let mut rng = Prng::new(seed);
        let mut atts = Atts::new();
        let mut ctx =
            SimCtx { model: m, atts: &mut atts, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_model(&mut ctx);
    }

    #[test]
    fn lock_actuates_and_reports() {
        let mut p = DoorLock;
        let mut m = p.schema().instantiate("D1");
        p.init(&mut m);
        m.set_intent(&"locked".into(), true).unwrap();
        sim_once_seeded(&mut p, &mut m, 1);
        assert_eq!(m.status(&"locked".into()).unwrap().as_bool(), Some(true));
        assert_eq!(m.lookup(&"last_actuation".into()).unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn lock_failure_injection() {
        let mut p = DoorLock;
        let mut m = p.schema().instantiate("D1");
        p.init(&mut m);
        m.meta.params.insert("fail_prob".into(), 1.0.into());
        m.set_intent(&"locked".into(), true).unwrap();
        sim_once_seeded(&mut p, &mut m, 2);
        assert_eq!(m.status(&"locked".into()).unwrap().as_bool(), Some(false), "actuation failed");
        assert_eq!(m.lookup(&"last_actuation".into()).unwrap().as_str(), Some("failed"));
    }

    #[test]
    fn lock_battery_drains() {
        let mut p = DoorLock;
        let mut m = p.schema().instantiate("D1");
        p.init(&mut m);
        let mut rng = Prng::new(3);
        for _ in 0..10 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
        }
        let batt = m.lookup(&"battery_pct".into()).unwrap().as_float().unwrap();
        assert!(batt < 100.0 && batt > 99.0);
    }

    #[test]
    fn leak_latches_until_reset() {
        let mut p = Leak;
        let mut m = p.schema().instantiate("W1");
        m.meta.params.insert("leak_prob".into(), 1.0.into());
        let mut rng = Prng::new(4);
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_loop(&mut ctx);
        assert_eq!(m.lookup(&"wet".into()).unwrap().as_bool(), Some(true));
        // reset via intent
        m.set_intent(&"reset".into(), true).unwrap();
        sim_once_seeded(&mut p, &mut m, 5);
        assert_eq!(m.lookup(&"wet".into()).unwrap().as_bool(), Some(false));
    }

    #[test]
    fn speaker_volume_zero_pauses() {
        let mut p = Speaker;
        let mut m = p.schema().instantiate("S1");
        m.set_intent(&"playing".into(), true).unwrap();
        m.set_intent(&"volume".into(), 40).unwrap();
        m.set_intent(&"track".into(), "rain sounds").unwrap();
        sim_once_seeded(&mut p, &mut m, 6);
        assert_eq!(m.status(&"playing".into()).unwrap().as_bool(), Some(true));
        assert_eq!(m.status(&"track".into()).unwrap().as_str(), Some("rain sounds"));
        m.set_intent(&"volume".into(), 0).unwrap();
        sim_once_seeded(&mut p, &mut m, 7);
        assert_eq!(m.status(&"playing".into()).unwrap().as_bool(), Some(false));
    }

    #[test]
    fn window_follows_intent() {
        let mut p = Window;
        let mut m = p.schema().instantiate("W1");
        m.set_intent(&"open".into(), true).unwrap();
        sim_once_seeded(&mut p, &mut m, 8);
        assert_eq!(m.status(&"open".into()).unwrap().as_bool(), Some(true));
    }
}
