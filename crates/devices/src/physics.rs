//! Small physical models used at the `Physical` fidelity tier
//! (paper Fig. 7, third level: "simulate physical world"; §6 lists this as
//! the extension direction).
//!
//! These are deliberately first-order — lumped-parameter RC thermal
//! dynamics and exponential mixing — enough for an application to observe
//! *physically plausible* trajectories (a heater warms a room gradually, a
//! truck door spike decays) without a physics engine.

/// One step of a lumped RC thermal model.
///
/// `temp` pulls toward `ambient` with time constant `tau_s`, plus a direct
/// heat input `heat_c_per_s` (°C/s, signed: negative = cooling).
/// `dt_s` is the step in seconds. Uses the exact exponential decay so big
/// steps stay stable.
pub fn thermal_step(temp: f64, ambient: f64, heat_c_per_s: f64, tau_s: f64, dt_s: f64) -> f64 {
    let decay = (-dt_s / tau_s.max(1e-9)).exp();
    let relaxed = ambient + (temp - ambient) * decay;
    relaxed + heat_c_per_s * dt_s
}

/// Exponential approach of `value` toward `target` with time constant
/// `tau_s` over `dt_s` seconds (CO₂ mixing, humidity, queue decay).
pub fn approach(value: f64, target: f64, tau_s: f64, dt_s: f64) -> f64 {
    let decay = (-dt_s / tau_s.max(1e-9)).exp();
    target + (value - target) * decay
}

/// Light superposition: ambient daylight (by hour-of-day, 0–24) plus the
/// contribution of artificial sources, in lux.
pub fn light_level(hour_of_day: f64, artificial_lux: f64) -> f64 {
    // Daylight: a half-sine between 6:00 and 20:00 peaking ~10000 lux
    // (overcast-window scale, not direct sun).
    let h = hour_of_day.rem_euclid(24.0);
    let daylight = if (6.0..20.0).contains(&h) {
        let phase = (h - 6.0) / 14.0 * std::f64::consts::PI;
        10_000.0 * phase.sin().max(0.0)
    } else {
        0.0
    };
    daylight + artificial_lux
}

/// Simple M/M/1-ish queue step: arrivals and departures over `dt_s`
/// seconds, returning the new queue length (≥ 0).
pub fn queue_step(len: f64, arrival_rate_per_s: f64, service_rate_per_s: f64, dt_s: f64) -> f64 {
    (len + (arrival_rate_per_s - service_rate_per_s) * dt_s).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_relaxes_to_ambient() {
        let mut t = 30.0;
        for _ in 0..1000 {
            t = thermal_step(t, 20.0, 0.0, 600.0, 10.0);
        }
        assert!((t - 20.0).abs() < 0.05, "t = {t}");
    }

    #[test]
    fn thermal_heating_raises_temperature() {
        let t0 = 20.0;
        let t1 = thermal_step(t0, 20.0, 0.01, 600.0, 10.0);
        assert!(t1 > t0);
        // cooling lowers
        let t2 = thermal_step(t0, 20.0, -0.01, 600.0, 10.0);
        assert!(t2 < t0);
    }

    #[test]
    fn thermal_is_stable_for_large_steps() {
        // explicit-Euler would oscillate; the exponential form must not
        let t = thermal_step(40.0, 20.0, 0.0, 10.0, 1000.0);
        assert!((t - 20.0).abs() < 1e-6);
    }

    #[test]
    fn approach_moves_monotonically() {
        let mut v: f64 = 400.0;
        let mut prev = v;
        for _ in 0..50 {
            v = approach(v, 1200.0, 300.0, 10.0);
            assert!(v >= prev, "must rise toward target");
            assert!(v <= 1200.0);
            prev = v;
        }
    }

    #[test]
    fn light_day_night_cycle() {
        assert_eq!(light_level(0.0, 0.0), 0.0);
        assert_eq!(light_level(23.0, 0.0), 0.0);
        assert!(light_level(13.0, 0.0) > 9000.0, "midday peak");
        assert!(light_level(7.0, 0.0) > 0.0);
        // artificial light adds on top
        assert_eq!(light_level(0.0, 350.0), 350.0);
        // wraps around
        assert_eq!(light_level(24.0, 0.0), light_level(0.0, 0.0));
    }

    #[test]
    fn queue_never_negative() {
        let len = queue_step(1.0, 0.0, 10.0, 60.0);
        assert_eq!(len, 0.0);
        let len = queue_step(0.0, 2.0, 1.0, 10.0);
        assert_eq!(len, 10.0);
    }
}
