//! Urban-sensing scenes (paper §5: phones and mobile devices aggregating
//! environmental data across a city).

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use super::digi_identity;

/// One urban street block: pedestrian density over the day drives noise,
/// air quality and ambient light for the sensors attached to it (typically
/// mobile — the urban-sensing workflow re-attaches phone mocks between
/// blocks as they "move").
#[derive(Default)]
pub struct StreetBlock;

impl DigiProgram for StreetBlock {
    digi_identity!("StreetBlock", "v1", "builtin/street-block");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("StreetBlock", "v1")
            .field("pedestrians", FieldKind::int_range(0, 100_000))
            .field("noise_db", FieldKind::float_range(20.0, 120.0))
            .field("streetlights_on", FieldKind::Bool)
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let day_secs = ctx.param_f64("day_secs", 1440.0);
        let hour = (ctx.now.as_secs_f64() / day_secs).fract() * 24.0;
        let base = ctx.param_i64("peak_pedestrians", 120) as f64;
        // two rush peaks
        let morning = (-((hour - 8.5f64).powi(2)) / 2.0).exp();
        let evening = (-((hour - 17.5f64).powi(2)) / 3.0).exp();
        let level = (0.05 + morning + evening).min(1.2);
        let pedestrians = (base * level * ctx.rng.range_f64(0.8, 1.2)).round() as i64;
        let noise = 35.0 + 25.0 * (pedestrians as f64 / base).min(1.5) + ctx.rng.range_f64(-2.0, 2.0);
        let dark = !(6.5..19.5).contains(&hour);
        ctx.update(vmap! {
            "pedestrians" => pedestrians,
            "noise_db" => (noise * 10.0).round() / 10.0,
            "streetlights_on" => dark,
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let pedestrians = ctx.field_i64("pedestrians").unwrap_or(0);
        let lights = ctx.field_bool("streetlights_on").unwrap_or(false);
        for cam in ctx.atts.of_type("MotionCamera").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&cam, "motion", pedestrians > 5);
        }
        for ll in ctx.atts.of_type("LightLevel").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&ll, "artificial_lux", if lights { 40.0 } else { 0.0 });
        }
        // traffic-correlated pollution
        for aq in ctx.atts.of_type("AirQuality").into_iter().map(str::to_string).collect::<Vec<_>>() {
            let extra = pedestrians as f64 * 0.05;
            ctx.atts.set(&aq, "pm25_ugm3", 8.0 + extra);
        }
    }
}

/// Parking lot: stall occupancy under arrival/departure flow; occupancy
/// mocks attached to it play individual stalls.
#[derive(Default)]
pub struct ParkingLot;

impl DigiProgram for ParkingLot {
    digi_identity!("ParkingLot", "v1", "builtin/parking-lot");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("ParkingLot", "v1")
            .field("cars", FieldKind::int_range(0, 100_000))
            .field("capacity", FieldKind::int_range(1, 100_000))
            .field("full", FieldKind::Bool)
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let cap = model.meta.param_int("capacity").unwrap_or(20);
        let _ = model.set(&"capacity".into(), cap);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let cap = ctx.model.lookup(&"capacity".into()).and_then(Value::as_int).unwrap_or(20);
        let cars = ctx.model.lookup(&"cars".into()).and_then(Value::as_int).unwrap_or(0);
        let arrivals = ctx.rng.range_i64(0, 4);
        let departures = if cars > 0 { ctx.rng.range_i64(0, (cars / 4).max(1) + 1) } else { 0 };
        let next = (cars + arrivals - departures).clamp(0, cap);
        ctx.update(vmap! { "cars" => next, "full" => next == cap });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let cars = ctx.field_i64("cars").unwrap_or(0) as usize;
        // stalls fill in a fixed order (front stalls first — realistic
        // enough and deterministic)
        let stalls: Vec<String> =
            ctx.atts.of_type("Occupancy").into_iter().map(str::to_string).collect();
        for (i, stall) in stalls.iter().enumerate() {
            ctx.atts.set(stall, "triggered", i < cars);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimDuration, SimTime};

    #[test]
    fn street_block_rush_hour_vs_night() {
        let mut p = StreetBlock;
        let mut m = p.schema().instantiate("SB1");
        m.meta.params.insert("day_secs".into(), 240.0.into());
        let mut rng = Prng::new(1);
        // 8:30 ≈ 85 s on the compressed clock
        let rush = SimTime::ZERO + SimDuration::from_millis(85_000);
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: rush, emitted: vec![] };
        p.on_loop(&mut ctx);
        let rush_peds = m.lookup(&"pedestrians".into()).unwrap().as_int().unwrap();
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_loop(&mut ctx);
        let night_peds = m.lookup(&"pedestrians".into()).unwrap().as_int().unwrap();
        assert!(rush_peds > night_peds * 3, "rush {rush_peds} vs night {night_peds}");
        assert_eq!(m.lookup(&"streetlights_on".into()).unwrap().as_bool(), Some(true));
    }

    #[test]
    fn street_block_drives_attached_sensors() {
        let mut p = StreetBlock;
        let mut m = p.schema().instantiate("SB1");
        m.set(&"pedestrians".into(), 100).unwrap();
        m.set(&"streetlights_on".into(), true).unwrap();
        let mut atts = Atts::new();
        atts.attach("LL1", "LightLevel");
        atts.observe("LL1", "LightLevel", vmap! { "artificial_lux" => 0.0 });
        atts.attach("AQ1", "AirQuality");
        atts.observe("AQ1", "AirQuality", vmap! { "pm25_ugm3" => 8.0 });
        let mut rng = Prng::new(2);
        let mut ctx = SimCtx {
            model: &mut m,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        p.on_model(&mut ctx);
        assert_eq!(atts.get("LL1", "artificial_lux").and_then(Value::as_float), Some(40.0));
        assert_eq!(atts.get("AQ1", "pm25_ugm3").and_then(Value::as_float), Some(13.0));
    }

    #[test]
    fn parking_lot_never_exceeds_capacity() {
        let mut p = ParkingLot;
        let mut m = p.schema().instantiate("PL1");
        m.meta.params.insert("capacity".into(), 5.into());
        p.init(&mut m);
        let mut rng = Prng::new(3);
        for _ in 0..200 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
            let cars = m.lookup(&"cars".into()).unwrap().as_int().unwrap();
            assert!((0..=5).contains(&cars));
        }
    }

    #[test]
    fn parking_stalls_match_car_count() {
        let mut p = ParkingLot;
        let mut m = p.schema().instantiate("PL1");
        p.init(&mut m);
        m.set(&"cars".into(), 2).unwrap();
        let mut atts = Atts::new();
        for s in ["S1", "S2", "S3"] {
            atts.attach(s, "Occupancy");
            atts.observe(s, "Occupancy", vmap! { "triggered" => false });
        }
        let mut rng = Prng::new(4);
        let mut ctx = SimCtx {
            model: &mut m,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        p.on_model(&mut ctx);
        let occupied = ["S1", "S2", "S3"]
            .iter()
            .filter(|s| atts.get(s, "triggered") == Some(&Value::Bool(true)))
            .count();
        assert_eq!(occupied, 2);
    }
}
