//! Building-scale scenes (the paper's Fig. 5 bottom / Fig. 6 hierarchy).

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema};

use super::digi_identity;

/// Multi-room building: generates the number of humans present and assigns
/// them to attached room scenes (which should run `managed`).
#[derive(Default)]
pub struct Building;

impl DigiProgram for Building {
    digi_identity!("Building", "v3", "builtin/building");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Building", "v3").field("num_human", FieldKind::int_range(0, 100_000))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let max = ctx.param_i64("max_human", 2);
        let num_human = ctx.rng.range_i64(0, max + 1);
        ctx.update(vmap! { "num_human" => num_human });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let rooms = room_like(ctx);
        if rooms.is_empty() {
            return;
        }
        let names: Vec<String> = rooms.iter().map(|(n, _)| n.clone()).collect();
        let num = ctx.field_i64("num_human").unwrap_or(0) as usize;
        // paper Fig. 5: random.choices(names, k=num_human) — sampling with
        // replacement, then presence per room. The draw must be a pure
        // function of the model state (not a fresh draw per handler run),
        // or the scene↔mock coordination loop never converges.
        let mut det = super::det_rng(ctx.model, num as u64);
        let mut picked = std::collections::BTreeSet::new();
        for _ in 0..num {
            if let Some(r) = det.choice(&names) {
                picked.insert(r.clone());
            }
        }
        for (room, kind) in rooms {
            let presence = picked.contains(&room);
            // divide headcount roughly evenly among occupied rooms
            let share = if presence {
                (num as i64 / picked.len().max(1) as i64).max(1)
            } else {
                0
            };
            // each room-like kind models occupancy with its own vocabulary;
            // write only fields the child's schema declares
            match kind {
                "Room" => {
                    ctx.atts.set(&room, "human_presence", presence);
                    ctx.atts.set(&room, "num_occupants", share);
                }
                "Kitchen" => ctx.atts.set(&room, "human_presence", presence),
                "OpenOffice" => ctx.atts.set(&room, "population", share),
                "Classroom" => {
                    ctx.atts.set(&room, "in_session", presence);
                    ctx.atts.set(&room, "students", share);
                }
                "Lobby" => ctx.atts.set(&room, "busy", presence),
                _ => {}
            }
        }
    }
}

/// Campus: shifts a population among attached buildings over a day cycle
/// (lecture halls by day, dorms by night).
#[derive(Default)]
pub struct Campus;

impl DigiProgram for Campus {
    digi_identity!("Campus", "v1", "builtin/campus");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Campus", "v1")
            .field("population", FieldKind::int_range(0, 1_000_000))
            .field("daytime", FieldKind::Bool)
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let day_secs = ctx.param_f64("day_secs", 1440.0);
        let hour = (ctx.now.as_secs_f64() / day_secs).fract() * 24.0;
        let daytime = (8.0..18.0).contains(&hour);
        let base = ctx.param_i64("population", 200);
        let jitter = (base as f64 * ctx.rng.range_f64(-0.1, 0.1)) as i64;
        ctx.update(vmap! { "population" => (base + jitter).max(0), "daytime" => daytime });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let buildings: Vec<String> =
            ctx.atts.of_type("Building").into_iter().map(str::to_string).collect();
        if buildings.is_empty() {
            return;
        }
        let population = ctx.field_i64("population").unwrap_or(0);
        let daytime = ctx.field_bool("daytime").unwrap_or(true);
        // day: population spreads over all buildings; night: concentrated
        // in the first (the "dorm")
        for (i, b) in buildings.iter().enumerate() {
            let share = if daytime {
                population / buildings.len() as i64
            } else if i == 0 {
                population * 4 / 5
            } else {
                population / (5 * buildings.len().max(1) as i64)
            };
            ctx.atts.set(b, "num_human", share.max(0));
        }
    }
}

fn room_like(ctx: &mut SimCtx) -> Vec<(String, &'static str)> {
    let mut out = Vec::new();
    for kind in ["Room", "Kitchen", "OpenOffice", "Classroom", "Lobby"] {
        out.extend(ctx.atts.of_type(kind).into_iter().map(|n| (n.to_string(), kind)));
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_model::Value;
    use digibox_net::{Prng, SimTime};

    fn sim(p: &mut dyn DigiProgram, m: &mut digibox_model::Model, atts: &mut Atts, seed: u64) {
        let mut rng = Prng::new(seed);
        let mut ctx = SimCtx { model: m, atts, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_model(&mut ctx);
    }

    fn rooms_atts(names: &[&str]) -> Atts {
        let mut atts = Atts::new();
        for n in names {
            atts.attach(n, "Room");
            atts.observe(n, "Room", vmap! { "human_presence" => false, "num_occupants" => 0 });
        }
        atts
    }

    #[test]
    fn building_assigns_presence_to_some_room() {
        let mut p = Building;
        let mut m = p.schema().instantiate("B1");
        m.set(&"num_human".into(), 2).unwrap();
        let mut atts = rooms_atts(&["MeetingRoom", "Kitchen2"]);
        sim(&mut p, &mut m, &mut atts, 1);
        let present = ["MeetingRoom", "Kitchen2"]
            .iter()
            .filter(|r| atts.get(r, "human_presence") == Some(&Value::Bool(true)))
            .count();
        assert!(present >= 1, "2 humans must occupy at least one room");
    }

    #[test]
    fn building_with_zero_humans_clears_rooms() {
        let mut p = Building;
        let mut m = p.schema().instantiate("B1");
        m.set(&"num_human".into(), 0).unwrap();
        let mut atts = Atts::new();
        atts.attach("R1", "Room");
        atts.observe("R1", "Room", vmap! { "human_presence" => true, "num_occupants" => 3 });
        sim(&mut p, &mut m, &mut atts, 2);
        assert_eq!(atts.get("R1", "human_presence"), Some(&Value::Bool(false)));
        assert_eq!(atts.get("R1", "num_occupants"), Some(&Value::Int(0)));
    }

    #[test]
    fn building_without_rooms_is_noop() {
        let mut p = Building;
        let mut m = p.schema().instantiate("B1");
        m.set(&"num_human".into(), 5).unwrap();
        let mut atts = Atts::new();
        sim(&mut p, &mut m, &mut atts, 3);
        assert!(atts.take_patches().is_empty());
    }

    #[test]
    fn campus_splits_population_between_buildings() {
        let mut p = Campus;
        let mut m = p.schema().instantiate("C1");
        m.set(&"population".into(), 100).unwrap();
        m.set(&"daytime".into(), true).unwrap();
        let mut atts = Atts::new();
        for b in ["B1", "B2"] {
            atts.attach(b, "Building");
            atts.observe(b, "Building", vmap! { "num_human" => 0 });
        }
        sim(&mut p, &mut m, &mut atts, 4);
        assert_eq!(atts.get("B1", "num_human"), Some(&Value::Int(50)));
        assert_eq!(atts.get("B2", "num_human"), Some(&Value::Int(50)));
        // night: concentration in B1
        m.set(&"daytime".into(), false).unwrap();
        sim(&mut p, &mut m, &mut atts, 5);
        assert_eq!(atts.get("B1", "num_human"), Some(&Value::Int(80)));
    }
}
