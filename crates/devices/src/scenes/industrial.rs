//! Industrial scenes (paper §1: industrial automation).

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use super::digi_identity;

/// A machine cell on a factory floor: machines cycle through duty phases;
/// anomalies raise vibration and power draw — the signal predictive-
/// maintenance apps look for.
#[derive(Default)]
pub struct FactoryCell;

impl DigiProgram for FactoryCell {
    digi_identity!("FactoryCell", "v1", "builtin/factory-cell");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("FactoryCell", "v1")
            .field("phase", FieldKind::enumeration(["idle", "running", "changeover"]))
            .field("anomaly", FieldKind::Bool)
            .field("vibration_mm_s", FieldKind::float_range(0.0, 100.0))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let phase = ctx
            .model
            .lookup(&"phase".into())
            .and_then(Value::as_str)
            .unwrap_or("idle")
            .to_string();
        let next_phase = match phase.as_str() {
            "idle" if ctx.rng.chance(0.5) => "running",
            "running" if ctx.rng.chance(0.1) => "changeover",
            "changeover" if ctx.rng.chance(0.6) => "running",
            "running" if ctx.rng.chance(0.05) => "idle",
            s => s,
        };
        let anomaly = next_phase == "running" && ctx.rng.chance(ctx.param_f64("anomaly_prob", 0.03));
        let vibration = match next_phase {
            "running" if anomaly => ctx.rng.range_f64(18.0, 40.0),
            "running" => ctx.rng.range_f64(2.0, 6.0),
            _ => ctx.rng.range_f64(0.0, 0.5),
        };
        ctx.update(vmap! {
            "phase" => next_phase,
            "anomaly" => anomaly,
            "vibration_mm_s" => (vibration * 10.0).round() / 10.0,
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let phase = ctx.field_str("phase").unwrap_or_else(|| "idle".into());
        let anomaly = ctx.field_bool("anomaly").unwrap_or(false);
        let running = phase == "running";
        // machine load on plugs/meters; anomalies draw extra current
        let load = if running { 2400.0 * if anomaly { 1.4 } else { 1.0 } } else { 150.0 };
        for p in ctx.atts.of_type("SmartPlug").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&p, "load_w", load);
        }
        for m in ctx.atts.of_type("SmartMeter").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&m, "demand_w", load);
        }
        // operators present only while the machine runs or changes over
        for occ in ctx.atts.of_type("Occupancy").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&occ, "triggered", phase != "idle");
        }
    }
}

/// Greenhouse climate: sunlight warms it, vents/heaters (HVAC) regulate,
/// humidity follows irrigation — supports the physical fidelity tier with
/// a full thermal loop.
#[derive(Default)]
pub struct Greenhouse;

impl DigiProgram for Greenhouse {
    digi_identity!("Greenhouse", "v1", "builtin/greenhouse");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Greenhouse", "v1")
            .field("temp_c", FieldKind::float_range(-20.0, 70.0))
            .field("outside_c", FieldKind::float_range(-30.0, 50.0))
            .field("irrigating", FieldKind::Bool)
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"temp_c".into(), 22.0);
        let _ = model.set(&"outside_c".into(), 12.0);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let day_secs = ctx.param_f64("day_secs", 1440.0);
        let hour = (ctx.now.as_secs_f64() / day_secs).fract() * 24.0;
        let outside = 10.0 + 8.0 * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        // solar gain by day
        let solar = crate::physics::light_level(hour, 0.0) / 10_000.0 * 0.01;
        let hvac = ctx.param_f64("hvac_heat_c_per_s", 0.0);
        let temp = ctx.model.lookup(&"temp_c".into()).and_then(Value::as_float).unwrap_or(22.0);
        let dt = ctx.model.meta.interval_ms() as f64 / 1000.0;
        let next = crate::physics::thermal_step(temp, outside, solar + hvac, 1800.0, dt);
        let irrigating = ctx.rng.chance(ctx.param_f64("irrigation_prob", 0.1));
        ctx.update(vmap! {
            "temp_c" => (next * 100.0).round() / 100.0,
            "outside_c" => (outside * 10.0).round() / 10.0,
            "irrigating" => irrigating,
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let temp = ctx.field_f64("temp_c").unwrap_or(22.0);
        let irrigating = ctx.field_bool("irrigating").unwrap_or(false);
        let mut hvac_heat = 0.0;
        for h in ctx.atts.of_type("Hvac").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&h, "room_temp_c", temp);
            hvac_heat +=
                ctx.atts.get(&h, "heat_output_c_per_s").and_then(Value::as_float).unwrap_or(0.0);
        }
        ctx.model.meta.params.insert("hvac_heat_c_per_s".into(), hvac_heat.into());
        for t in ctx.atts.of_type("Temperature").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&t, "temp_c", temp);
        }
        for h in ctx.atts.of_type("Humidity").into_iter().map(str::to_string).collect::<Vec<_>>() {
            let target = if irrigating { 85.0 } else { 60.0 };
            ctx.atts.set(&h, "rh_pct", target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimTime};

    #[test]
    fn factory_anomaly_shows_in_vibration_and_load() {
        let mut p = FactoryCell;
        let mut m = p.schema().instantiate("F1");
        m.set(&"phase".into(), "running").unwrap();
        m.set(&"anomaly".into(), true).unwrap();
        let mut atts = Atts::new();
        atts.attach("P1", "SmartPlug");
        atts.observe("P1", "SmartPlug", vmap! { "load_w" => 0.0 });
        let mut rng = Prng::new(1);
        let mut ctx = SimCtx {
            model: &mut m,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        p.on_model(&mut ctx);
        let load = atts.get("P1", "load_w").and_then(Value::as_float).unwrap();
        assert!((load - 3360.0).abs() < 1.0, "anomalous load = {load}");
    }

    #[test]
    fn factory_phases_eventually_cycle() {
        let mut p = FactoryCell;
        let mut m = p.schema().instantiate("F1");
        let mut rng = Prng::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
            seen.insert(m.lookup(&"phase".into()).unwrap().as_str().unwrap().to_string());
        }
        assert!(seen.contains("running"));
        assert!(seen.len() >= 2, "phases never changed: {seen:?}");
    }

    #[test]
    fn greenhouse_feeds_sensors_and_hvac_loop() {
        let mut p = Greenhouse;
        let mut m = p.schema().instantiate("G1");
        p.init(&mut m);
        m.set(&"temp_c".into(), 28.0).unwrap();
        m.set(&"irrigating".into(), true).unwrap();
        let mut atts = Atts::new();
        atts.attach("H1", "Hvac");
        atts.observe(
            "H1",
            "Hvac",
            vmap! { "room_temp_c" => 0.0, "heat_output_c_per_s" => -0.02 },
        );
        atts.attach("HU1", "Humidity");
        atts.observe("HU1", "Humidity", vmap! { "rh_pct" => 45.0 });
        let mut rng = Prng::new(3);
        let mut ctx = SimCtx {
            model: &mut m,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        p.on_model(&mut ctx);
        assert_eq!(atts.get("H1", "room_temp_c").and_then(Value::as_float), Some(28.0));
        assert_eq!(atts.get("HU1", "rh_pct").and_then(Value::as_float), Some(85.0));
        // the HVAC's cooling output is picked up as a param for the loop
        assert_eq!(m.meta.param_float("hvac_heat_c_per_s"), Some(-0.02));
    }

    #[test]
    fn greenhouse_cooling_pulls_temperature_down() {
        let mut p = Greenhouse;
        let mut m = p.schema().instantiate("G1");
        p.init(&mut m);
        m.set(&"temp_c".into(), 35.0).unwrap();
        m.meta.params.insert("hvac_heat_c_per_s".into(), (-0.05).into());
        m.meta.params.insert("irrigation_prob".into(), 0.0.into());
        let mut rng = Prng::new(4);
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_loop(&mut ctx);
        let t = m.lookup(&"temp_c".into()).unwrap().as_float().unwrap();
        assert!(t < 35.0, "cooling must reduce temperature: {t}");
    }
}
