//! Smart-space scenes: rooms, kitchens, offices, homes.

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use super::{correlate_presence, digi_identity, drive_co2};

/// The paper's meeting-room scene (Fig. 5 top): generates human presence
/// and keeps attached occupancy/under-desk sensors consistent with it;
/// also drives CO₂ and, at physical fidelity, a thermal model via attached
/// HVAC/Temperature mocks.
#[derive(Default)]
pub struct Room;

impl DigiProgram for Room {
    digi_identity!("Room", "v2", "builtin/room");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Room", "v2")
            .field("human_presence", FieldKind::Bool)
            .field("num_occupants", FieldKind::int_range(0, 100))
            .field("temp_c", FieldKind::float_range(-20.0, 60.0))
            .field("ambient_c", FieldKind::float_range(-20.0, 60.0))
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"temp_c".into(), 21.0);
        let _ = model.set(&"ambient_c".into(), model.meta.param_float("ambient_c").unwrap_or(15.0));
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let presence = ctx.rng.chance(ctx.param_f64("presence_prob", 0.5));
        let occupants = if presence { ctx.rng.range_i64(1, ctx.param_i64("capacity", 8) + 1) } else { 0 };
        ctx.update(vmap! { "human_presence" => presence, "num_occupants" => occupants });

        // Physical tier: evolve room temperature with the thermal model.
        if ctx.model.meta.param_str("fidelity") == Some("physical") {
            let temp =
                ctx.model.lookup(&"temp_c".into()).and_then(Value::as_float).unwrap_or(21.0);
            let ambient =
                ctx.model.lookup(&"ambient_c".into()).and_then(Value::as_float).unwrap_or(15.0);
            let heat = ctx.param_f64("hvac_heat_c_per_s", 0.0) + occupants as f64 * 0.0005;
            let dt = ctx.model.meta.interval_ms() as f64 / 1000.0;
            let next = crate::physics::thermal_step(temp, ambient, heat, 3600.0, dt);
            let _ = ctx.model.set(&"temp_c".into(), (next * 100.0).round() / 100.0);
        }
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let presence = ctx.field_bool("human_presence").unwrap_or(false);
        correlate_presence(ctx, presence);
        let occupants = ctx.field_i64("num_occupants").unwrap_or(0) as f64;
        drive_co2(ctx, occupants);
        // feed room temperature into attached HVACs and thermostats, and
        // their output back into our params
        let temp = ctx.field_f64("temp_c").unwrap_or(21.0);
        let mut hvac_heat = 0.0;
        let hvacs: Vec<String> = ctx.atts.of_type("Hvac").into_iter().map(str::to_string).collect();
        for h in hvacs {
            ctx.atts.set(&h, "room_temp_c", temp);
            hvac_heat += ctx
                .atts
                .get(&h, "heat_output_c_per_s")
                .and_then(Value::as_float)
                .unwrap_or(0.0);
        }
        ctx.model.meta.params.insert("hvac_heat_c_per_s".into(), hvac_heat.into());
        let thermostats: Vec<String> =
            ctx.atts.of_type("Thermostat").into_iter().map(str::to_string).collect();
        for t in thermostats {
            ctx.atts.set(&t, "temp_c", temp);
        }
        let temps: Vec<String> =
            ctx.atts.of_type("Temperature").into_iter().map(str::to_string).collect();
        for t in temps {
            ctx.atts.set(&t, "temp_c", temp);
        }
    }
}

/// Shared kitchen: presence plus appliance usage bursts that load attached
/// smart plugs and meters.
#[derive(Default)]
pub struct Kitchen;

impl DigiProgram for Kitchen {
    digi_identity!("Kitchen", "v1", "builtin/kitchen");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Kitchen", "v1")
            .field("human_presence", FieldKind::Bool)
            .field("appliance_in_use", FieldKind::Bool)
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let presence = ctx.rng.chance(ctx.param_f64("presence_prob", 0.35));
        // appliances only run when someone is around
        let cooking = presence && ctx.rng.chance(0.6);
        ctx.update(vmap! { "human_presence" => presence, "appliance_in_use" => cooking });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let presence = ctx.field_bool("human_presence").unwrap_or(false);
        correlate_presence(ctx, presence);
        let cooking = ctx.field_bool("appliance_in_use").unwrap_or(false);
        let load = if cooking { 1800.0 } else { 3.0 }; // kettle vs standby
        let plugs: Vec<String> =
            ctx.atts.of_type("SmartPlug").into_iter().map(str::to_string).collect();
        for p in plugs {
            ctx.atts.set(&p, "load_w", load);
        }
        let meters: Vec<String> =
            ctx.atts.of_type("SmartMeter").into_iter().map(str::to_string).collect();
        for m in meters {
            ctx.atts.set(&m, "demand_w", load + 150.0);
        }
    }
}

/// Open-plan office: a workday population curve drives how many desks are
/// occupied; under-desk sensors get individually consistent assignments.
#[derive(Default)]
pub struct OpenOffice;

impl DigiProgram for OpenOffice {
    digi_identity!("OpenOffice", "v1", "builtin/open-office");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("OpenOffice", "v1")
            .field("population", FieldKind::int_range(0, 1000))
            .field("workday_phase", FieldKind::enumeration(["night", "morning", "core", "evening"]))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let day_secs = ctx.param_f64("day_secs", 1440.0);
        let hour = (ctx.now.as_secs_f64() / day_secs).fract() * 24.0;
        let (phase, fill) = match hour {
            h if !(7.0..20.0).contains(&h) => ("night", 0.02),
            h if h < 9.5 => ("morning", 0.4),
            h if h < 17.0 => ("core", 0.85),
            _ => ("evening", 0.25),
        };
        let desks = ctx.param_i64("desks", 24) as f64;
        let mean = desks * fill;
        let population = (mean + ctx.rng.range_f64(-0.15, 0.15) * desks).round().clamp(0.0, desks);
        ctx.update(vmap! { "population" => population as i64, "workday_phase" => phase });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let population = ctx.field_i64("population").unwrap_or(0) as usize;
        let mut desks: Vec<String> =
            ctx.atts.of_type("Underdesk").into_iter().map(str::to_string).collect();
        // assignment must be a pure function of the population (see
        // `det_rng`): same population → same desks, so coordination settles
        let mut det = super::det_rng(ctx.model, population as u64);
        det.shuffle(&mut desks);
        let n = desks.len();
        for (i, desk) in desks.into_iter().enumerate() {
            ctx.atts.set(&desk, "triggered", i < population.min(n));
        }
        // room-level sensors see anyone at all
        let occs: Vec<String> =
            ctx.atts.of_type("Occupancy").into_iter().map(str::to_string).collect();
        for occ in occs {
            ctx.atts.set(&occ, "triggered", population > 0);
        }
        drive_co2(ctx, population as f64);
    }
}

/// Lobby: arrival bursts, with attached cameras seeing motion and door
/// locks cycling.
#[derive(Default)]
pub struct Lobby;

impl DigiProgram for Lobby {
    digi_identity!("Lobby", "v1", "builtin/lobby");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Lobby", "v1")
            .field("arrivals_per_min", FieldKind::float_range(0.0, 100.0))
            .field("busy", FieldKind::Bool)
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        // bursty arrivals: exponential with occasional rush
        let base = ctx.param_f64("base_rate", 2.0);
        let rush = ctx.rng.chance(0.1);
        let rate = base * if rush { 5.0 } else { 1.0 } * ctx.rng.range_f64(0.5, 1.5);
        ctx.update(vmap! {
            "arrivals_per_min" => (rate * 10.0).round() / 10.0,
            "busy" => rate > base * 2.0,
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let rate = ctx.field_f64("arrivals_per_min").unwrap_or(0.0);
        let busy = rate > 0.5;
        correlate_presence(ctx, busy);
        let cams: Vec<String> =
            ctx.atts.of_type("MotionCamera").into_iter().map(str::to_string).collect();
        for cam in cams {
            ctx.atts.set(&cam, "motion", busy);
        }
    }
}

/// Classroom: lectures are scheduled blocks — occupancy is all-or-nothing
/// on a period boundary (a sharply correlated pattern device-centric
/// simulators cannot produce).
#[derive(Default)]
pub struct Classroom;

impl DigiProgram for Classroom {
    digi_identity!("Classroom", "v1", "builtin/classroom");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Classroom", "v1")
            .field("in_session", FieldKind::Bool)
            .field("students", FieldKind::int_range(0, 500))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let period_secs = ctx.param_f64("period_secs", 60.0);
        let slot = (ctx.now.as_secs_f64() / period_secs) as i64;
        // alternate lecture/break deterministically, with a small chance a
        // lecture is cancelled
        let mut slot_rng = digibox_net::Prng::new(ctx.model.meta.seed() ^ slot as u64);
        let in_session = slot % 2 == 0 && !slot_rng.chance(0.1);
        let students =
            if in_session { slot_rng.range_i64(10, ctx.param_i64("capacity", 40)) } else { 0 };
        ctx.update(vmap! { "in_session" => in_session, "students" => students });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let in_session = ctx.field_bool("in_session").unwrap_or(false);
        correlate_presence(ctx, in_session);
        drive_co2(ctx, ctx.field_i64("students").unwrap_or(0) as f64);
    }
}

/// Bedroom: a sleep/wake cycle correlating the lamp, plug and presence —
/// lights off while sleeping.
#[derive(Default)]
pub struct Bedroom;

impl DigiProgram for Bedroom {
    digi_identity!("Bedroom", "v1", "builtin/bedroom");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Bedroom", "v1")
            .field("occupant_state", FieldKind::enumeration(["away", "awake", "asleep"]))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let day_secs = ctx.param_f64("day_secs", 1440.0);
        let hour = (ctx.now.as_secs_f64() / day_secs).fract() * 24.0;
        let state = match hour {
            h if !(7.0..23.0).contains(&h) => "asleep",
            h if (9.0..21.0).contains(&h) && ctx.rng.chance(0.8) => "away",
            _ => "awake",
        };
        ctx.update(vmap! { "occupant_state" => state });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let state = ctx.field_str("occupant_state").unwrap_or_else(|| "away".into());
        let present = state != "away";
        correlate_presence(ctx, present);
        // lamps: on only while awake and present
        let lamps: Vec<String> = ctx.atts.of_type("Lamp").into_iter().map(str::to_string).collect();
        for lamp in lamps {
            ctx.atts.set_status(&lamp, "power", if state == "awake" { "on" } else { "off" });
        }
    }
}

/// Whole home: a top-level scene that sets an away/home state and pushes
/// presence down into attached room-scenes (rooms are `managed` under it).
#[derive(Default)]
pub struct Home;

impl DigiProgram for Home {
    digi_identity!("Home", "v1", "builtin/home");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Home", "v1")
            .field("mode", FieldKind::enumeration(["home", "away", "vacation"]))
            .field("residents_present", FieldKind::int_range(0, 20))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let residents = ctx.param_i64("residents", 2);
        let away = ctx.rng.chance(ctx.param_f64("away_prob", 0.3));
        let present = if away { 0 } else { ctx.rng.range_i64(1, residents + 1) };
        ctx.update(vmap! {
            "mode" => if away { "away" } else { "home" },
            "residents_present" => present,
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let present = ctx.field_i64("residents_present").unwrap_or(0);
        let rooms: Vec<(String, &str)> = ["Room", "Kitchen", "Bedroom"]
            .iter()
            .flat_map(|k| {
                ctx.atts.of_type(k).into_iter().map(|n| (n.to_string(), *k)).collect::<Vec<_>>()
            })
            .collect();
        if rooms.is_empty() {
            return;
        }
        let names: Vec<String> = rooms.iter().map(|(n, _)| n.clone()).collect();
        // distribute residents over rooms (pure function of `present`)
        let mut det = super::det_rng(ctx.model, present as u64);
        let mut occupied = std::collections::BTreeSet::new();
        for _ in 0..present {
            if let Some(r) = det.choice(&names) {
                occupied.insert(r.clone());
            }
        }
        for (room, kind) in rooms {
            let has_people = occupied.contains(&room);
            // bedrooms speak occupant_state, not human_presence
            if kind == "Bedroom" {
                ctx.atts.set(&room, "occupant_state", if has_people { "awake" } else { "away" });
            } else {
                ctx.atts.set(&room, "human_presence", has_people);
            }
        }
        // locks: lock up when nobody is home
        let locks: Vec<String> =
            ctx.atts.of_type("DoorLock").into_iter().map(str::to_string).collect();
        for lock in locks {
            if present == 0 {
                ctx.atts.set(&lock, "locked.status", true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimDuration, SimTime};

    fn sim(p: &mut dyn DigiProgram, m: &mut digibox_model::Model, atts: &mut Atts, seed: u64) {
        let mut rng = Prng::new(seed);
        let mut ctx = SimCtx { model: m, atts, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_model(&mut ctx);
    }

    #[test]
    fn room_correlates_sensors_and_co2() {
        let mut p = Room;
        let mut m = p.schema().instantiate("R1");
        p.init(&mut m);
        m.set(&"human_presence".into(), true).unwrap();
        m.set(&"num_occupants".into(), 3).unwrap();
        let mut atts = Atts::new();
        atts.attach("O1", "Occupancy");
        atts.observe("O1", "Occupancy", vmap! { "triggered" => false });
        atts.attach("C1", "Co2");
        atts.observe("C1", "Co2", vmap! { "ppm" => 420.0, "occupant_equiv" => 0.0 });
        sim(&mut p, &mut m, &mut atts, 1);
        let patches = atts.take_patches();
        assert_eq!(patches.len(), 2);
        assert!(patches.iter().any(|(n, _)| n == "O1"));
        assert!(patches.iter().any(|(n, _)| n == "C1"));
    }

    #[test]
    fn room_empty_clears_desk_sensors() {
        let mut p = Room;
        let mut m = p.schema().instantiate("R1");
        p.init(&mut m);
        m.set(&"human_presence".into(), false).unwrap();
        let mut atts = Atts::new();
        atts.attach("D1", "Underdesk");
        atts.observe("D1", "Underdesk", vmap! { "triggered" => true });
        sim(&mut p, &mut m, &mut atts, 1);
        let patches = atts.take_patches();
        assert_eq!(patches.len(), 1, "desk must be forced empty");
    }

    #[test]
    fn room_physical_temperature_warms_with_hvac() {
        let mut p = Room;
        let mut m = p.schema().instantiate("R1");
        m.meta.params.insert("fidelity".into(), "physical".into());
        m.meta.params.insert("hvac_heat_c_per_s".into(), 0.05.into());
        p.init(&mut m);
        m.set(&"temp_c".into(), 18.0).unwrap();
        let mut rng = Prng::new(2);
        let mut ctx =
            LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_loop(&mut ctx);
        let t = m.lookup(&"temp_c".into()).unwrap().as_float().unwrap();
        assert!(t > 18.0, "heated room should warm: {t}");
    }

    #[test]
    fn open_office_assigns_exactly_population_desks() {
        let mut p = OpenOffice;
        let mut m = p.schema().instantiate("OO1");
        m.set(&"population".into(), 2).unwrap();
        let mut atts = Atts::new();
        for d in ["D1", "D2", "D3", "D4"] {
            atts.attach(d, "Underdesk");
            atts.observe(d, "Underdesk", vmap! { "triggered" => false });
        }
        sim(&mut p, &mut m, &mut atts, 3);
        let occupied = ["D1", "D2", "D3", "D4"]
            .iter()
            .filter(|d| atts.get(d, "triggered") == Some(&Value::Bool(true)))
            .count();
        assert_eq!(occupied, 2);
    }

    #[test]
    fn classroom_schedule_is_all_or_nothing() {
        let mut p = Classroom;
        let mut m = p.schema().instantiate("CL1");
        let mut rng = Prng::new(4);
        // slot 0 (t = 0): lecture (unless cancelled); slot 1: break
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_loop(&mut ctx);
        let break_t = SimTime::ZERO + SimDuration::from_secs(60);
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: break_t, emitted: vec![] };
        p.on_loop(&mut ctx);
        assert_eq!(m.lookup(&"in_session".into()).unwrap().as_bool(), Some(false));
        assert_eq!(m.lookup(&"students".into()).unwrap().as_int(), Some(0));
    }

    #[test]
    fn home_away_locks_doors() {
        let mut p = Home;
        let mut m = p.schema().instantiate("H1");
        m.set(&"mode".into(), "away").unwrap();
        m.set(&"residents_present".into(), 0).unwrap();
        let mut atts = Atts::new();
        atts.attach("R1", "Room");
        atts.observe("R1", "Room", vmap! { "human_presence" => true });
        atts.attach("DL1", "DoorLock");
        atts.observe(
            "DL1",
            "DoorLock",
            vmap! { "locked" => vmap! { "intent" => false, "status" => false } },
        );
        sim(&mut p, &mut m, &mut atts, 5);
        let patches = atts.take_patches();
        // room presence cleared and door locked
        assert!(patches.iter().any(|(n, _)| n == "R1"));
        assert!(patches.iter().any(|(n, _)| n == "DL1"));
    }

    #[test]
    fn bedroom_sleep_turns_lamp_off() {
        let mut p = Bedroom;
        let mut m = p.schema().instantiate("B1");
        m.set(&"occupant_state".into(), "asleep").unwrap();
        let mut atts = Atts::new();
        atts.attach("L1", "Lamp");
        atts.observe(
            "L1",
            "Lamp",
            vmap! { "power" => vmap! { "intent" => "on", "status" => "on" } },
        );
        atts.attach("O1", "Occupancy");
        atts.observe("O1", "Occupancy", vmap! { "triggered" => false });
        sim(&mut p, &mut m, &mut atts, 7);
        assert_eq!(
            atts.get("L1", "power.status").and_then(Value::as_str),
            Some("off"),
            "sleeping occupant: lamp off"
        );
        // asleep = present: the sensor sees them
        assert_eq!(atts.get("O1", "triggered"), Some(&Value::Bool(true)));
        // awake → lamp on
        m.set(&"occupant_state".into(), "awake").unwrap();
        sim(&mut p, &mut m, &mut atts, 8);
        assert_eq!(atts.get("L1", "power.status").and_then(Value::as_str), Some("on"));
    }

    #[test]
    fn bedroom_daynight_states() {
        let mut p = Bedroom;
        let mut m = p.schema().instantiate("B1");
        m.meta.params.insert("day_secs".into(), 240.0.into());
        let mut rng = Prng::new(9);
        // midnight → asleep
        let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_loop(&mut ctx);
        assert_eq!(m.lookup(&"occupant_state".into()).unwrap().as_str(), Some("asleep"));
    }

    #[test]
    fn lobby_busy_drives_cameras_and_sensors() {
        let mut p = Lobby;
        let mut m = p.schema().instantiate("Lob");
        m.set(&"arrivals_per_min".into(), 12.0).unwrap();
        m.set(&"busy".into(), true).unwrap();
        let mut atts = Atts::new();
        atts.attach("Cam", "MotionCamera");
        atts.observe("Cam", "MotionCamera", vmap! { "motion" => false });
        atts.attach("O1", "Occupancy");
        atts.observe("O1", "Occupancy", vmap! { "triggered" => false });
        sim(&mut p, &mut m, &mut atts, 10);
        assert_eq!(atts.get("Cam", "motion"), Some(&Value::Bool(true)));
        assert_eq!(atts.get("O1", "triggered"), Some(&Value::Bool(true)));
        // quiet lobby clears them
        m.set(&"arrivals_per_min".into(), 0.0).unwrap();
        sim(&mut p, &mut m, &mut atts, 11);
        assert_eq!(atts.get("Cam", "motion"), Some(&Value::Bool(false)));
    }

    #[test]
    fn kitchen_cooking_loads_plugs() {
        let mut p = Kitchen;
        let mut m = p.schema().instantiate("K1");
        m.set(&"human_presence".into(), true).unwrap();
        m.set(&"appliance_in_use".into(), true).unwrap();
        let mut atts = Atts::new();
        atts.attach("P1", "SmartPlug");
        atts.observe("P1", "SmartPlug", vmap! { "load_w" => 0.0 });
        sim(&mut p, &mut m, &mut atts, 6);
        assert_eq!(atts.get("P1", "load_w").and_then(Value::as_float), Some(1800.0));
    }
}
