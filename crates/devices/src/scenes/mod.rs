//! The 18 built-in scenes.

mod buildings;
mod industrial;
mod logistics;
mod retail;
mod spaces;
mod urban;

pub use buildings::{Building, Campus};
pub use industrial::{FactoryCell, Greenhouse};
pub use logistics::{ColdChainTruck, SupplyChainRoute, Warehouse};
pub use retail::{CheckoutZone, RetailStore};
pub use spaces::{Bedroom, Classroom, Home, Kitchen, Lobby, OpenOffice, Room};
pub use urban::{ParkingLot, StreetBlock};

use digibox_core::Catalog;

pub(crate) use super::mocks::digi_identity;

/// Register the 18 scenes.
pub fn register(catalog: &mut Catalog) {
    crate::must_register(catalog, || Box::new(Room::default()));
    crate::must_register(catalog, || Box::new(Kitchen::default()));
    crate::must_register(catalog, || Box::new(OpenOffice::default()));
    crate::must_register(catalog, || Box::new(Lobby::default()));
    crate::must_register(catalog, || Box::new(Classroom::default()));
    crate::must_register(catalog, || Box::new(Bedroom::default()));
    crate::must_register(catalog, || Box::new(Home::default()));
    crate::must_register(catalog, || Box::new(Building::default()));
    crate::must_register(catalog, || Box::new(Campus::default()));
    crate::must_register(catalog, || Box::new(RetailStore::default()));
    crate::must_register(catalog, || Box::new(CheckoutZone::default()));
    crate::must_register(catalog, || Box::new(Warehouse::default()));
    crate::must_register(catalog, || Box::new(ColdChainTruck::default()));
    crate::must_register(catalog, || Box::new(SupplyChainRoute::default()));
    crate::must_register(catalog, || Box::new(StreetBlock::default()));
    crate::must_register(catalog, || Box::new(ParkingLot::default()));
    crate::must_register(catalog, || Box::new(FactoryCell::default()));
    crate::must_register(catalog, || Box::new(Greenhouse::default()));
}

/// Shared helper: write `triggered` on every attached occupancy-family
/// sensor so room-level and desk-level readings stay consistent (the
/// paper's Fig. 5 room logic).
pub(crate) fn correlate_presence(ctx: &mut digibox_core::SimCtx, presence: bool) {
    let occs: Vec<String> =
        ctx.atts.of_type("Occupancy").into_iter().map(str::to_string).collect();
    for occ in occs {
        ctx.atts.set(&occ, "triggered", presence);
    }
    let desks: Vec<String> =
        ctx.atts.of_type("Underdesk").into_iter().map(str::to_string).collect();
    for desk in desks {
        if !presence {
            // a desk cannot be occupied in an empty room
            ctx.atts.set(&desk, "triggered", false);
        }
    }
}

/// Derive a deterministic RNG from a digi's identity plus a state salt.
///
/// Simulation handlers re-run until coordination converges, so any
/// randomness inside `on_model` must be a *pure function of the model
/// state* — the same state must always produce the same draw. Handlers use
/// this instead of `ctx.rng` (which advances on every call and would make
/// the scene↔mock loop chase its own tail forever).
pub(crate) fn det_rng(model: &digibox_model::Model, salt: u64) -> digibox_net::Prng {
    digibox_net::Prng::new(model.meta.seed() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Shared helper: set `occupant_equiv` on attached CO₂ sensors.
pub(crate) fn drive_co2(ctx: &mut digibox_core::SimCtx, occupants: f64) {
    let sensors: Vec<String> = ctx.atts.of_type("Co2").into_iter().map(str::to_string).collect();
    for s in sensors {
        ctx.atts.set(&s, "occupant_equiv", occupants);
    }
}
