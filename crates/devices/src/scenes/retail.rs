//! Retail scenes (paper §1/§5: smart retail).

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use super::{correlate_presence, digi_identity};

/// A retail store: shopper flow (diurnal + bursty) driving occupancy
/// sensors, cameras and the checkout zones attached to it.
#[derive(Default)]
pub struct RetailStore;

impl DigiProgram for RetailStore {
    digi_identity!("RetailStore", "v1", "builtin/retail-store");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("RetailStore", "v1")
            .field("shoppers", FieldKind::float_range(0.0, 1_000_000.0))
            .field("arrival_rate_per_min", FieldKind::float_range(0.0, 1000.0))
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let day_secs = ctx.param_f64("day_secs", 1440.0);
        let hour = (ctx.now.as_secs_f64() / day_secs).fract() * 24.0;
        // closed at night, lunchtime and after-work peaks
        let base = ctx.param_f64("peak_rate", 12.0);
        let rate = if !(9.0..21.0).contains(&hour) {
            0.0
        } else {
            let lunch = (-((hour - 12.5f64).powi(2)) / 2.0).exp();
            let evening = (-((hour - 18.0f64).powi(2)) / 3.0).exp();
            base * (0.3 + lunch + evening) * ctx.rng.range_f64(0.7, 1.3)
        };
        let shoppers =
            ctx.model.lookup(&"shoppers".into()).and_then(Value::as_float).unwrap_or(0.0);
        // Rates are in simulated-day minutes; the compressed virtual day
        // (`day_secs` of wall time per 86400 s of scene time) scales them.
        let compression = 86_400.0 / day_secs;
        let dt_min = ctx.model.meta.interval_ms() as f64 / 60_000.0 * compression;
        let arrivals = rate * dt_min;
        let departures = shoppers * dt_min / 20.0; // ~20-minute visits
        let next = (shoppers + arrivals - departures).max(0.0);
        ctx.update(vmap! {
            "shoppers" => (next * 10.0).round() / 10.0,
            "arrival_rate_per_min" => (rate * 10.0).round() / 10.0,
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let shoppers = ctx.field_f64("shoppers").unwrap_or(0.0);
        correlate_presence(ctx, shoppers > 0.5);
        let cams: Vec<String> =
            ctx.atts.of_type("MotionCamera").into_iter().map(str::to_string).collect();
        for cam in cams {
            ctx.atts.set(&cam, "motion", shoppers > 0.5);
        }
        // a fraction of shoppers is checking out at any time
        let zones: Vec<String> =
            ctx.atts.of_type("CheckoutZone").into_iter().map(str::to_string).collect();
        let n = zones.len().max(1) as f64;
        for z in zones {
            ctx.atts.set(&z, "arrivals_per_min", (shoppers / (10.0 * n)).round().max(0.0) as i64);
        }
    }
}

/// A checkout zone: a queue fed by the store, served by open lanes;
/// attached occupancy sensors see the queue, smart plugs power the lanes.
#[derive(Default)]
pub struct CheckoutZone;

impl DigiProgram for CheckoutZone {
    digi_identity!("CheckoutZone", "v1", "builtin/checkout-zone");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("CheckoutZone", "v1")
            .field("queue_len", FieldKind::float_range(0.0, 10_000.0))
            .field("arrivals_per_min", FieldKind::int_range(0, 100_000))
            .field("open_lanes", FieldKind::pair(FieldKind::int_range(0, 50)))
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set_intent(&"open_lanes".into(), 1);
        let _ = model.set_status(&"open_lanes".into(), 1);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let arrivals = ctx
            .model
            .lookup(&"arrivals_per_min".into())
            .and_then(Value::as_int)
            .unwrap_or(0) as f64
            / 60.0;
        let lanes = ctx
            .model
            .lookup(&"open_lanes".into())
            .and_then(|v| v.get("status"))
            .and_then(Value::as_int)
            .unwrap_or(1) as f64;
        let service = lanes * ctx.param_f64("lane_rate_per_s", 0.05);
        let q = ctx.model.lookup(&"queue_len".into()).and_then(Value::as_float).unwrap_or(0.0);
        let dt = ctx.model.meta.interval_ms() as f64 / 1000.0;
        let next = crate::physics::queue_step(q, arrivals, service, dt);
        ctx.update(vmap! { "queue_len" => (next * 10.0).round() / 10.0 });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        // the store app opens/closes lanes via intent
        if let Some(want) = ctx.intent("open_lanes").cloned() {
            ctx.set_status("open_lanes", want);
        }
        let q = ctx.field_f64("queue_len").unwrap_or(0.0);
        correlate_presence(ctx, q > 0.5);
        let lanes = ctx.status("open_lanes").and_then(Value::as_int).unwrap_or(1);
        let plugs: Vec<String> =
            ctx.atts.of_type("SmartPlug").into_iter().map(str::to_string).collect();
        for p in plugs {
            ctx.atts.set(&p, "load_w", lanes as f64 * 200.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimDuration, SimTime};

    #[test]
    fn store_closed_at_night_empties() {
        let mut p = RetailStore;
        let mut m = p.schema().instantiate("S1");
        m.set(&"shoppers".into(), 50.0).unwrap();
        m.meta.params.insert("day_secs".into(), 240.0.into());
        let mut rng = Prng::new(1);
        // t=0 is midnight → closed, shoppers decay
        for _ in 0..100 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
        }
        let shoppers = m.lookup(&"shoppers".into()).unwrap().as_float().unwrap();
        assert!(shoppers < 0.5, "store should empty overnight: {shoppers}");
    }

    #[test]
    fn store_fills_at_lunch() {
        let mut p = RetailStore;
        let mut m = p.schema().instantiate("S1");
        m.meta.params.insert("day_secs".into(), 240.0.into());
        let mut rng = Prng::new(2);
        // 12:30 on the compressed clock = 125 s
        let lunch = SimTime::ZERO + SimDuration::from_millis(125_000);
        for _ in 0..60 {
            let mut ctx = LoopCtx { model: &mut m, rng: &mut rng, now: lunch, emitted: vec![] };
            p.on_loop(&mut ctx);
        }
        let shoppers = m.lookup(&"shoppers".into()).unwrap().as_float().unwrap();
        assert!(shoppers > 10.0, "lunch rush should fill the store: {shoppers}");
    }

    #[test]
    fn checkout_queue_grows_then_drains_with_more_lanes() {
        let mut p = CheckoutZone;
        let mut m = p.schema().instantiate("CZ1");
        p.init(&mut m);
        m.set(&"arrivals_per_min".into(), 30).unwrap();
        let mut rng = Prng::new(3);
        for _ in 0..30 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
        }
        let q1 = m.lookup(&"queue_len".into()).unwrap().as_float().unwrap();
        assert!(q1 > 5.0, "one lane cannot keep up: queue = {q1}");
        // open 10 lanes and stop arrivals → drains
        m.set_status(&"open_lanes".into(), 10).unwrap();
        m.set(&"arrivals_per_min".into(), 0).unwrap();
        for _ in 0..60 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
        }
        let q2 = m.lookup(&"queue_len".into()).unwrap().as_float().unwrap();
        assert_eq!(q2, 0.0, "queue should drain: {q2}");
    }

    #[test]
    fn checkout_lanes_follow_intent_and_load_plugs() {
        let mut p = CheckoutZone;
        let mut m = p.schema().instantiate("CZ1");
        p.init(&mut m);
        m.set_intent(&"open_lanes".into(), 4).unwrap();
        let mut atts = Atts::new();
        atts.attach("P1", "SmartPlug");
        atts.observe("P1", "SmartPlug", vmap! { "load_w" => 0.0 });
        let mut rng = Prng::new(4);
        let mut ctx = SimCtx {
            model: &mut m,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        p.on_model(&mut ctx);
        assert_eq!(m.status(&"open_lanes".into()).unwrap().as_int(), Some(4));
        assert_eq!(atts.get("P1", "load_w").and_then(Value::as_float), Some(800.0));
    }
}
