//! Supply-chain scenes (paper §5: "supply chain applications can
//! incorporate data feeds from IoT devices spanning different locations and
//! administrative domains").

use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
use digibox_model::{vmap, FieldKind, Schema, Value};

use super::digi_identity;

/// Warehouse: forklift traffic through aisles (motion) and a cold zone
/// whose ambient the attached temperature/cargo sensors feel.
#[derive(Default)]
pub struct Warehouse;

impl DigiProgram for Warehouse {
    digi_identity!("Warehouse", "v1", "builtin/warehouse");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("Warehouse", "v1")
            .field("forklifts_active", FieldKind::int_range(0, 100))
            .field("cold_zone_c", FieldKind::float_range(-40.0, 30.0))
            .field("dock_door_open", FieldKind::Bool)
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set(&"cold_zone_c".into(), model.meta.param_float("cold_zone_c").unwrap_or(-18.0));
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let fleet = ctx.param_i64("fleet", 4);
        let active = ctx.rng.range_i64(0, fleet + 1);
        let door = ctx.rng.chance(ctx.param_f64("door_open_prob", 0.15));
        // an open dock door lets warm air in
        let target = ctx.param_f64("cold_zone_c", -18.0) + if door { 6.0 } else { 0.0 };
        let cur =
            ctx.model.lookup(&"cold_zone_c".into()).and_then(Value::as_float).unwrap_or(-18.0);
        let next = crate::physics::approach(cur, target, 120.0, 10.0);
        ctx.update(vmap! {
            "forklifts_active" => active,
            "dock_door_open" => door,
            "cold_zone_c" => (next * 10.0).round() / 10.0,
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let active = ctx.field_i64("forklifts_active").unwrap_or(0);
        let cold = ctx.field_f64("cold_zone_c").unwrap_or(-18.0);
        let cams: Vec<String> =
            ctx.atts.of_type("MotionCamera").into_iter().map(str::to_string).collect();
        for cam in cams {
            ctx.atts.set(&cam, "motion", active > 0);
        }
        let occs: Vec<String> =
            ctx.atts.of_type("Occupancy").into_iter().map(str::to_string).collect();
        for occ in occs {
            ctx.atts.set(&occ, "triggered", active > 0);
        }
        for t in ctx.atts.of_type("Temperature").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&t, "temp_c", cold);
        }
        for c in ctx.atts.of_type("CargoCondition").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&c, "ambient_c", cold);
        }
    }
}

/// Refrigerated truck: driving/stopped cycle with door-open events at
/// stops, pushing ambient into cargo monitors and motion into the tracker.
#[derive(Default)]
pub struct ColdChainTruck;

impl DigiProgram for ColdChainTruck {
    digi_identity!("ColdChainTruck", "v1", "builtin/cold-chain-truck");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("ColdChainTruck", "v1")
            .field("state", FieldKind::enumeration(["driving", "stopped", "unloading"]))
            .field("reefer_c", FieldKind::pair(FieldKind::float_range(-30.0, 20.0)))
            .field("box_c", FieldKind::float_range(-30.0, 50.0))
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let _ = model.set_intent(&"reefer_c".into(), 3.0);
        let _ = model.set_status(&"reefer_c".into(), 3.0);
        let _ = model.set(&"box_c".into(), 3.0);
    }

    fn on_loop(&mut self, ctx: &mut LoopCtx) {
        let state = ctx
            .model
            .lookup(&"state".into())
            .and_then(Value::as_str)
            .unwrap_or("driving")
            .to_string();
        // markov-ish state machine: mostly keep driving, sometimes stop,
        // stops may become unloading (door open)
        let next_state = match state.as_str() {
            "driving" if ctx.rng.chance(0.1) => "stopped",
            "stopped" if ctx.rng.chance(0.5) => "unloading",
            "stopped" if ctx.rng.chance(0.3) => "driving",
            "unloading" if ctx.rng.chance(0.4) => "driving",
            s => s,
        };
        let setpoint = ctx
            .model
            .lookup(&"reefer_c".into())
            .and_then(|v| v.get("status"))
            .and_then(Value::as_float)
            .unwrap_or(3.0);
        // unloading = door open = box pulls toward outside (25 °C)
        let target = if next_state == "unloading" { 25.0 } else { setpoint };
        let tau = if next_state == "unloading" { 120.0 } else { 400.0 };
        let cur = ctx.model.lookup(&"box_c".into()).and_then(Value::as_float).unwrap_or(3.0);
        let next_box = crate::physics::approach(cur, target, tau, 10.0);
        ctx.update(vmap! {
            "state" => next_state,
            "box_c" => (next_box * 100.0).round() / 100.0,
        });
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        if let Some(want) = ctx.intent("reefer_c").cloned() {
            ctx.set_status("reefer_c", want);
        }
        let state = ctx.field_str("state").unwrap_or_else(|| "driving".into());
        let box_c = ctx.field_f64("box_c").unwrap_or(3.0);
        for c in ctx.atts.of_type("CargoCondition").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&c, "ambient_c", box_c);
        }
        for g in ctx.atts.of_type("GpsTracker").into_iter().map(str::to_string).collect::<Vec<_>>() {
            ctx.atts.set(&g, "moving", state == "driving");
        }
    }
}

/// A multi-leg route: advances a shipment through named legs as the
/// attached tracker completes each one, updating the tracker's endpoints —
/// the paper's device-mobility pattern (re-parenting across scenes maps to
/// re-legging here).
#[derive(Default)]
pub struct SupplyChainRoute;

impl DigiProgram for SupplyChainRoute {
    digi_identity!("SupplyChainRoute", "v1", "builtin/supply-chain-route");

    fn is_scene(&self) -> bool {
        true
    }

    fn schema(&self) -> Schema {
        Schema::new("SupplyChainRoute", "v1")
            .field("leg", FieldKind::int_range(0, 100))
            .field("legs_total", FieldKind::int_range(1, 100))
            .field("delivered", FieldKind::Bool)
    }

    fn init(&mut self, model: &mut digibox_model::Model) {
        let total = model.meta.param_int("legs").unwrap_or(3);
        let _ = model.set(&"legs_total".into(), total);
    }

    fn on_model(&mut self, ctx: &mut SimCtx) {
        let leg = ctx.field_i64("leg").unwrap_or(0);
        let total = ctx.field_i64("legs_total").unwrap_or(3);
        if ctx.field_bool("delivered") == Some(true) {
            return;
        }
        let trackers: Vec<String> =
            ctx.atts.of_type("GpsTracker").into_iter().map(str::to_string).collect();
        for t in trackers {
            let progress =
                ctx.atts.get(&t, "progress").and_then(Value::as_float).unwrap_or(0.0);
            if progress >= 1.0 {
                // leg complete: advance and reset the tracker onto the next
                // leg's endpoints (simple grid of waypoints)
                let next_leg = leg + 1;
                if next_leg >= total {
                    ctx.set_field("delivered", true);
                    ctx.atts.set(&t, "moving", false);
                } else {
                    ctx.set_field("leg", next_leg);
                    ctx.atts.set(&t, "progress", 0.0);
                    ctx.atts.set(&t, "moving", true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::Atts;
    use digibox_net::{Prng, SimTime};

    fn sim(p: &mut dyn DigiProgram, m: &mut digibox_model::Model, atts: &mut Atts, seed: u64) {
        let mut rng = Prng::new(seed);
        let mut ctx = SimCtx { model: m, atts, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        p.on_model(&mut ctx);
    }

    #[test]
    fn warehouse_drives_cold_chain_sensors() {
        let mut p = Warehouse;
        let mut m = p.schema().instantiate("W1");
        p.init(&mut m);
        m.set(&"cold_zone_c".into(), -18.0).unwrap();
        m.set(&"forklifts_active".into(), 2).unwrap();
        let mut atts = Atts::new();
        atts.attach("CC1", "CargoCondition");
        atts.observe("CC1", "CargoCondition", vmap! { "ambient_c" => 0.0 });
        atts.attach("O1", "Occupancy");
        atts.observe("O1", "Occupancy", vmap! { "triggered" => false });
        sim(&mut p, &mut m, &mut atts, 1);
        assert_eq!(atts.get("CC1", "ambient_c").and_then(Value::as_float), Some(-18.0));
        assert_eq!(atts.get("O1", "triggered"), Some(&Value::Bool(true)));
    }

    #[test]
    fn warehouse_door_warms_cold_zone() {
        let mut p = Warehouse;
        let mut m = p.schema().instantiate("W1");
        p.init(&mut m);
        m.meta.params.insert("door_open_prob".into(), 1.0.into());
        let mut rng = Prng::new(2);
        for _ in 0..100 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
        }
        let c = m.lookup(&"cold_zone_c".into()).unwrap().as_float().unwrap();
        assert!(c > -13.0, "open door should warm the zone: {c}");
    }

    #[test]
    fn truck_unloading_warms_box() {
        let mut p = ColdChainTruck;
        let mut m = p.schema().instantiate("T1");
        p.init(&mut m);
        m.set(&"state".into(), "unloading").unwrap();
        let mut rng = Prng::new(7);
        let mut warmed = false;
        for _ in 0..50 {
            let mut ctx =
                LoopCtx { model: &mut m, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
            p.on_loop(&mut ctx);
            if m.lookup(&"box_c".into()).unwrap().as_float().unwrap() > 5.0 {
                warmed = true;
                break;
            }
            // pin the state machine in `unloading` for the test
            m.set(&"state".into(), "unloading").unwrap();
        }
        assert!(warmed, "unloading should warm the box");
    }

    #[test]
    fn route_advances_legs_and_delivers() {
        let mut p = SupplyChainRoute;
        let mut m = p.schema().instantiate("R1");
        m.meta.params.insert("legs".into(), 2.into());
        p.init(&mut m);
        let mut atts = Atts::new();
        atts.attach("G1", "GpsTracker");
        atts.observe("G1", "GpsTracker", vmap! { "progress" => 1.0, "moving" => false });
        // leg 0 complete → advance to leg 1, tracker reset
        sim(&mut p, &mut m, &mut atts, 3);
        assert_eq!(m.lookup(&"leg".into()).unwrap().as_int(), Some(1));
        assert_eq!(atts.get("G1", "progress").and_then(Value::as_float), Some(0.0));
        // tracker finishes leg 1 → delivered
        atts.observe("G1", "GpsTracker", vmap! { "progress" => 1.0, "moving" => false });
        sim(&mut p, &mut m, &mut atts, 4);
        assert_eq!(m.lookup(&"delivered".into()).unwrap().as_bool(), Some(true));
    }
}
