//! # digibox-devices
//!
//! The mock-and-scene repository that ships with Digibox (paper §1: "20
//! device mocks (e.g., occupancy, fan, lamp, HVAC) and 18 scenes (e.g.,
//! building, campus, retail, supply chain, home)").
//!
//! Every type here is an ordinary [`DigiProgram`]; [`register_all`] puts
//! them into a [`Catalog`] so `dbox run <Type> <name>` works for each.
//!
//! ## Mocks (20)
//!
//! | Type | What it simulates |
//! |---|---|
//! | `Occupancy` | ceiling PIR occupancy sensor |
//! | `Underdesk` | under-desk occupancy sensor |
//! | `Lamp` | dimmable lamp (power + intensity) |
//! | `LightLevel` | ambient-light (lux) sensor |
//! | `Fan` | multi-speed fan |
//! | `Hvac` | heating/cooling unit with mode + setpoint |
//! | `Thermostat` | setpoint controller reporting room temperature |
//! | `Temperature` | temperature sensor (random-walk) |
//! | `Humidity` | relative-humidity sensor |
//! | `Co2` | CO₂ concentration sensor |
//! | `AirQuality` | PM2.5 air-quality index sensor |
//! | `SmartPlug` | switchable plug metering active power |
//! | `SmartMeter` | cumulative energy meter |
//! | `DoorLock` | electronic lock with actuation result |
//! | `Window` | window open/closed sensor-actuator |
//! | `MotionCamera` | camera producing motion detections |
//! | `Leak` | water-leak sensor |
//! | `Speaker` | networked speaker (volume, playback) |
//! | `GpsTracker` | location tracker following a route |
//! | `CargoCondition` | in-transit cargo temperature/shock monitor |
//!
//! ## Scenes (18)
//!
//! | Type | Ensemble it coordinates |
//! |---|---|
//! | `Room` | meeting room: presence ↔ occupancy/under-desk sensors, light |
//! | `Kitchen` | shared kitchen with appliance usage bursts |
//! | `OpenOffice` | open-plan office: desk population over a workday |
//! | `Lobby` | lobby: arrival bursts, door traffic |
//! | `Classroom` | scheduled lectures: all-or-nothing occupancy |
//! | `Bedroom` | night-time routines, lamp/plug correlation |
//! | `Home` | whole home: rooms + away/home state |
//! | `Building` | multi-room building assigning humans to rooms |
//! | `Campus` | multi-building campus shifting population |
//! | `RetailStore` | shopper flow driving occupancy + checkout load |
//! | `CheckoutZone` | checkout queue with service rates |
//! | `Warehouse` | aisles with forklift traffic and cold zones |
//! | `ColdChainTruck` | refrigerated truck: door events, ambient pull |
//! | `SupplyChainRoute` | legs of a route re-parenting a tracked shipment |
//! | `StreetBlock` | urban block: pedestrian density, noise, light |
//! | `ParkingLot` | stall occupancy under arrival/departure flow |
//! | `FactoryCell` | machine cell: duty cycles, vibration, anomalies |
//! | `Greenhouse` | greenhouse climate (supports physical fidelity) |

pub mod mocks;
pub mod physics;
pub mod scenes;

use digibox_core::{Catalog, DigiProgram};

/// Register every built-in mock and scene into `catalog`.
pub fn register_all(catalog: &mut Catalog) {
    mocks::register(catalog);
    scenes::register(catalog);
}

/// A catalog pre-loaded with the full device library.
pub fn full_catalog() -> Catalog {
    let mut c = Catalog::new();
    register_all(&mut c);
    c
}

/// Helper used by the registration macros below.
pub(crate) fn must_register<F>(catalog: &mut Catalog, f: F)
where
    F: Fn() -> Box<dyn DigiProgram> + 'static,
{
    catalog.register(f).expect("built-in device types are unique");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_20_mocks_and_18_scenes() {
        let c = full_catalog();
        let mut mocks = 0;
        let mut scenes = 0;
        for kind in c.kinds() {
            if c.make(kind).unwrap().is_scene() {
                scenes += 1;
            } else {
                mocks += 1;
            }
        }
        assert_eq!(mocks, 20, "paper: 20 device mocks");
        assert_eq!(scenes, 18, "paper: 18 scenes");
    }

    #[test]
    fn every_type_instantiates_and_validates() {
        let c = full_catalog();
        for kind in c.kinds() {
            let mut program = c.make(kind).unwrap();
            let schema = program.schema();
            assert_eq!(schema.kind, kind, "schema kind mismatch for {kind}");
            let mut model = schema.instantiate("probe");
            program.init(&mut model);
            schema
                .validate(&model)
                .unwrap_or_else(|e| panic!("{kind} default model invalid: {e}"));
        }
    }

    #[test]
    fn every_schema_field_is_an_internable_path() {
        // Handler field access goes through the path-intern table
        // (pre-parsed at cell registration); every declared field of every
        // built-in type must therefore be a valid dotted-path literal.
        let c = full_catalog();
        for kind in c.kinds() {
            let program = c.make(kind).unwrap();
            for field in program.schema().fields.keys() {
                let p = digibox_model::Path::interned(field)
                    .unwrap_or_else(|e| panic!("{kind} field `{field}` not internable: {e}"));
                assert_eq!(p, digibox_model::Path::interned(field).unwrap());
                assert_eq!(
                    digibox_model::Path::interned_status(field).unwrap(),
                    p.child("status")
                );
            }
        }
    }

    #[test]
    fn every_type_packages() {
        let c = full_catalog();
        for kind in c.kinds() {
            let pkg = c.package(kind).unwrap();
            assert!(!pkg.program.is_empty());
            // schemas round-trip through the package
            let schema: digibox_model::Schema = serde_json::from_str(&pkg.schema_json).unwrap();
            assert_eq!(schema.kind, kind);
        }
    }
}
