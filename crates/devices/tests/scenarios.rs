//! Full-testbed scenarios over the built-in device library: the paper's
//! smart-building walkthrough (Fig. 6 hierarchy) plus supply-chain and
//! urban-sensing setups from §5.

use std::collections::BTreeMap;

use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;
use digibox_net::SimDuration;

fn testbed() -> Testbed {
    Testbed::laptop(full_catalog(), TestbedConfig::default())
}

fn managed() -> BTreeMap<String, Value> {
    BTreeMap::new()
}

#[test]
fn fig6_smart_building_hierarchy() {
    let mut tb = testbed();
    // mocks
    for name in ["O1", "O2"] {
        tb.run_with("Occupancy", name, managed(), true).unwrap();
    }
    tb.run_with("Underdesk", "D1", managed(), true).unwrap();
    tb.run("Lamp", "L1").unwrap();
    // scenes
    tb.run_with("Room", "MeetingRoom", managed(), true).unwrap();
    tb.run_with("Kitchen", "Kitchen1", managed(), true).unwrap();
    tb.run("Building", "ConfCenter").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    // wiring (Fig. 6)
    tb.attach("O1", "MeetingRoom").unwrap();
    tb.attach("O2", "MeetingRoom").unwrap();
    tb.attach("D1", "MeetingRoom").unwrap();
    tb.attach("L1", "MeetingRoom").unwrap();
    tb.attach("MeetingRoom", "ConfCenter").unwrap();
    tb.attach("Kitchen1", "ConfCenter").unwrap();

    tb.run_for(SimDuration::from_secs(20));

    // the room's sensors agree with its presence
    let presence = tb
        .check("MeetingRoom")
        .unwrap()
        .lookup(&"human_presence".into())
        .and_then(Value::as_bool)
        .unwrap();
    for s in ["O1", "O2"] {
        let t = tb.check(s).unwrap().lookup(&"triggered".into()).and_then(Value::as_bool).unwrap();
        assert_eq!(t, presence, "{s} disagrees with room presence");
    }
    // desk sensor constraint: no desk occupancy in an empty room
    if !presence {
        let d = tb.check("D1").unwrap().lookup(&"triggered".into()).and_then(Value::as_bool).unwrap();
        assert!(!d);
    }
    // the building generated num_human events and drove the rooms
    assert!(tb.log().view().source("ConfCenter").tag("event").count() >= 10);
    assert!(tb.log().view().source("MeetingRoom").tag("model").count() >= 1);
}

#[test]
fn cold_chain_truck_scenario() {
    let mut tb = testbed();
    tb.run_with("CargoCondition", "Pallet1", managed(), true).unwrap();
    tb.run_with("GpsTracker", "Tracker1", managed(), true).unwrap();
    tb.run("ColdChainTruck", "Truck1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("Pallet1", "Truck1").unwrap();
    tb.attach("Tracker1", "Truck1").unwrap();
    tb.run_for(SimDuration::from_secs(30));

    // the pallet's ambient follows the truck's box temperature
    let box_c = tb.check("Truck1").unwrap().lookup(&"box_c".into()).and_then(Value::as_float).unwrap();
    let ambient = tb
        .check("Pallet1")
        .unwrap()
        .lookup(&"ambient_c".into())
        .and_then(Value::as_float)
        .unwrap();
    assert!((box_c - ambient).abs() < 0.01, "pallet ambient {ambient} vs box {box_c}");
}

#[test]
fn urban_mobility_reattach() {
    let mut tb = testbed();
    // a phone-like mobile air-quality sensor moving between two blocks
    tb.run_with("AirQuality", "Phone1", managed(), true).unwrap();
    tb.run_with("StreetBlock", "BlockA", managed(), true).unwrap();
    tb.run_with("StreetBlock", "BlockB", managed(), true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    // put very different traffic on the two blocks
    tb.edit("BlockA", digibox_model::vmap! {}).ok();
    tb.digi("BlockA").unwrap().borrow_mut().force_fields(
        tb.sim(),
        digibox_model::vmap! { "pedestrians" => 0, "noise_db" => 35.0, "streetlights_on" => false },
    );
    tb.digi("BlockB").unwrap().borrow_mut().force_fields(
        tb.sim(),
        digibox_model::vmap! { "pedestrians" => 200, "noise_db" => 70.0, "streetlights_on" => false },
    );
    tb.attach("Phone1", "BlockA").unwrap();
    tb.run_for(SimDuration::from_secs(3));
    let pm_quiet = tb
        .check("Phone1")
        .unwrap()
        .lookup(&"pm25_ugm3".into())
        .and_then(Value::as_float)
        .unwrap();

    // the phone moves to the busy block (paper §5: urban sensing =
    // dynamically re-attaching mocks to different scenes)
    tb.detach("Phone1", "BlockA").unwrap();
    tb.attach("Phone1", "BlockB").unwrap();
    tb.run_for(SimDuration::from_secs(3));
    let pm_busy = tb
        .check("Phone1")
        .unwrap()
        .lookup(&"pm25_ugm3".into())
        .and_then(Value::as_float)
        .unwrap();
    assert!(
        pm_busy > pm_quiet + 5.0,
        "busy block should read dirtier air: quiet {pm_quiet} vs busy {pm_busy}"
    );
}

#[test]
fn retail_store_with_checkout() {
    let mut tb = testbed();
    tb.run_with("Occupancy", "Door1", managed(), true).unwrap();
    tb.run_with("CheckoutZone", "Checkout", managed(), true).unwrap();
    let mut params = managed();
    params.insert("day_secs".into(), Value::Float(240.0));
    tb.run_with("RetailStore", "Store", params, false).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("Door1", "Store").unwrap();
    tb.attach("Checkout", "Store").unwrap();
    // run through the compressed day into opening hours
    tb.run_for(SimDuration::from_secs(130));
    let shoppers = tb
        .check("Store")
        .unwrap()
        .lookup(&"shoppers".into())
        .and_then(Value::as_float)
        .unwrap();
    assert!(shoppers > 0.5, "store open at midday: {shoppers} shoppers");
    let door = tb.check("Door1").unwrap().lookup(&"triggered".into()).and_then(Value::as_bool).unwrap();
    assert!(door, "door sensor sees shoppers");
}

#[test]
fn greenhouse_physical_fidelity() {
    let mut tb = Testbed::laptop(
        full_catalog(),
        TestbedConfig { fidelity: digibox_core::FidelityMode::Physical, ..Default::default() },
    );
    tb.run_with("Hvac", "GH-HVAC", managed(), false).unwrap();
    tb.run_with("Temperature", "GH-Temp", managed(), true).unwrap();
    tb.run("Greenhouse", "GH").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("GH-HVAC", "GH").unwrap();
    tb.attach("GH-Temp", "GH").unwrap();
    // ask the HVAC to heat to 30 °C
    tb.edit("GH-HVAC", digibox_model::vmap! { "mode" => "heat", "setpoint_c" => 30.0 }).unwrap();
    tb.run_for(SimDuration::from_secs(60));
    // temperature sensor mirrors the greenhouse temperature
    let gh = tb.check("GH").unwrap().lookup(&"temp_c".into()).and_then(Value::as_float).unwrap();
    let sensor =
        tb.check("GH-Temp").unwrap().lookup(&"temp_c".into()).and_then(Value::as_float).unwrap();
    assert!((gh - sensor).abs() < 1.0, "sensor {sensor} tracks greenhouse {gh}");
    // the HVAC reports a heating output (greenhouse starts at 22 < 30)
    let out = tb
        .check("GH-HVAC")
        .unwrap()
        .lookup(&"heat_output_c_per_s".into())
        .and_then(Value::as_float)
        .unwrap();
    assert!(out > 0.0, "HVAC should be heating, output = {out}");
}
