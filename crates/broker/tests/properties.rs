//! Property-based tests on MQTT topic semantics: the trie agrees with the
//! reference matcher on arbitrary filters/topics, and validation is
//! internally consistent.

use proptest::prelude::*;

use digibox_broker::{matches, validate_filter, validate_topic, TopicTrie};

/// Strategy: topic levels (may be empty — MQTT allows empty levels).
fn level() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-z0-9]{1,6}".prop_map(|s| s),
    ]
}

/// Strategy: a topic name (no wildcards).
fn topic() -> impl Strategy<Value = String> {
    prop::collection::vec(level(), 1..5).prop_map(|ls| ls.join("/"))
        .prop_filter("topic must be non-empty", |t| !t.is_empty())
}

/// Strategy: a filter (levels may be wildcards).
fn filter() -> impl Strategy<Value = String> {
    let wild_level = prop_oneof![
        level().prop_map(|l| l),
        Just("+".to_string()),
    ];
    (prop::collection::vec(wild_level, 1..5), any::<bool>()).prop_map(|(mut ls, hash)| {
        if hash {
            ls.push("#".to_string());
        }
        ls.join("/")
    })
    .prop_filter("filter must be non-empty", |f| !f.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_filters_validate(f in filter()) {
        prop_assert!(validate_filter(&f), "generated filter {f:?} should validate");
    }

    #[test]
    fn generated_topics_validate(t in topic()) {
        prop_assert!(validate_topic(&t), "generated topic {t:?} should validate");
    }

    #[test]
    fn trie_agrees_with_reference_matcher(
        filters in prop::collection::vec(filter(), 1..12),
        topics in prop::collection::vec(topic(), 1..8),
    ) {
        let mut trie = TopicTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        for t in &topics {
            let mut expect: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| matches(f, t))
                .map(|(i, _)| i)
                .collect();
            let mut got: Vec<usize> = trie.lookup(t).into_iter().copied().collect();
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expect, "trie disagrees with matcher on topic {:?}", t);
        }
    }

    #[test]
    fn exact_filter_matches_its_own_topic(t in topic()) {
        prop_assert!(matches(&t, &t));
    }

    #[test]
    fn hash_filter_matches_everything_not_dollar(t in topic()) {
        prop_assume!(!t.starts_with('$'));
        prop_assert!(matches("#", &t));
    }

    #[test]
    fn removal_is_exact(filters in prop::collection::vec(filter(), 1..8)) {
        let mut trie = TopicTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        let total = trie.len();
        // remove the first filter's entries only
        let removed = trie.remove_where(&filters[0], |_| true);
        let dupes = filters.iter().filter(|f| *f == &filters[0]).count();
        prop_assert_eq!(removed, dupes);
        prop_assert_eq!(trie.len(), total - dupes);
    }
}
