//! Property-based tests on MQTT topic semantics: the trie agrees with the
//! reference matcher on arbitrary filters/topics, and validation is
//! internally consistent.

use proptest::prelude::*;

use digibox_broker::{matches, validate_filter, validate_topic, TopicTrie};

/// Strategy: topic levels (may be empty — MQTT allows empty levels).
fn level() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-z0-9]{1,6}".prop_map(|s| s),
    ]
}

/// Strategy: a topic name (no wildcards).
fn topic() -> impl Strategy<Value = String> {
    prop::collection::vec(level(), 1..5).prop_map(|ls| ls.join("/"))
        .prop_filter("topic must be non-empty", |t| !t.is_empty())
}

/// Strategy: a filter (levels may be wildcards).
fn filter() -> impl Strategy<Value = String> {
    let wild_level = prop_oneof![
        level().prop_map(|l| l),
        Just("+".to_string()),
    ];
    (prop::collection::vec(wild_level, 1..5), any::<bool>()).prop_map(|(mut ls, hash)| {
        if hash {
            ls.push("#".to_string());
        }
        ls.join("/")
    })
    .prop_filter("filter must be non-empty", |f| !f.is_empty())
}

/// Strategy: a publishable topic that is sometimes a `$`-prefixed system
/// topic, to exercise wildcard shielding in the interleaved property.
fn sys_or_plain_topic() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => topic(),
        1 => topic().prop_map(|t| format!("$SYS/{t}")),
    ]
}

/// One step of an interleaved broker workload. `Unsubscribe` holds an
/// index resolved against the live subscription list at execution time,
/// so removals actually hit; a fresh random filter almost never would.
#[derive(Debug, Clone)]
enum Op {
    Subscribe(String),
    Unsubscribe(usize),
    Publish(String),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => filter().prop_map(Op::Subscribe),
        1 => (0..64usize).prop_map(Op::Unsubscribe),
        3 => sys_or_plain_topic().prop_map(Op::Publish),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_filters_validate(f in filter()) {
        prop_assert!(validate_filter(&f), "generated filter {f:?} should validate");
    }

    #[test]
    fn generated_topics_validate(t in topic()) {
        prop_assert!(validate_topic(&t), "generated topic {t:?} should validate");
    }

    #[test]
    fn trie_agrees_with_reference_matcher(
        filters in prop::collection::vec(filter(), 1..12),
        topics in prop::collection::vec(topic(), 1..8),
    ) {
        let mut trie = TopicTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        for t in &topics {
            let mut expect: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| matches(f, t))
                .map(|(i, _)| i)
                .collect();
            let mut got: Vec<usize> = trie.lookup(t).into_iter().copied().collect();
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expect, "trie disagrees with matcher on topic {:?}", t);
        }
    }

    #[test]
    fn exact_filter_matches_its_own_topic(t in topic()) {
        prop_assert!(matches(&t, &t));
    }

    #[test]
    fn hash_filter_matches_everything_not_dollar(t in topic()) {
        prop_assume!(!t.starts_with('$'));
        prop_assert!(matches("#", &t));
    }

    /// Interleaved subscribe/unsubscribe/publish agrees with the
    /// reference matcher at every publish, including `$SYS`-style topics
    /// (wildcard shielding), and the trie epoch moves exactly when the
    /// subscription set effectively changes — the invariant the broker's
    /// route cache depends on for invalidation.
    #[test]
    fn interleaved_ops_agree_with_reference(ops in prop::collection::vec(op(), 1..40)) {
        let mut trie = TopicTrie::new();
        let mut reference: Vec<(String, usize)> = Vec::new();
        let mut next_id = 0usize;
        for operation in ops {
            let epoch_before = trie.epoch();
            match operation {
                Op::Subscribe(f) => {
                    trie.insert(&f, next_id);
                    reference.push((f, next_id));
                    next_id += 1;
                    prop_assert_ne!(trie.epoch(), epoch_before, "insert must bump the epoch");
                }
                Op::Unsubscribe(idx) => {
                    // Resolve the index against the live subscription
                    // list; when empty, exercise the no-op removal path.
                    let f = if reference.is_empty() {
                        "never/subscribed".to_string()
                    } else {
                        reference[idx % reference.len()].0.clone()
                    };
                    let removed = trie.remove_where(&f, |_| true);
                    let before = reference.len();
                    reference.retain(|(rf, _)| *rf != f);
                    prop_assert_eq!(removed, before - reference.len());
                    if removed > 0 {
                        prop_assert_ne!(trie.epoch(), epoch_before,
                            "effective removal must bump the epoch");
                    } else {
                        prop_assert_eq!(trie.epoch(), epoch_before,
                            "no-op removal must not bump the epoch");
                    }
                }
                Op::Publish(t) => {
                    let mut expect: Vec<usize> = reference
                        .iter()
                        .filter(|(f, _)| matches(f, &t))
                        .map(|(_, id)| *id)
                        .collect();
                    let mut got: Vec<usize> = trie.lookup(&t).into_iter().copied().collect();
                    expect.sort_unstable();
                    got.sort_unstable();
                    prop_assert_eq!(got, expect, "routes diverge on topic {:?}", t);
                    prop_assert_eq!(trie.epoch(), epoch_before, "lookup must not bump the epoch");
                }
            }
            prop_assert_eq!(trie.len(), reference.len());
        }
    }

    #[test]
    fn removal_is_exact(filters in prop::collection::vec(filter(), 1..8)) {
        let mut trie = TopicTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        let total = trie.len();
        // remove the first filter's entries only
        let removed = trie.remove_where(&filters[0], |_| true);
        let dupes = filters.iter().filter(|f| *f == &filters[0]).count();
        prop_assert_eq!(removed, dupes);
        prop_assert_eq!(trie.len(), total - dupes);
    }
}
