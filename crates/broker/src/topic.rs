//! MQTT topic names, filters, matching rules, and a subscription trie.
//!
//! Semantics follow MQTT 3.1.1 §4.7: `/`-separated levels, `+` matches
//! exactly one level, `#` matches any suffix (must be last), and wildcard
//! filters do not match topics starting with `$`.

use std::collections::BTreeMap;

/// Is `topic` a valid topic *name* (publishable)? No wildcards allowed.
pub fn validate_topic(topic: &str) -> bool {
    !topic.is_empty()
        && topic.len() <= 65_535
        && !topic.contains(['+', '#'])
        && !topic.contains('\0')
}

/// Is `filter` a valid topic *filter* (subscribable)?
pub fn validate_filter(filter: &str) -> bool {
    if filter.is_empty() || filter.len() > 65_535 || filter.contains('\0') {
        return false;
    }
    let levels: Vec<&str> = filter.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        match *level {
            "#" => {
                if i != levels.len() - 1 {
                    return false; // '#' only at the end
                }
            }
            "+" => {}
            l => {
                if l.contains(['+', '#']) {
                    return false; // wildcards must stand alone in a level
                }
            }
        }
    }
    true
}

/// Does `filter` match `topic` under MQTT rules?
pub fn matches(filter: &str, topic: &str) -> bool {
    // Wildcard filters don't match $-topics (spec §4.7.2).
    if topic.starts_with('$') && (filter.starts_with('+') || filter.starts_with('#')) {
        return false;
    }
    let mut f = filter.split('/');
    let mut t = topic.split('/');
    loop {
        match (f.next(), t.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => {}
            (Some(fl), Some(tl)) if fl == tl => {}
            (None, None) => return true,
            // "a/#" also matches "a" (the parent level)
            _ => {
                return false;
            }
        }
    }
}

/// A subscription trie: filters map to values; `lookup(topic)` collects the
/// values of every matching filter in one pass. Used by the broker to route
/// a publish to its subscribers without scanning all sessions.
#[derive(Debug, Clone)]
pub struct TopicTrie<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    children: BTreeMap<String, Node<T>>,
    /// Values registered on the exact filter ending at this node.
    values: Vec<T>,
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node { children: BTreeMap::new(), values: Vec::new() }
    }
}

impl<T> Default for TopicTrie<T> {
    fn default() -> Self {
        TopicTrie::new()
    }
}

impl<T> TopicTrie<T> {
    pub fn new() -> TopicTrie<T> {
        TopicTrie { root: Node::default(), len: 0 }
    }

    /// Number of stored values (not distinct filters).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Register `value` under `filter` (assumed pre-validated).
    pub fn insert(&mut self, filter: &str, value: T) {
        let mut node = &mut self.root;
        for level in filter.split('/') {
            node = node.children.entry(level.to_string()).or_default();
        }
        node.values.push(value);
        self.len += 1;
    }

    /// Remove every value under `filter` for which `pred` returns true.
    /// Returns how many were removed.
    pub fn remove_where(&mut self, filter: &str, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut node = &mut self.root;
        for level in filter.split('/') {
            match node.children.get_mut(level) {
                Some(n) => node = n,
                None => return 0,
            }
        }
        let before = node.values.len();
        node.values.retain(|v| !pred(v));
        let removed = before - node.values.len();
        self.len -= removed;
        removed
    }

    /// Collect references to every value whose filter matches `topic`.
    pub fn lookup(&self, topic: &str) -> Vec<&T> {
        let levels: Vec<&str> = topic.split('/').collect();
        let mut out = Vec::new();
        let skip_wildcards_at_root = topic.starts_with('$');
        Self::walk(&self.root, &levels, 0, skip_wildcards_at_root, &mut out);
        out
    }

    fn walk<'a>(
        node: &'a Node<T>,
        levels: &[&str],
        depth: usize,
        dollar_guard: bool,
        out: &mut Vec<&'a T>,
    ) {
        // '#' at this level matches everything below (including the parent).
        if let Some(hash) = node.children.get("#") {
            if !(dollar_guard && depth == 0) {
                out.extend(hash.values.iter());
            }
        }
        if depth == levels.len() {
            out.extend(node.values.iter());
            return;
        }
        let level = levels[depth];
        if let Some(child) = node.children.get(level) {
            Self::walk(child, levels, depth + 1, dollar_guard, out);
        }
        if let Some(plus) = node.children.get("+") {
            if !(dollar_guard && depth == 0) {
                Self::walk(plus, levels, depth + 1, dollar_guard, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_validation() {
        assert!(validate_topic("a/b/c"));
        assert!(validate_topic("digibox/mock/O1/status"));
        assert!(!validate_topic(""));
        assert!(!validate_topic("a/+/c"));
        assert!(!validate_topic("a/#"));
    }

    #[test]
    fn filter_validation() {
        assert!(validate_filter("a/b/c"));
        assert!(validate_filter("a/+/c"));
        assert!(validate_filter("a/#"));
        assert!(validate_filter("#"));
        assert!(validate_filter("+/+"));
        assert!(!validate_filter(""));
        assert!(!validate_filter("a/#/c")); // '#' not last
        assert!(!validate_filter("a/b+")); // wildcard not alone
        assert!(!validate_filter("a/#b"));
    }

    #[test]
    fn matching_rules() {
        assert!(matches("a/b", "a/b"));
        assert!(!matches("a/b", "a/c"));
        assert!(matches("a/+", "a/b"));
        assert!(!matches("a/+", "a/b/c"));
        assert!(matches("a/#", "a/b/c"));
        assert!(matches("a/#", "a"));
        assert!(matches("#", "anything/at/all"));
        assert!(matches("+/+", "a/b"));
        assert!(!matches("+", "a/b"));
        // $-topics are protected from root wildcards
        assert!(!matches("#", "$SYS/stats"));
        assert!(!matches("+/stats", "$SYS/stats"));
        assert!(matches("$SYS/stats", "$SYS/stats"));
        assert!(matches("$SYS/#", "$SYS/stats"));
    }

    #[test]
    fn empty_levels_are_significant() {
        assert!(matches("a//b", "a//b"));
        assert!(!matches("a/b", "a//b"));
        assert!(matches("a/+/b", "a//b")); // '+' matches the empty level
    }

    #[test]
    fn trie_lookup_matches_linear_scan() {
        let filters = [
            "digibox/mock/O1/status",
            "digibox/mock/+/status",
            "digibox/#",
            "digibox/scene/+/event",
            "#",
            "other/topic",
        ];
        let mut trie = TopicTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        let topics = [
            "digibox/mock/O1/status",
            "digibox/mock/O2/status",
            "digibox/scene/room/event",
            "other/topic",
            "unrelated",
            "$SYS/internal",
        ];
        for topic in topics {
            let mut expect: Vec<usize> =
                filters.iter().enumerate().filter(|(_, f)| matches(f, topic)).map(|(i, _)| i).collect();
            let mut got: Vec<usize> = trie.lookup(topic).into_iter().copied().collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "topic {topic}");
        }
    }

    #[test]
    fn trie_remove() {
        let mut trie = TopicTrie::new();
        trie.insert("a/+", 1);
        trie.insert("a/+", 2);
        trie.insert("a/#", 3);
        assert_eq!(trie.len(), 3);
        assert_eq!(trie.remove_where("a/+", |v| *v == 1), 1);
        assert_eq!(trie.len(), 2);
        let got: Vec<i32> = trie.lookup("a/b").into_iter().copied().collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&2) && got.contains(&3));
        // removing from a filter that was never inserted is a no-op
        assert_eq!(trie.remove_where("z/z", |_| true), 0);
    }

    #[test]
    fn hash_matches_parent_level_in_trie() {
        let mut trie = TopicTrie::new();
        trie.insert("a/#", 1);
        assert_eq!(trie.lookup("a").len(), 1);
        assert_eq!(trie.lookup("a/b/c").len(), 1);
        assert_eq!(trie.lookup("b").len(), 0);
    }
}
