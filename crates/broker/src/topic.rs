//! MQTT topic names, filters, matching rules, and a subscription trie.
//!
//! Semantics follow MQTT 3.1.1 §4.7: `/`-separated levels, `+` matches
//! exactly one level, `#` matches any suffix (must be last), and wildcard
//! filters do not match topics starting with `$`.
//!
//! The trie interns level strings into `u32` symbols: filters are split
//! once at insert time, and `lookup` walks the topic with a borrowed
//! `split('/')` iterator — no per-publish `Vec<&str>` allocation and no
//! `String` comparisons, just hash probes on 4-byte keys. A topic level
//! that was never interned cannot match any literal branch, so unknown
//! levels short-circuit to the wildcard children only.

use std::collections::HashMap; // keyed lookup only; `dbox audit` (DH0002) checks every iteration site

/// Is `topic` a valid topic *name* (publishable)? No wildcards allowed.
pub fn validate_topic(topic: &str) -> bool {
    !topic.is_empty()
        && topic.len() <= 65_535
        && !topic.contains(['+', '#'])
        && !topic.contains('\0')
}

/// The level prefix marking a shared subscription: `$share/<group>/<filter>`.
pub const SHARE_PREFIX: &str = "$share/";

/// Split a shared-subscription filter into `(group, inner filter)`.
///
/// Returns `None` unless `filter` has the exact shape
/// `$share/<group>/<rest>` with a non-empty, wildcard-free group level
/// and a non-empty inner filter (the inner filter is *not* validated
/// here; pass it to [`validate_filter`]).
pub fn parse_share(filter: &str) -> Option<(&str, &str)> {
    let rest = filter.strip_prefix(SHARE_PREFIX)?;
    let (group, inner) = rest.split_once('/')?;
    if group.is_empty() || group.contains(['+', '#']) || inner.is_empty() {
        return None;
    }
    Some((group, inner))
}

/// Is `filter` a valid topic *filter* (subscribable)?
///
/// A shared subscription `$share/<group>/<inner>` is valid iff the group
/// level is well-formed and `<inner>` is itself a valid filter; anything
/// else starting with the reserved `$share` level is rejected.
pub fn validate_filter(filter: &str) -> bool {
    if filter.is_empty() || filter.len() > 65_535 || filter.contains('\0') {
        return false;
    }
    let filter = if filter == "$share" || filter.starts_with(SHARE_PREFIX) {
        match parse_share(filter) {
            Some((_, inner)) => inner,
            None => return false,
        }
    } else {
        filter
    };
    let levels: Vec<&str> = filter.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        match *level {
            "#" => {
                if i != levels.len() - 1 {
                    return false; // '#' only at the end
                }
            }
            "+" => {}
            l => {
                if l.contains(['+', '#']) {
                    return false; // wildcards must stand alone in a level
                }
            }
        }
    }
    true
}

/// Does `filter` match `topic` under MQTT rules?
pub fn matches(filter: &str, topic: &str) -> bool {
    // Wildcard filters don't match $-topics (spec §4.7.2).
    if topic.starts_with('$') && (filter.starts_with('+') || filter.starts_with('#')) {
        return false;
    }
    let mut f = filter.split('/');
    let mut t = topic.split('/');
    loop {
        match (f.next(), t.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => {}
            (Some(fl), Some(tl)) if fl == tl => {}
            (None, None) => return true,
            // "a/#" also matches "a" (the parent level)
            _ => {
                return false;
            }
        }
    }
}

/// Symbol reserved for the `+` wildcard level.
const SYM_PLUS: u32 = 0;
/// Symbol reserved for the `#` wildcard level.
const SYM_HASH: u32 = 1;

/// Level-string symbol table. Filters intern their levels on insert;
/// lookups only *probe* (a level that was never part of any filter has no
/// symbol, hence no literal branch to follow).
#[derive(Debug, Clone)]
struct Interner {
    map: HashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl Interner {
    fn new() -> Interner {
        let mut it = Interner { map: HashMap::new(), names: Vec::new() };
        assert_eq!(it.intern("+"), SYM_PLUS);
        assert_eq!(it.intern("#"), SYM_HASH);
        it
    }

    fn intern(&mut self, level: &str) -> u32 {
        if let Some(&sym) = self.map.get(level) {
            return sym;
        }
        let sym = self.names.len() as u32;
        let boxed: Box<str> = level.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Probe without interning — allocation-free.
    fn get(&self, level: &str) -> Option<u32> {
        self.map.get(level).copied()
    }
}

/// A subscription trie: filters map to values; `lookup(topic)` collects the
/// values of every matching filter in one pass. Used by the broker to route
/// a publish to its subscribers without scanning all sessions.
#[derive(Debug, Clone)]
pub struct TopicTrie<T> {
    root: Node<T>,
    len: usize,
    interner: Interner,
    /// Whole-topic interner for caches layered above the trie: maps a
    /// published topic to a stable `u32` id so a route cache can key on
    /// 4 bytes instead of an owned `String`. Ids survive subscription
    /// churn (epoch bumps) — an invalidated cache re-resolves under the
    /// same id without re-allocating the key.
    topic_ids: HashMap<Box<str>, u32>,
    epoch: u64,
}

#[derive(Debug, Clone)]
struct Node<T> {
    children: HashMap<u32, Node<T>>,
    /// Values registered on the exact filter ending at this node.
    values: Vec<T>,
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node { children: HashMap::new(), values: Vec::new() }
    }
}

impl<T> Default for TopicTrie<T> {
    fn default() -> Self {
        TopicTrie::new()
    }
}

impl<T> TopicTrie<T> {
    /// An empty trie.
    pub fn new() -> TopicTrie<T> {
        TopicTrie {
            root: Node::default(),
            len: 0,
            interner: Interner::new(),
            topic_ids: HashMap::new(),
            epoch: 0,
        }
    }

    /// Intern `topic` to a stable id. The first sighting allocates the key
    /// once; every later publish to the same topic is a hash probe
    /// returning the same 4-byte id.
    pub fn topic_id(&mut self, topic: &str) -> u32 {
        if let Some(&id) = self.topic_ids.get(topic) {
            return id;
        }
        let id = self.topic_ids.len() as u32;
        self.topic_ids.insert(topic.into(), id);
        id
    }

    /// Distinct topics interned so far (cache-cap bookkeeping).
    pub fn topic_id_count(&self) -> usize {
        self.topic_ids.len()
    }

    /// Forget all interned topic ids. Ids are reassigned from zero, so any
    /// cache keyed by old ids must be dropped in the same breath.
    pub fn reset_topic_ids(&mut self) {
        self.topic_ids.clear();
    }

    /// Number of stored values (not distinct filters).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Generation counter, bumped by every mutation that can change a
    /// lookup's result. Route caches above the trie compare epochs instead
    /// of registering invalidation hooks.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Register `value` under `filter` (assumed pre-validated).
    pub fn insert(&mut self, filter: &str, value: T) {
        let mut node = &mut self.root;
        for level in filter.split('/') {
            let sym = self.interner.intern(level);
            node = node.children.entry(sym).or_default();
        }
        node.values.push(value);
        self.len += 1;
        self.epoch += 1;
    }

    /// Replace every value under `filter` for which `pred` returns true
    /// with `value` — or insert `value` fresh if nothing matched.
    ///
    /// Collapsing to a single entry is MQTT 3.1.1 §3.8.4: re-SUBSCRIBE on
    /// a filter the session already holds replaces the granted QoS rather
    /// than adding a second route (which would double-deliver).
    pub fn replace_where(&mut self, filter: &str, value: T, pred: impl FnMut(&T) -> bool) {
        self.remove_where(filter, pred);
        self.insert(filter, value);
    }

    /// Remove every value under `filter` for which `pred` returns true.
    /// Returns how many were removed.
    pub fn remove_where(&mut self, filter: &str, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut node = &mut self.root;
        for level in filter.split('/') {
            let Some(sym) = self.interner.get(level) else {
                return 0;
            };
            match node.children.get_mut(&sym) {
                Some(n) => node = n,
                None => return 0,
            }
        }
        let before = node.values.len();
        node.values.retain(|v| !pred(v));
        let removed = before - node.values.len();
        self.len -= removed;
        if removed > 0 {
            self.epoch += 1;
        }
        removed
    }

    /// Collect references to every value whose filter matches `topic`.
    pub fn lookup(&self, topic: &str) -> Vec<&T> {
        let mut out = Vec::new();
        let dollar_guard = topic.starts_with('$');
        self.walk(&self.root, topic.split('/'), 0, dollar_guard, &mut out);
        out
    }

    fn walk<'a, 't>(
        &'a self,
        node: &'a Node<T>,
        mut rest: std::str::Split<'t, char>,
        depth: usize,
        dollar_guard: bool,
        out: &mut Vec<&'a T>,
    ) {
        // '#' at this level matches everything below (including the parent).
        if let Some(hash) = node.children.get(&SYM_HASH) {
            if !(dollar_guard && depth == 0) {
                out.extend(hash.values.iter());
            }
        }
        match rest.next() {
            None => out.extend(node.values.iter()),
            Some(level) => {
                // Unknown level ⇒ no filter ever used it literally; only
                // the wildcard branches can still match.
                if let Some(sym) = self.interner.get(level) {
                    if let Some(child) = node.children.get(&sym) {
                        self.walk(child, rest.clone(), depth + 1, dollar_guard, out);
                    }
                }
                if let Some(plus) = node.children.get(&SYM_PLUS) {
                    if !(dollar_guard && depth == 0) {
                        self.walk(plus, rest, depth + 1, dollar_guard, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_validation() {
        assert!(validate_topic("a/b/c"));
        assert!(validate_topic("digibox/mock/O1/status"));
        assert!(!validate_topic(""));
        assert!(!validate_topic("a/+/c"));
        assert!(!validate_topic("a/#"));
    }

    #[test]
    fn filter_validation() {
        assert!(validate_filter("a/b/c"));
        assert!(validate_filter("a/+/c"));
        assert!(validate_filter("a/#"));
        assert!(validate_filter("#"));
        assert!(validate_filter("+/+"));
        assert!(!validate_filter(""));
        assert!(!validate_filter("a/#/c")); // '#' not last
        assert!(!validate_filter("a/b+")); // wildcard not alone
        assert!(!validate_filter("a/#b"));
    }

    #[test]
    fn share_filter_parsing_and_validation() {
        assert_eq!(parse_share("$share/g/a/b"), Some(("g", "a/b")));
        assert_eq!(parse_share("$share/workers/digibox/+/status"), Some(("workers", "digibox/+/status")));
        assert_eq!(parse_share("a/b"), None);
        assert_eq!(parse_share("$share"), None);
        assert_eq!(parse_share("$share/g"), None); // no inner filter
        assert_eq!(parse_share("$share//a"), None); // empty group
        assert_eq!(parse_share("$share/+/a"), None); // wildcard group

        assert!(validate_filter("$share/g/a/b"));
        assert!(validate_filter("$share/g/#"));
        assert!(validate_filter("$share/g/+/status"));
        assert!(!validate_filter("$share"));
        assert!(!validate_filter("$share/g"));
        assert!(!validate_filter("$share//a"));
        assert!(!validate_filter("$share/+/a"));
        assert!(!validate_filter("$share/g/a/#/b")); // inner filter invalid
    }

    #[test]
    fn replace_where_collapses_duplicate_subscriptions() {
        // regression: re-SUBSCRIBE used to push a second value under the
        // same filter, so one publish matched the session twice.
        let mut trie = TopicTrie::new();
        trie.replace_where("a/+", ("c1", 0u8), |(c, _)| *c == "c1");
        trie.replace_where("a/+", ("c1", 1u8), |(c, _)| *c == "c1");
        assert_eq!(trie.len(), 1, "re-subscribe must not duplicate the route");
        let got: Vec<_> = trie.lookup("a/b").into_iter().collect();
        assert_eq!(got, vec![&("c1", 1u8)], "granted QoS is replaced");
        // a different session's entry under the same filter is untouched
        trie.replace_where("a/+", ("c2", 0u8), |(c, _)| *c == "c2");
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn matching_rules() {
        assert!(matches("a/b", "a/b"));
        assert!(!matches("a/b", "a/c"));
        assert!(matches("a/+", "a/b"));
        assert!(!matches("a/+", "a/b/c"));
        assert!(matches("a/#", "a/b/c"));
        assert!(matches("a/#", "a"));
        assert!(matches("#", "anything/at/all"));
        assert!(matches("+/+", "a/b"));
        assert!(!matches("+", "a/b"));
        // $-topics are protected from root wildcards
        assert!(!matches("#", "$SYS/stats"));
        assert!(!matches("+/stats", "$SYS/stats"));
        assert!(matches("$SYS/stats", "$SYS/stats"));
        assert!(matches("$SYS/#", "$SYS/stats"));
    }

    #[test]
    fn empty_levels_are_significant() {
        assert!(matches("a//b", "a//b"));
        assert!(!matches("a/b", "a//b"));
        assert!(matches("a/+/b", "a//b")); // '+' matches the empty level
    }

    #[test]
    fn trie_lookup_matches_linear_scan() {
        let filters = [
            "digibox/mock/O1/status",
            "digibox/mock/+/status",
            "digibox/#",
            "digibox/scene/+/event",
            "#",
            "other/topic",
        ];
        let mut trie = TopicTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        let topics = [
            "digibox/mock/O1/status",
            "digibox/mock/O2/status",
            "digibox/scene/room/event",
            "other/topic",
            "unrelated",
            "$SYS/internal",
        ];
        for topic in topics {
            let mut expect: Vec<usize> =
                filters.iter().enumerate().filter(|(_, f)| matches(f, topic)).map(|(i, _)| i).collect();
            let mut got: Vec<usize> = trie.lookup(topic).into_iter().copied().collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "topic {topic}");
        }
    }

    #[test]
    fn trie_remove() {
        let mut trie = TopicTrie::new();
        trie.insert("a/+", 1);
        trie.insert("a/+", 2);
        trie.insert("a/#", 3);
        assert_eq!(trie.len(), 3);
        assert_eq!(trie.remove_where("a/+", |v| *v == 1), 1);
        assert_eq!(trie.len(), 2);
        let got: Vec<i32> = trie.lookup("a/b").into_iter().copied().collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&2) && got.contains(&3));
        // removing from a filter that was never inserted is a no-op
        assert_eq!(trie.remove_where("z/z", |_| true), 0);
    }

    #[test]
    fn hash_matches_parent_level_in_trie() {
        let mut trie = TopicTrie::new();
        trie.insert("a/#", 1);
        assert_eq!(trie.lookup("a").len(), 1);
        assert_eq!(trie.lookup("a/b/c").len(), 1);
        assert_eq!(trie.lookup("b").len(), 0);
    }

    #[test]
    fn epoch_tracks_effective_mutations() {
        let mut trie = TopicTrie::new();
        let e0 = trie.epoch();
        trie.insert("a/b", 1);
        let e1 = trie.epoch();
        assert_ne!(e0, e1);
        // removal that matches nothing must NOT invalidate caches
        assert_eq!(trie.remove_where("a/b", |v| *v == 99), 0);
        assert_eq!(trie.epoch(), e1);
        assert_eq!(trie.remove_where("a/b", |v| *v == 1), 1);
        assert_ne!(trie.epoch(), e1);
    }

    #[test]
    fn topic_ids_are_stable_until_reset() {
        let mut trie: TopicTrie<u32> = TopicTrie::new();
        let a = trie.topic_id("a/b");
        let b = trie.topic_id("a/c");
        assert_ne!(a, b);
        assert_eq!(trie.topic_id("a/b"), a, "re-interning returns the same id");
        assert_eq!(trie.topic_id_count(), 2);
        // ids survive subscription churn (epoch bumps)
        trie.insert("a/#", 1);
        assert_eq!(trie.topic_id("a/b"), a);
        trie.reset_topic_ids();
        assert_eq!(trie.topic_id_count(), 0);
        assert_eq!(trie.topic_id("a/c"), 0, "ids restart from zero after reset");
    }

    #[test]
    fn lookup_with_unknown_levels_still_hits_wildcards() {
        let mut trie = TopicTrie::new();
        trie.insert("a/+/c", 1);
        trie.insert("#", 2);
        // "never-interned" only appears in the topic, not in any filter
        let got: Vec<i32> = trie.lookup("a/never-interned/c").into_iter().copied().collect();
        assert!(got.contains(&1) && got.contains(&2));
        assert_eq!(trie.lookup("x/never-interned").into_iter().copied().collect::<Vec<i32>>(), vec![2]);
    }
}
