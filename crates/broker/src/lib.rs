//! # digibox-broker
//!
//! An MQTT-subset message broker for Digibox testbeds — the stand-in for
//! EMQX in the paper's deployment (§4). Mocks publish status updates and
//! applications publish commands through a [`Broker`] service bound on the
//! simulated network; both sides speak real MQTT 3.1.1 packets
//! ([`packet`]) over the reliable transport, so messages round-trip through
//! an actual wire encoding rather than function calls.
//!
//! Supported: CONNECT/CONNACK (with last-will), PUBLISH QoS 0 and 1 (with
//! PUBACK, DUP redelivery), SUBSCRIBE/SUBACK with `+`/`#` wildcards,
//! UNSUBSCRIBE, retained messages, PINGREQ/PINGRESP, DISCONNECT.
//! Not supported (out of scope for the testbed): QoS 2, persistent session
//! resumption, auth.

#![warn(missing_docs)]

mod broker;
mod client;
pub mod packet;
mod topic;

pub use broker::{Broker, BrokerStats};
pub use client::{ClientEvent, MqttConn};
pub use packet::{ConnectFlags, Packet, PacketError, QoS};
pub use topic::{matches, validate_filter, validate_topic, TopicTrie};
