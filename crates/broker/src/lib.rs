//! # digibox-broker
//!
//! An MQTT-subset message broker for Digibox testbeds — the stand-in for
//! EMQX in the paper's deployment (§4). Mocks publish status updates and
//! applications publish commands through a [`Broker`] service bound on the
//! simulated network; both sides speak real MQTT 3.1.1 packets
//! ([`packet`]) over the reliable transport, so messages round-trip through
//! an actual wire encoding rather than function calls.
//!
//! Supported: CONNECT/CONNACK (with last-will, clean and persistent
//! sessions with `session_present` on resume), PUBLISH QoS 0/1/2 (PUBACK,
//! the PUBREC/PUBREL/PUBCOMP exactly-once handshake, DUP redelivery,
//! packet-id dedup), SUBSCRIBE/SUBACK with `+`/`#` wildcards and
//! `$share/<group>/` shared subscriptions (deterministic round-robin),
//! UNSUBSCRIBE, retained messages, PINGREQ/PINGRESP, DISCONNECT. Durable
//! sessions survive broker restarts via [`Broker::export_sessions`] /
//! [`Broker::import_sessions`]. Not supported (out of scope for the
//! testbed): auth.
//!
//! The codec is continuously exercised by a seeded structure-aware fuzzer
//! ([`fuzz`], surfaced as `dbox fuzz`): decode never panics, valid packets
//! round-trip byte-faithfully.

#![warn(missing_docs)]

mod broker;
mod client;
pub mod fuzz;
pub mod packet;
mod topic;

pub use broker::{Broker, BrokerStats, OutboundSnapshot, SessionSnapshot};
pub use client::{ClientEvent, MqttConn};
pub use fuzz::FuzzReport;
pub use packet::{ConnectFlags, Packet, PacketError, QoS};
pub use topic::{matches, parse_share, validate_filter, validate_topic, TopicTrie, SHARE_PREFIX};
