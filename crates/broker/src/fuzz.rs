//! Seeded, structure-aware fuzzer for the MQTT packet codec.
//!
//! Every iteration generates a *valid* packet from a deterministic
//! [`Prng`] stream, proves it round-trips through [`Packet::encode`] /
//! [`Packet::decode`] byte-faithfully, then mutates the encoding
//! (bit flips, truncation, splices, garbage) and feeds the mutant back to
//! the decoder. The decoder must never panic: it either yields a packet —
//! which must then itself re-encode/decode stably — or a typed
//! [`PacketError`](crate::packet::PacketError).
//!
//! The whole run is a pure function of `(seed, iterations)`, so a failing
//! seed is a one-line reproducer, and CI can pin a fixed seed set
//! (`dbox fuzz --seed N --iters M`) without flakes.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use digibox_net::Prng;

use crate::packet::{ConnectFlags, Packet, PacketError, QoS};

/// Outcome of one fuzzing run. All counters are deterministic for a given
/// `(seed, iterations)` pair.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FuzzReport {
    /// Seed the run was keyed by.
    pub seed: u64,
    /// Iterations performed (one generated packet + one mutant each).
    pub iterations: u64,
    /// Valid generated packets that round-tripped exactly.
    pub valid_roundtrips: u64,
    /// Mutants the decoder still accepted (and which then re-encoded
    /// stably).
    pub mutants_accepted: u64,
    /// Mutants the decoder rejected with a typed error.
    pub mutants_rejected: u64,
    /// Rejections bucketed by [`PacketError`](crate::packet::PacketError)
    /// variant name, sorted (BTree) so the report prints deterministically.
    pub rejections: BTreeMap<&'static str, u64>,
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz seed={} iterations={} roundtrips={} mutants_accepted={} mutants_rejected={}",
            self.seed,
            self.iterations,
            self.valid_roundtrips,
            self.mutants_accepted,
            self.mutants_rejected
        )?;
        for (kind, n) in &self.rejections {
            writeln!(f, "  reject {kind}: {n}")?;
        }
        Ok(())
    }
}

/// Stable bucket name for an error variant (payload dropped so the
/// report's histogram stays small and deterministic).
fn error_kind(err: &PacketError) -> &'static str {
    match err {
        PacketError::Truncated => "truncated",
        PacketError::BadPacketType(_) => "bad_packet_type",
        PacketError::BadFlags { .. } => "bad_flags",
        PacketError::BadRemainingLength => "bad_remaining_length",
        PacketError::BadUtf8 => "bad_utf8",
        PacketError::BadQoS(_) => "bad_qos",
        PacketError::BadProtocol => "bad_protocol",
        PacketError::MissingPacketId => "missing_packet_id",
        PacketError::TrailingBytes(_) => "trailing_bytes",
    }
}

/// Topic-flavored string: short, drawn from the characters that exercise
/// the codec's string paths (separators, wildcards, `$`-prefixes).
fn gen_string(rng: &mut Prng, max_len: usize) -> String {
    const ALPHABET: &[u8] = b"abcz019/+#$_- .";
    let len = rng.range_usize(0, max_len + 1);
    (0..len).map(|_| ALPHABET[rng.range_usize(0, ALPHABET.len())] as char).collect()
}

fn gen_payload(rng: &mut Prng, max_len: usize) -> Bytes {
    let len = rng.range_usize(0, max_len + 1);
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(rng.range_u64(0, 256) as u8);
    }
    Bytes::from(v)
}

fn gen_qos(rng: &mut Prng) -> QoS {
    QoS::from_bits(rng.range_u64(0, 3) as u8).expect("0..3 are valid QoS encodings")
}

/// One structurally valid packet, covering every variant the codec speaks.
fn gen_packet(rng: &mut Prng) -> Packet {
    match rng.range_u64(0, 14) {
        0 => Packet::Connect {
            client_id: gen_string(rng, 24),
            flags: ConnectFlags {
                clean_session: rng.coin(),
                will: if rng.coin() {
                    Some((gen_string(rng, 24), gen_payload(rng, 32)))
                } else {
                    None
                },
                keep_alive_secs: rng.range_u64(0, u64::from(u16::MAX) + 1) as u16,
            },
        },
        1 => Packet::ConnAck {
            session_present: rng.coin(),
            code: rng.range_u64(0, 6) as u8,
        },
        2 => {
            let qos = gen_qos(rng);
            Packet::Publish {
                dup: rng.coin(),
                qos,
                retain: rng.coin(),
                topic: gen_string(rng, 40),
                packet_id: if qos == QoS::AtMostOnce {
                    None
                } else {
                    Some(rng.range_u64(0, u64::from(u16::MAX) + 1) as u16)
                },
                payload: gen_payload(rng, 128),
            }
        }
        3 => Packet::PubAck { packet_id: gen_pid(rng) },
        4 => Packet::PubRec { packet_id: gen_pid(rng) },
        5 => Packet::PubRel { packet_id: gen_pid(rng) },
        6 => Packet::PubComp { packet_id: gen_pid(rng) },
        7 => {
            let n = rng.range_usize(0, 5);
            Packet::Subscribe {
                packet_id: gen_pid(rng),
                filters: (0..n).map(|_| (gen_string(rng, 24), gen_qos(rng))).collect(),
            }
        }
        8 => {
            let n = rng.range_usize(0, 5);
            Packet::SubAck {
                packet_id: gen_pid(rng),
                codes: (0..n).map(|_| rng.range_u64(0, 256) as u8).collect(),
            }
        }
        9 => {
            let n = rng.range_usize(0, 5);
            Packet::Unsubscribe {
                packet_id: gen_pid(rng),
                filters: (0..n).map(|_| gen_string(rng, 24)).collect(),
            }
        }
        10 => Packet::UnsubAck { packet_id: gen_pid(rng) },
        11 => Packet::PingReq,
        12 => Packet::PingResp,
        _ => Packet::Disconnect,
    }
}

fn gen_pid(rng: &mut Prng) -> u16 {
    rng.range_u64(0, u64::from(u16::MAX) + 1) as u16
}

/// Mutate a valid encoding: the strategies bias toward the boundaries the
/// decoder checks (header nibbles, length varints, truncation points).
fn mutate(rng: &mut Prng, enc: &[u8]) -> Vec<u8> {
    let mut out = enc.to_vec();
    match rng.range_u64(0, 6) {
        // Flip one bit somewhere.
        0 => {
            let i = rng.range_usize(0, out.len());
            out[i] ^= 1 << rng.range_u64(0, 8);
        }
        // Truncate at a random point (possibly to empty).
        1 => out.truncate(rng.range_usize(0, out.len())),
        // Append trailing garbage.
        2 => {
            for _ in 0..rng.range_usize(1, 9) {
                out.push(rng.range_u64(0, 256) as u8);
            }
        }
        // Overwrite one byte with a fresh value.
        3 => {
            let i = rng.range_usize(0, out.len());
            out[i] = rng.range_u64(0, 256) as u8;
        }
        // Splice a chunk of the packet over itself (length-preserving).
        4 => {
            let src = rng.range_usize(0, out.len());
            let dst = rng.range_usize(0, out.len());
            let n = rng.range_usize(0, out.len() - src.max(dst) + 1);
            let chunk: Vec<u8> = out[src..src + n].to_vec();
            out[dst..dst + n].copy_from_slice(&chunk);
        }
        // Replace with pure garbage.
        _ => {
            let len = rng.range_usize(0, 65);
            out = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
        }
    }
    out
}

/// Run the fuzzer: `iterations` rounds of generate → round-trip →
/// mutate → decode. Panics (with the seed in the message) on the first
/// violated invariant, otherwise returns the run's [`FuzzReport`].
pub fn run(seed: u64, iterations: u64) -> FuzzReport {
    let root = Prng::new(seed);
    let mut gen_rng = root.split_str("fuzz.generate");
    let mut mut_rng = root.split_str("fuzz.mutate");
    let mut report = FuzzReport { seed, iterations, ..FuzzReport::default() };
    for i in 0..iterations {
        let pkt = gen_packet(&mut gen_rng);
        let enc = pkt.encode();
        match Packet::decode(&enc) {
            Ok(back) => assert_eq!(
                back, pkt,
                "round-trip mismatch at seed={seed} iteration={i}"
            ),
            Err(e) => panic!("valid packet failed to decode at seed={seed} iteration={i}: {e}"),
        }
        report.valid_roundtrips += 1;
        let mutant = mutate(&mut mut_rng, &enc);
        match Packet::decode(&mutant) {
            Ok(p2) => {
                // Whatever the decoder accepts must itself be stable
                // under encode/decode (no "valid but unrepresentable"
                // packets).
                let enc2 = p2.encode();
                match Packet::decode(&enc2) {
                    Ok(p3) => assert_eq!(
                        p3, p2,
                        "re-encode instability at seed={seed} iteration={i}"
                    ),
                    Err(e) => panic!(
                        "accepted mutant failed to re-decode at seed={seed} iteration={i}: {e}"
                    ),
                }
                report.mutants_accepted += 1;
            }
            Err(e) => {
                report.mutants_rejected += 1;
                *report.rejections.entry(error_kind(&e)).or_insert(0) += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_smoke_is_deterministic() {
        let a = run(7, 2_000);
        let b = run(7, 2_000);
        assert_eq!(a, b, "same seed must produce an identical report");
        assert_eq!(a.valid_roundtrips, 2_000);
        assert_eq!(a.mutants_accepted + a.mutants_rejected, 2_000);
        assert!(a.mutants_rejected > 0, "mutation never produced an invalid packet");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(1, 500);
        let b = run(2, 500);
        assert_ne!(a.rejections, b.rejections);
    }
}
