//! Client-side MQTT connection state machine, embedded by mocks, scenes
//! and applications (they own the [`digibox_net::Service`] binding and
//! forward datagrams/timers here).

use std::collections::{HashMap, VecDeque}; // keyed lookup only; `dbox audit` (DH0002) checks every iteration site

use bytes::Bytes;

use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Sim, TimerToken};

use crate::packet::{ConnectFlags, Packet, QoS};

/// Events surfaced to the owner of an [`MqttConn`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// CONNACK received; the session is live.
    Connected {
        /// Whether the broker resumed prior session state.
        session_present: bool,
    },
    /// An application message arrived on a subscribed topic.
    Message {
        /// Topic the message was published to.
        topic: String,
        /// Message bytes.
        payload: Bytes,
        /// Whether this was a retained message served on subscribe.
        retain: bool,
    },
    /// The broker acknowledged a subscribe request.
    SubAck {
        /// Id of the subscribe being acknowledged.
        packet_id: u16,
    },
    /// The broker acknowledged a QoS-1 publish.
    PubAck {
        /// Id of the publish being acknowledged.
        packet_id: u16,
    },
    /// The link to the broker failed (retries exhausted).
    BrokerLost,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Connecting,
    Connected,
}

/// An MQTT client connection to one broker.
pub struct MqttConn {
    broker: Addr,
    client_id: String,
    ep: ReliableEndpoint,
    state: State,
    next_pid: u16,
    /// QoS-1 publishes awaiting PUBACK: pid → packet (for observability).
    unacked: HashMap<u16, String>,
    events: VecDeque<ClientEvent>,
}

impl MqttConn {
    /// An idle connection from `local` toward `broker` (no packets sent yet).
    pub fn new(local: Addr, broker: Addr, client_id: &str) -> MqttConn {
        MqttConn {
            broker,
            client_id: client_id.to_string(),
            ep: ReliableEndpoint::new(local).with_space(1),
            state: State::Idle,
            next_pid: 1,
            unacked: HashMap::new(),
            events: VecDeque::new(),
        }
    }

    /// This session's client identifier.
    pub fn client_id(&self) -> &str {
        &self.client_id
    }

    /// The broker address this connection points at.
    pub fn broker(&self) -> Addr {
        self.broker
    }

    /// Whether a CONNACK has been received.
    pub fn is_connected(&self) -> bool {
        self.state == State::Connected
    }

    /// Number of QoS-1 publishes not yet acknowledged.
    pub fn unacked_publishes(&self) -> usize {
        self.unacked.len()
    }

    fn next_pid(&mut self) -> u16 {
        let pid = self.next_pid;
        self.next_pid = self.next_pid.checked_add(1).unwrap_or(1);
        pid
    }

    fn send_packet(&mut self, sim: &mut Sim, pkt: &Packet) {
        let broker = self.broker;
        self.ep.send(sim, broker, pkt.encode());
    }

    /// Open the session (CONNECT). `will` is the optional last-will message.
    pub fn connect(&mut self, sim: &mut Sim, will: Option<(String, Bytes)>) {
        self.state = State::Connecting;
        let pkt = Packet::Connect {
            client_id: self.client_id.clone(),
            flags: ConnectFlags { clean_session: true, will, keep_alive_secs: 60 },
        };
        self.send_packet(sim, &pkt);
    }

    /// Subscribe to topic filters; returns the packet id to correlate the
    /// eventual [`ClientEvent::SubAck`].
    pub fn subscribe(&mut self, sim: &mut Sim, filters: &[(&str, QoS)]) -> u16 {
        let pid = self.next_pid();
        let pkt = Packet::Subscribe {
            packet_id: pid,
            filters: filters.iter().map(|(f, q)| (f.to_string(), *q)).collect(),
        };
        self.send_packet(sim, &pkt);
        pid
    }

    /// Remove topic filters; returns the UNSUBSCRIBE packet id.
    pub fn unsubscribe(&mut self, sim: &mut Sim, filters: &[&str]) -> u16 {
        let pid = self.next_pid();
        let pkt = Packet::Unsubscribe {
            packet_id: pid,
            filters: filters.iter().map(|s| s.to_string()).collect(),
        };
        self.send_packet(sim, &pkt);
        pid
    }

    /// Publish. Returns the packet id for QoS-1 publishes.
    pub fn publish(
        &mut self,
        sim: &mut Sim,
        topic: &str,
        payload: impl Into<Bytes>,
        qos: QoS,
        retain: bool,
    ) -> Option<u16> {
        let packet_id = match qos {
            QoS::AtMostOnce => None,
            QoS::AtLeastOnce => Some(self.next_pid()),
        };
        if let Some(pid) = packet_id {
            self.unacked.insert(pid, topic.to_string());
        }
        let pkt = Packet::Publish {
            dup: false,
            qos,
            retain,
            topic: topic.to_string(),
            packet_id,
            payload: payload.into(),
        };
        self.send_packet(sim, &pkt);
        packet_id
    }

    /// Send a keep-alive probe.
    pub fn ping(&mut self, sim: &mut Sim) {
        self.send_packet(sim, &Packet::PingReq);
    }

    /// Graceful teardown (broker discards the last-will).
    pub fn disconnect(&mut self, sim: &mut Sim) {
        self.send_packet(sim, &Packet::Disconnect);
        self.state = State::Idle;
    }

    /// Feed a datagram from the owning service. Returns true when consumed.
    pub fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) -> bool {
        if dg.src != self.broker {
            return false;
        }
        if !self.ep.on_datagram(sim, dg) {
            return false;
        }
        self.pump(sim);
        true
    }

    /// Feed a timer token. Returns true when it belonged to the transport.
    pub fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) -> bool {
        let mine = self.ep.on_timer(sim, token);
        if mine {
            self.pump(sim);
        }
        mine
    }

    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.ep.poll() {
            match ev {
                TransportEvent::Delivered { payload, .. } => match Packet::decode(&payload) {
                    Ok(pkt) => self.handle_packet(sim, pkt),
                    Err(_) => { /* count and drop malformed broker frames */ }
                },
                TransportEvent::PeerFailed { .. } => {
                    self.state = State::Idle;
                    self.events.push_back(ClientEvent::BrokerLost);
                }
            }
        }
    }

    fn handle_packet(&mut self, sim: &mut Sim, pkt: Packet) {
        match pkt {
            Packet::ConnAck { session_present, code: 0 } => {
                self.state = State::Connected;
                self.events.push_back(ClientEvent::Connected { session_present });
            }
            Packet::ConnAck { .. } => {
                self.state = State::Idle;
                self.events.push_back(ClientEvent::BrokerLost);
            }
            Packet::Publish { topic, payload, retain, qos, packet_id, .. } => {
                // QoS-1 inbound: acknowledge before surfacing.
                if qos == QoS::AtLeastOnce {
                    if let Some(pid) = packet_id {
                        self.send_packet(sim, &Packet::PubAck { packet_id: pid });
                    }
                }
                self.events.push_back(ClientEvent::Message { topic, payload, retain });
            }
            Packet::PubAck { packet_id } => {
                self.unacked.remove(&packet_id);
                self.events.push_back(ClientEvent::PubAck { packet_id });
            }
            Packet::SubAck { packet_id, .. } => {
                self.events.push_back(ClientEvent::SubAck { packet_id });
            }
            Packet::UnsubAck { .. } | Packet::PingResp => {}
            // Broker-side keep-alive probe: answer so the session's idle
            // clock resets (the transport ACK alone already proves
            // liveness, but the response keeps probe traffic symmetric).
            Packet::PingReq => self.send_packet(sim, &Packet::PingResp),
            // Packets only a client sends — ignore if a confused peer sends them.
            _ => {}
        }
    }

    /// Pop the next pending event.
    pub fn poll(&mut self) -> Option<ClientEvent> {
        self.events.pop_front()
    }
}
