//! Client-side MQTT connection state machine, embedded by mocks, scenes
//! and applications (they own the [`digibox_net::Service`] binding and
//! forward datagrams/timers here).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;

use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Sim, TimerToken};

use crate::packet::{ConnectFlags, Packet, QoS};

/// Events surfaced to the owner of an [`MqttConn`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// CONNACK received; the session is live.
    Connected {
        /// Whether the broker resumed prior session state.
        session_present: bool,
    },
    /// An application message arrived on a subscribed topic.
    Message {
        /// Topic the message was published to.
        topic: String,
        /// Message bytes.
        payload: Bytes,
        /// Whether this was a retained message served on subscribe.
        retain: bool,
    },
    /// The broker acknowledged a subscribe request.
    SubAck {
        /// Id of the subscribe being acknowledged.
        packet_id: u16,
    },
    /// The broker acknowledged a QoS-1 publish.
    PubAck {
        /// Id of the publish being acknowledged.
        packet_id: u16,
    },
    /// A QoS-2 publish completed its four-way handshake (PUBCOMP received).
    PubComp {
        /// Id of the publish whose handshake completed.
        packet_id: u16,
    },
    /// The link to the broker failed (retries exhausted).
    BrokerLost,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Connecting,
    Connected,
}

/// Where an outbound QoS 1/2 publish sits in its acknowledgement handshake.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OutboundState {
    /// QoS 1: waiting for PUBACK.
    AwaitPubAck,
    /// QoS 2: waiting for PUBREC (the publish itself may need a DUP resend).
    AwaitPubRec,
    /// QoS 2: PUBREL sent, waiting for PUBCOMP.
    AwaitPubComp,
}

/// An in-flight outbound publish, kept until its handshake completes so
/// it can be retransmitted with DUP after a session resumption.
#[derive(Debug, Clone)]
struct OutboundPublish {
    topic: String,
    payload: Bytes,
    qos: QoS,
    retain: bool,
    state: OutboundState,
}

/// An MQTT client connection to one broker.
pub struct MqttConn {
    broker: Addr,
    client_id: String,
    ep: ReliableEndpoint,
    state: State,
    clean_session: bool,
    next_pid: u16,
    /// QoS 1/2 publishes whose handshake is incomplete, in pid order so
    /// resumption retransmits deterministically.
    outbound: BTreeMap<u16, OutboundPublish>,
    /// Packet ids of inbound QoS-2 publishes received but not yet
    /// released (PUBREL pending) — the receiver-side dedup set.
    inbound_rec: BTreeSet<u16>,
    events: VecDeque<ClientEvent>,
}

impl MqttConn {
    /// An idle connection from `local` toward `broker` (no packets sent yet).
    pub fn new(local: Addr, broker: Addr, client_id: &str) -> MqttConn {
        MqttConn {
            broker,
            client_id: client_id.to_string(),
            ep: ReliableEndpoint::new(local).with_space(1),
            state: State::Idle,
            clean_session: true,
            next_pid: 1,
            outbound: BTreeMap::new(),
            inbound_rec: BTreeSet::new(),
            events: VecDeque::new(),
        }
    }

    /// This session's client identifier.
    pub fn client_id(&self) -> &str {
        &self.client_id
    }

    /// The broker address this connection points at.
    pub fn broker(&self) -> Addr {
        self.broker
    }

    /// Whether a CONNACK has been received.
    pub fn is_connected(&self) -> bool {
        self.state == State::Connected
    }

    /// Number of QoS 1/2 publishes whose handshake is not yet complete.
    pub fn unacked_publishes(&self) -> usize {
        self.outbound.len()
    }

    fn next_pid(&mut self) -> u16 {
        let pid = self.next_pid;
        self.next_pid = self.next_pid.checked_add(1).unwrap_or(1);
        pid
    }

    fn send_packet(&mut self, sim: &mut Sim, pkt: &Packet) {
        let broker = self.broker;
        self.ep.send(sim, broker, pkt.encode());
    }

    /// Open the session (CONNECT). `will` is the optional last-will
    /// message. The session is clean unless [`MqttConn::connect_persistent`]
    /// was used for this connection.
    pub fn connect(&mut self, sim: &mut Sim, will: Option<(String, Bytes)>) {
        self.state = State::Connecting;
        let pkt = Packet::Connect {
            client_id: self.client_id.clone(),
            flags: ConnectFlags {
                clean_session: self.clean_session,
                will,
                keep_alive_secs: 60,
            },
        };
        self.send_packet(sim, &pkt);
    }

    /// Open a *persistent* session (CONNECT with `clean_session = false`):
    /// the broker retains subscriptions and in-flight QoS 1/2 state across
    /// disconnects, and CONNACK reports `session_present = true` on
    /// resumption. All later `connect` calls on this connection stay
    /// persistent.
    pub fn connect_persistent(&mut self, sim: &mut Sim, will: Option<(String, Bytes)>) {
        self.clean_session = false;
        self.connect(sim, will);
    }

    /// Subscribe to topic filters; returns the packet id to correlate the
    /// eventual [`ClientEvent::SubAck`].
    pub fn subscribe(&mut self, sim: &mut Sim, filters: &[(&str, QoS)]) -> u16 {
        let pid = self.next_pid();
        let pkt = Packet::Subscribe {
            packet_id: pid,
            filters: filters.iter().map(|(f, q)| (f.to_string(), *q)).collect(),
        };
        self.send_packet(sim, &pkt);
        pid
    }

    /// Remove topic filters; returns the UNSUBSCRIBE packet id.
    pub fn unsubscribe(&mut self, sim: &mut Sim, filters: &[&str]) -> u16 {
        let pid = self.next_pid();
        let pkt = Packet::Unsubscribe {
            packet_id: pid,
            filters: filters.iter().map(|s| s.to_string()).collect(),
        };
        self.send_packet(sim, &pkt);
        pid
    }

    /// Publish. Returns the packet id for QoS 1/2 publishes.
    pub fn publish(
        &mut self,
        sim: &mut Sim,
        topic: &str,
        payload: impl Into<Bytes>,
        qos: QoS,
        retain: bool,
    ) -> Option<u16> {
        let payload = payload.into();
        let packet_id = match qos {
            QoS::AtMostOnce => None,
            QoS::AtLeastOnce | QoS::ExactlyOnce => Some(self.next_pid()),
        };
        if let Some(pid) = packet_id {
            self.outbound.insert(
                pid,
                OutboundPublish {
                    topic: topic.to_string(),
                    payload: payload.clone(),
                    qos,
                    retain,
                    state: if qos == QoS::AtLeastOnce {
                        OutboundState::AwaitPubAck
                    } else {
                        OutboundState::AwaitPubRec
                    },
                },
            );
        }
        let pkt = Packet::Publish {
            dup: false,
            qos,
            retain,
            topic: topic.to_string(),
            packet_id,
            payload,
        };
        self.send_packet(sim, &pkt);
        packet_id
    }

    /// Send a keep-alive probe.
    pub fn ping(&mut self, sim: &mut Sim) {
        self.send_packet(sim, &Packet::PingReq);
    }

    /// Graceful teardown (broker discards the last-will).
    pub fn disconnect(&mut self, sim: &mut Sim) {
        self.send_packet(sim, &Packet::Disconnect);
        self.state = State::Idle;
    }

    /// Feed a datagram from the owning service. Returns true when consumed.
    pub fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) -> bool {
        if dg.src != self.broker {
            return false;
        }
        if !self.ep.on_datagram(sim, dg) {
            return false;
        }
        self.pump(sim);
        true
    }

    /// Feed a timer token. Returns true when it belonged to the transport.
    pub fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) -> bool {
        let mine = self.ep.on_timer(sim, token);
        if mine {
            self.pump(sim);
        }
        mine
    }

    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.ep.poll() {
            match ev {
                TransportEvent::Delivered { payload, .. } => match Packet::decode(&payload) {
                    Ok(pkt) => self.handle_packet(sim, pkt),
                    Err(_) => { /* count and drop malformed broker frames */ }
                },
                TransportEvent::PeerFailed { .. } => {
                    self.state = State::Idle;
                    self.events.push_back(ClientEvent::BrokerLost);
                }
            }
        }
    }

    /// Retransmit in-flight QoS 1/2 state after the broker resumed our
    /// session: unacknowledged publishes go out again with DUP set, and
    /// half-released QoS 2 pids re-send their PUBREL. Pid order (BTreeMap)
    /// keeps the retransmit schedule deterministic.
    fn retransmit_inflight(&mut self, sim: &mut Sim) {
        let pids: Vec<u16> = self.outbound.keys().copied().collect();
        for pid in pids {
            let ob = self.outbound[&pid].clone();
            match ob.state {
                OutboundState::AwaitPubAck | OutboundState::AwaitPubRec => {
                    let pkt = Packet::Publish {
                        dup: true,
                        qos: ob.qos,
                        retain: ob.retain,
                        topic: ob.topic,
                        packet_id: Some(pid),
                        payload: ob.payload,
                    };
                    self.send_packet(sim, &pkt);
                }
                OutboundState::AwaitPubComp => {
                    self.send_packet(sim, &Packet::PubRel { packet_id: pid });
                }
            }
        }
    }

    fn handle_packet(&mut self, sim: &mut Sim, pkt: Packet) {
        match pkt {
            Packet::ConnAck { session_present, code: 0 } => {
                self.state = State::Connected;
                if session_present {
                    self.retransmit_inflight(sim);
                } else {
                    // The broker kept nothing; our half of the old
                    // session dies with it (spec §3.1.2-6).
                    self.outbound.clear();
                    self.inbound_rec.clear();
                }
                self.events.push_back(ClientEvent::Connected { session_present });
            }
            Packet::ConnAck { .. } => {
                self.state = State::Idle;
                self.events.push_back(ClientEvent::BrokerLost);
            }
            Packet::Publish { topic, payload, retain, qos, packet_id, .. } => {
                match qos {
                    QoS::AtMostOnce => {
                        self.events.push_back(ClientEvent::Message { topic, payload, retain });
                    }
                    // QoS-1 inbound: acknowledge before surfacing.
                    QoS::AtLeastOnce => {
                        if let Some(pid) = packet_id {
                            self.send_packet(sim, &Packet::PubAck { packet_id: pid });
                        }
                        self.events.push_back(ClientEvent::Message { topic, payload, retain });
                    }
                    // QoS-2 inbound: surface on *first* receipt only; a
                    // re-received pid (DUP after resumption) is answered
                    // with PUBREC again but never re-surfaced.
                    QoS::ExactlyOnce => {
                        let Some(pid) = packet_id else { return };
                        if self.inbound_rec.insert(pid) {
                            self.events.push_back(ClientEvent::Message { topic, payload, retain });
                        }
                        self.send_packet(sim, &Packet::PubRec { packet_id: pid });
                    }
                }
            }
            Packet::PubAck { packet_id } => {
                self.outbound.remove(&packet_id);
                self.events.push_back(ClientEvent::PubAck { packet_id });
            }
            Packet::PubRec { packet_id } => {
                if let Some(ob) = self.outbound.get_mut(&packet_id) {
                    ob.state = OutboundState::AwaitPubComp;
                }
                self.send_packet(sim, &Packet::PubRel { packet_id });
            }
            Packet::PubRel { packet_id } => {
                self.inbound_rec.remove(&packet_id);
                self.send_packet(sim, &Packet::PubComp { packet_id });
            }
            Packet::PubComp { packet_id } => {
                if self.outbound.remove(&packet_id).is_some() {
                    self.events.push_back(ClientEvent::PubComp { packet_id });
                }
            }
            Packet::SubAck { packet_id, .. } => {
                self.events.push_back(ClientEvent::SubAck { packet_id });
            }
            Packet::UnsubAck { .. } | Packet::PingResp => {}
            // Broker-side keep-alive probe: answer so the session's idle
            // clock resets (the transport ACK alone already proves
            // liveness, but the response keeps probe traffic symmetric).
            Packet::PingReq => self.send_packet(sim, &Packet::PingResp),
            // Packets only a client sends — ignore if a confused peer sends them.
            _ => {}
        }
    }

    /// Pop the next pending event.
    pub fn poll(&mut self) -> Option<ClientEvent> {
        self.events.pop_front()
    }
}
