//! MQTT 3.1.1-subset packet codec.
//!
//! Wire format follows the OASIS spec for the packet types Digibox uses:
//! fixed header (type + flags, varint remaining length), UTF-8 length-
//! prefixed strings, u16 packet identifiers.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Quality of service for a publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QoS {
    /// Fire and forget.
    AtMostOnce = 0,
    /// Acknowledged via PUBACK; may be redelivered with DUP.
    AtLeastOnce = 1,
    /// Exactly-once via the PUBREC/PUBREL/PUBCOMP four-way handshake.
    ExactlyOnce = 2,
}

impl QoS {
    /// Decode the 2-bit wire encoding; `None` for the reserved value 3.
    pub fn from_bits(bits: u8) -> Option<QoS> {
        match bits {
            0 => Some(QoS::AtMostOnce),
            1 => Some(QoS::AtLeastOnce),
            2 => Some(QoS::ExactlyOnce),
            _ => None, // 3 is reserved by the spec
        }
    }
}

/// CONNECT options.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConnectFlags {
    /// Discard any previous session state for this client id.
    pub clean_session: bool,
    /// Last-will: published by the broker when the session dies unexpectedly.
    pub will: Option<(String, Bytes)>,
    /// Keep-alive interval in seconds (0 = disabled).
    pub keep_alive_secs: u16,
}

/// The MQTT packets Digibox speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Client session open.
    Connect {
        /// Unique client identifier.
        client_id: String,
        /// Session options (clean-session, will, keep-alive).
        flags: ConnectFlags,
    },
    /// Broker's reply to CONNECT.
    ConnAck {
        /// Whether prior session state was resumed.
        session_present: bool,
        /// Return code (0 = accepted).
        code: u8,
    },
    /// An application message.
    Publish {
        /// Redelivery flag (QoS 1/2 retransmits).
        dup: bool,
        /// Delivery guarantee for this message.
        qos: QoS,
        /// Store as the topic's retained message.
        retain: bool,
        /// Destination topic.
        topic: String,
        /// Acknowledgement id; present iff QoS > 0.
        packet_id: Option<u16>,
        /// Message bytes.
        payload: Bytes,
    },
    /// QoS 1 publish acknowledgement.
    PubAck {
        /// Id of the publish being acknowledged.
        packet_id: u16,
    },
    /// QoS 2 step 1: receiver has stored the publish (assured receipt).
    PubRec {
        /// Id of the publish being acknowledged.
        packet_id: u16,
    },
    /// QoS 2 step 2: sender releases the packet id for delivery.
    PubRel {
        /// Id of the publish being released.
        packet_id: u16,
    },
    /// QoS 2 step 3: receiver has finished with the packet id.
    PubComp {
        /// Id of the publish whose handshake is complete.
        packet_id: u16,
    },
    /// Subscription request.
    Subscribe {
        /// Acknowledgement id.
        packet_id: u16,
        /// `(topic filter, requested QoS)` pairs.
        filters: Vec<(String, QoS)>,
    },
    /// Broker's reply to SUBSCRIBE.
    SubAck {
        /// Id of the subscribe being acknowledged.
        packet_id: u16,
        /// Granted QoS per filter, in request order.
        codes: Vec<u8>,
    },
    /// Unsubscription request.
    Unsubscribe {
        /// Acknowledgement id.
        packet_id: u16,
        /// Topic filters to remove.
        filters: Vec<String>,
    },
    /// Broker's reply to UNSUBSCRIBE.
    UnsubAck {
        /// Id of the unsubscribe being acknowledged.
        packet_id: u16,
    },
    /// Keep-alive probe.
    PingReq,
    /// Keep-alive reply.
    PingResp,
    /// Graceful session close (suppresses the will).
    Disconnect,
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketError {
    /// Buffer ended before the packet did.
    Truncated,
    /// Unknown packet type nibble.
    BadPacketType(u8),
    /// Fixed-header flags invalid for the packet type.
    BadFlags {
        /// The packet type nibble.
        packet_type: u8,
        /// The offending flag bits.
        flags: u8,
    },
    /// Remaining-length varint over 4 bytes.
    BadRemainingLength,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// QoS bits set to the reserved value 3.
    BadQoS(u8),
    /// Protocol name/level other than `MQTT` 3.1.1.
    BadProtocol,
    /// A QoS>0 publish without a packet id (or vice versa).
    MissingPacketId,
    /// Bytes left over after the declared packet length.
    TrailingBytes(usize),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "packet truncated"),
            PacketError::BadPacketType(t) => write!(f, "unknown packet type {t}"),
            PacketError::BadFlags { packet_type, flags } => {
                write!(f, "invalid flags {flags:#06b} for packet type {packet_type}")
            }
            PacketError::BadRemainingLength => write!(f, "invalid remaining-length encoding"),
            PacketError::BadUtf8 => write!(f, "string field is not valid utf-8"),
            PacketError::BadQoS(q) => write!(f, "unsupported qos {q}"),
            PacketError::BadProtocol => write!(f, "unsupported protocol name/level"),
            PacketError::MissingPacketId => write!(f, "qos>0 publish requires a packet id"),
            PacketError::TrailingBytes(n) => write!(f, "{n} unexpected trailing bytes"),
        }
    }
}

impl std::error::Error for PacketError {}

const TYPE_CONNECT: u8 = 1;
const TYPE_CONNACK: u8 = 2;
const TYPE_PUBLISH: u8 = 3;
const TYPE_PUBACK: u8 = 4;
const TYPE_PUBREC: u8 = 5;
const TYPE_PUBREL: u8 = 6;
const TYPE_PUBCOMP: u8 = 7;
const TYPE_SUBSCRIBE: u8 = 8;
const TYPE_SUBACK: u8 = 9;
const TYPE_UNSUBSCRIBE: u8 = 10;
const TYPE_UNSUBACK: u8 = 11;
const TYPE_PINGREQ: u8 = 12;
const TYPE_PINGRESP: u8 = 13;
const TYPE_DISCONNECT: u8 = 14;

const CONNECT_FLAG_CLEAN: u8 = 0x02;
const CONNECT_FLAG_WILL: u8 = 0x04;

impl Packet {
    /// Encode into a standalone byte buffer (fixed header + body).
    pub fn encode(&self) -> Bytes {
        let body = self.encode_body();
        let (ptype, flags) = self.type_and_flags();
        let mut out = BytesMut::with_capacity(body.len() + 5);
        out.put_u8((ptype << 4) | flags);
        put_remaining_length(&mut out, body.len());
        out.put_slice(&body);
        out.freeze()
    }

    fn type_and_flags(&self) -> (u8, u8) {
        match self {
            Packet::Connect { .. } => (TYPE_CONNECT, 0),
            Packet::ConnAck { .. } => (TYPE_CONNACK, 0),
            Packet::Publish { dup, qos, retain, .. } => {
                let mut f = 0u8;
                if *dup {
                    f |= 0b1000;
                }
                f |= (*qos as u8) << 1;
                if *retain {
                    f |= 0b0001;
                }
                (TYPE_PUBLISH, f)
            }
            Packet::PubAck { .. } => (TYPE_PUBACK, 0),
            Packet::PubRec { .. } => (TYPE_PUBREC, 0),
            Packet::PubRel { .. } => (TYPE_PUBREL, 0b0010),
            Packet::PubComp { .. } => (TYPE_PUBCOMP, 0),
            Packet::Subscribe { .. } => (TYPE_SUBSCRIBE, 0b0010),
            Packet::SubAck { .. } => (TYPE_SUBACK, 0),
            Packet::Unsubscribe { .. } => (TYPE_UNSUBSCRIBE, 0b0010),
            Packet::UnsubAck { .. } => (TYPE_UNSUBACK, 0),
            Packet::PingReq => (TYPE_PINGREQ, 0),
            Packet::PingResp => (TYPE_PINGRESP, 0),
            Packet::Disconnect => (TYPE_DISCONNECT, 0),
        }
    }

    fn encode_body(&self) -> BytesMut {
        let mut b = BytesMut::new();
        match self {
            Packet::Connect { client_id, flags } => {
                put_string(&mut b, "MQTT");
                b.put_u8(4); // protocol level 3.1.1
                let mut cf = 0u8;
                if flags.clean_session {
                    cf |= CONNECT_FLAG_CLEAN;
                }
                if flags.will.is_some() {
                    cf |= CONNECT_FLAG_WILL;
                }
                b.put_u8(cf);
                b.put_u16(flags.keep_alive_secs);
                put_string(&mut b, client_id);
                if let Some((topic, payload)) = &flags.will {
                    put_string(&mut b, topic);
                    b.put_u16(payload.len() as u16);
                    b.put_slice(payload);
                }
            }
            Packet::ConnAck { session_present, code } => {
                b.put_u8(u8::from(*session_present));
                b.put_u8(*code);
            }
            Packet::Publish { topic, packet_id, payload, qos, .. } => {
                put_string(&mut b, topic);
                if *qos != QoS::AtMostOnce {
                    b.put_u16(packet_id.expect("qos>0 publish needs a packet id"));
                }
                b.put_slice(payload);
            }
            Packet::PubAck { packet_id }
            | Packet::PubRec { packet_id }
            | Packet::PubRel { packet_id }
            | Packet::PubComp { packet_id }
            | Packet::UnsubAck { packet_id } => {
                b.put_u16(*packet_id);
            }
            Packet::Subscribe { packet_id, filters } => {
                b.put_u16(*packet_id);
                for (f, q) in filters {
                    put_string(&mut b, f);
                    b.put_u8(*q as u8);
                }
            }
            Packet::SubAck { packet_id, codes } => {
                b.put_u16(*packet_id);
                for c in codes {
                    b.put_u8(*c);
                }
            }
            Packet::Unsubscribe { packet_id, filters } => {
                b.put_u16(*packet_id);
                for f in filters {
                    put_string(&mut b, f);
                }
            }
            Packet::PingReq | Packet::PingResp | Packet::Disconnect => {}
        }
        b
    }

    /// Decode a standalone packet; the buffer must contain exactly one
    /// packet (our transport preserves message boundaries).
    pub fn decode(buf: &[u8]) -> Result<Packet, PacketError> {
        let mut cur = buf;
        if cur.remaining() < 2 {
            return Err(PacketError::Truncated);
        }
        let first = cur.get_u8();
        let ptype = first >> 4;
        let flags = first & 0x0F;
        let remaining = get_remaining_length(&mut cur)?;
        if cur.remaining() < remaining {
            return Err(PacketError::Truncated);
        }
        if cur.remaining() > remaining {
            return Err(PacketError::TrailingBytes(cur.remaining() - remaining));
        }
        let mut body = &cur[..remaining];
        let pkt = match ptype {
            TYPE_CONNECT => {
                expect_flags(ptype, flags, 0)?;
                let proto = get_string(&mut body)?;
                let level = get_u8(&mut body)?;
                if proto != "MQTT" || level != 4 {
                    return Err(PacketError::BadProtocol);
                }
                let cf = get_u8(&mut body)?;
                let keep_alive_secs = get_u16(&mut body)?;
                let client_id = get_string(&mut body)?;
                let will = if cf & CONNECT_FLAG_WILL != 0 {
                    let topic = get_string(&mut body)?;
                    let len = get_u16(&mut body)? as usize;
                    if body.remaining() < len {
                        return Err(PacketError::Truncated);
                    }
                    let payload = Bytes::copy_from_slice(&body[..len]);
                    body.advance(len);
                    Some((topic, payload))
                } else {
                    None
                };
                Packet::Connect {
                    client_id,
                    flags: ConnectFlags {
                        clean_session: cf & CONNECT_FLAG_CLEAN != 0,
                        will,
                        keep_alive_secs,
                    },
                }
            }
            TYPE_CONNACK => {
                expect_flags(ptype, flags, 0)?;
                let sp = get_u8(&mut body)?;
                let code = get_u8(&mut body)?;
                Packet::ConnAck { session_present: sp != 0, code }
            }
            TYPE_PUBLISH => {
                let dup = flags & 0b1000 != 0;
                let retain = flags & 0b0001 != 0;
                let qos = QoS::from_bits((flags >> 1) & 0b11)
                    .ok_or(PacketError::BadQoS((flags >> 1) & 0b11))?;
                let topic = get_string(&mut body)?;
                let packet_id = if qos != QoS::AtMostOnce {
                    Some(get_u16(&mut body)?)
                } else {
                    None
                };
                let payload = Bytes::copy_from_slice(body);
                body = &body[body.len()..];
                Packet::Publish { dup, qos, retain, topic, packet_id, payload }
            }
            TYPE_PUBACK => {
                expect_flags(ptype, flags, 0)?;
                Packet::PubAck { packet_id: get_u16(&mut body)? }
            }
            TYPE_PUBREC => {
                expect_flags(ptype, flags, 0)?;
                Packet::PubRec { packet_id: get_u16(&mut body)? }
            }
            TYPE_PUBREL => {
                // the spec reserves flags 0b0010 for PUBREL, like SUBSCRIBE
                expect_flags(ptype, flags, 0b0010)?;
                Packet::PubRel { packet_id: get_u16(&mut body)? }
            }
            TYPE_PUBCOMP => {
                expect_flags(ptype, flags, 0)?;
                Packet::PubComp { packet_id: get_u16(&mut body)? }
            }
            TYPE_SUBSCRIBE => {
                expect_flags(ptype, flags, 0b0010)?;
                let packet_id = get_u16(&mut body)?;
                let mut filters = Vec::new();
                while body.has_remaining() {
                    let f = get_string(&mut body)?;
                    let q = get_u8(&mut body)?;
                    filters.push((f, QoS::from_bits(q).ok_or(PacketError::BadQoS(q))?));
                }
                Packet::Subscribe { packet_id, filters }
            }
            TYPE_SUBACK => {
                expect_flags(ptype, flags, 0)?;
                let packet_id = get_u16(&mut body)?;
                let codes = body.to_vec();
                body = &body[body.len()..];
                Packet::SubAck { packet_id, codes }
            }
            TYPE_UNSUBSCRIBE => {
                expect_flags(ptype, flags, 0b0010)?;
                let packet_id = get_u16(&mut body)?;
                let mut filters = Vec::new();
                while body.has_remaining() {
                    filters.push(get_string(&mut body)?);
                }
                Packet::Unsubscribe { packet_id, filters }
            }
            TYPE_UNSUBACK => {
                expect_flags(ptype, flags, 0)?;
                Packet::UnsubAck { packet_id: get_u16(&mut body)? }
            }
            TYPE_PINGREQ => {
                expect_flags(ptype, flags, 0)?;
                Packet::PingReq
            }
            TYPE_PINGRESP => {
                expect_flags(ptype, flags, 0)?;
                Packet::PingResp
            }
            TYPE_DISCONNECT => {
                expect_flags(ptype, flags, 0)?;
                Packet::Disconnect
            }
            other => return Err(PacketError::BadPacketType(other)),
        };
        if body.has_remaining() {
            return Err(PacketError::TrailingBytes(body.remaining()));
        }
        Ok(pkt)
    }
}

fn expect_flags(packet_type: u8, flags: u8, expected: u8) -> Result<(), PacketError> {
    if flags == expected {
        Ok(())
    } else {
        Err(PacketError::BadFlags { packet_type, flags })
    }
}

fn put_remaining_length(b: &mut BytesMut, mut len: usize) {
    loop {
        let mut byte = (len % 128) as u8;
        len /= 128;
        if len > 0 {
            byte |= 0x80;
        }
        b.put_u8(byte);
        if len == 0 {
            break;
        }
    }
}

fn get_remaining_length(cur: &mut &[u8]) -> Result<usize, PacketError> {
    let mut multiplier = 1usize;
    let mut value = 0usize;
    for _ in 0..4 {
        if !cur.has_remaining() {
            return Err(PacketError::Truncated);
        }
        let byte = cur.get_u8();
        value += (byte & 0x7F) as usize * multiplier;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        multiplier *= 128;
    }
    Err(PacketError::BadRemainingLength)
}

fn put_string(b: &mut BytesMut, s: &str) {
    b.put_u16(s.len() as u16);
    b.put_slice(s.as_bytes());
}

fn get_string(cur: &mut &[u8]) -> Result<String, PacketError> {
    let len = get_u16(cur)? as usize;
    if cur.remaining() < len {
        return Err(PacketError::Truncated);
    }
    let s = std::str::from_utf8(&cur[..len]).map_err(|_| PacketError::BadUtf8)?.to_string();
    cur.advance(len);
    Ok(s)
}

fn get_u8(cur: &mut &[u8]) -> Result<u8, PacketError> {
    if !cur.has_remaining() {
        return Err(PacketError::Truncated);
    }
    Ok(cur.get_u8())
}

fn get_u16(cur: &mut &[u8]) -> Result<u16, PacketError> {
    if cur.remaining() < 2 {
        return Err(PacketError::Truncated);
    }
    Ok(cur.get_u16())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(p: Packet) {
        let enc = p.encode();
        let back = Packet::decode(&enc).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn connect_roundtrip() {
        roundtrip(Packet::Connect {
            client_id: "mock/O1".into(),
            flags: ConnectFlags { clean_session: true, will: None, keep_alive_secs: 30 },
        });
        roundtrip(Packet::Connect {
            client_id: "mock/L1".into(),
            flags: ConnectFlags {
                clean_session: false,
                will: Some(("digibox/lwt/L1".into(), Bytes::from_static(b"offline"))),
                keep_alive_secs: 0,
            },
        });
    }

    #[test]
    fn publish_roundtrip_qos0_and_1() {
        roundtrip(Packet::Publish {
            dup: false,
            qos: QoS::AtMostOnce,
            retain: true,
            topic: "digibox/mock/O1/status".into(),
            packet_id: None,
            payload: Bytes::from_static(b"{\"triggered\":true}"),
        });
        roundtrip(Packet::Publish {
            dup: true,
            qos: QoS::AtLeastOnce,
            retain: false,
            topic: "digibox/scene/room/event".into(),
            packet_id: Some(77),
            payload: Bytes::from_static(b"x"),
        });
    }

    #[test]
    fn publish_roundtrip_qos2() {
        roundtrip(Packet::Publish {
            dup: false,
            qos: QoS::ExactlyOnce,
            retain: false,
            topic: "digibox/meter/M1/reading".into(),
            packet_id: Some(9),
            payload: Bytes::from_static(b"{\"kwh\":41}"),
        });
        roundtrip(Packet::PubRec { packet_id: 9 });
        roundtrip(Packet::PubRel { packet_id: 9 });
        roundtrip(Packet::PubComp { packet_id: 9 });
    }

    #[test]
    fn pubrel_requires_reserved_flags() {
        // PUBREL must carry fixed-header flags 0b0010; the encoder sets
        // them and the decoder rejects anything else.
        let enc = Packet::PubRel { packet_id: 5 }.encode();
        assert_eq!(enc[0], (TYPE_PUBREL << 4) | 0b0010);
        let mut bad = enc.to_vec();
        bad[0] = TYPE_PUBREL << 4; // flags 0
        assert!(matches!(
            Packet::decode(&bad),
            Err(PacketError::BadFlags { packet_type: TYPE_PUBREL, flags: 0 })
        ));
    }

    #[test]
    fn subscribe_suback_roundtrip() {
        roundtrip(Packet::Subscribe {
            packet_id: 3,
            filters: vec![
                ("digibox/mock/+/status".into(), QoS::AtLeastOnce),
                ("digibox/#".into(), QoS::AtMostOnce),
            ],
        });
        roundtrip(Packet::SubAck { packet_id: 3, codes: vec![1, 0] });
        roundtrip(Packet::Unsubscribe { packet_id: 4, filters: vec!["a/b".into()] });
        roundtrip(Packet::UnsubAck { packet_id: 4 });
    }

    #[test]
    fn control_packets_roundtrip() {
        roundtrip(Packet::PingReq);
        roundtrip(Packet::PingResp);
        roundtrip(Packet::Disconnect);
        roundtrip(Packet::ConnAck { session_present: true, code: 0 });
        roundtrip(Packet::PubAck { packet_id: 65535 });
    }

    #[test]
    fn remaining_length_encoding() {
        // spec examples: 0 → [0], 127 → [127], 128 → [0x80, 1], 16383 → [0xFF, 0x7F]
        for (n, expect) in [
            (0usize, vec![0u8]),
            (127, vec![127]),
            (128, vec![0x80, 1]),
            (16383, vec![0xFF, 0x7F]),
            (16384, vec![0x80, 0x80, 1]),
        ] {
            let mut b = BytesMut::new();
            put_remaining_length(&mut b, n);
            assert_eq!(b.to_vec(), expect, "encoding {n}");
            let mut cur: &[u8] = &b;
            assert_eq!(get_remaining_length(&mut cur).unwrap(), n);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(Packet::decode(&[]), Err(PacketError::Truncated));
        assert_eq!(Packet::decode(&[0xF0, 0]), Err(PacketError::BadPacketType(15)));
        // SUBSCRIBE with wrong flags
        assert!(matches!(
            Packet::decode(&[0x80, 2, 0, 1]),
            Err(PacketError::BadFlags { .. })
        ));
        // PUBLISH with QoS 3
        assert!(matches!(Packet::decode(&[0x36, 0]), Err(PacketError::BadQoS(3))));
        // truncated body
        let enc = Packet::PubAck { packet_id: 7 }.encode();
        assert_eq!(Packet::decode(&enc[..enc.len() - 1]), Err(PacketError::Truncated));
        // trailing garbage
        let mut with_garbage = enc.to_vec();
        with_garbage.push(0xAA);
        assert!(matches!(Packet::decode(&with_garbage), Err(PacketError::TrailingBytes(_))));
    }

    #[test]
    fn rejects_wrong_protocol() {
        // handcraft a CONNECT with protocol level 3
        let mut body = BytesMut::new();
        put_string(&mut body, "MQTT");
        body.put_u8(3);
        body.put_u8(0);
        body.put_u16(0);
        put_string(&mut body, "c");
        let mut pkt = BytesMut::new();
        pkt.put_u8(TYPE_CONNECT << 4);
        put_remaining_length(&mut pkt, body.len());
        pkt.put_slice(&body);
        assert_eq!(Packet::decode(&pkt), Err(PacketError::BadProtocol));
    }

    proptest! {
        #[test]
        fn publish_roundtrip_prop(
            topic in "[a-z0-9/]{1,40}",
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            retain in any::<bool>(),
            dup in any::<bool>(),
            qos1 in any::<bool>(),
            pid in any::<u16>(),
        ) {
            let p = Packet::Publish {
                dup,
                qos: if qos1 { QoS::AtLeastOnce } else { QoS::AtMostOnce },
                retain,
                topic,
                packet_id: if qos1 { Some(pid) } else { None },
                payload: Bytes::from(payload),
            };
            let back = Packet::decode(&p.encode()).unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Packet::decode(&data);
        }

        #[test]
        fn remaining_length_roundtrip_prop(n in 0usize..268_435_455) {
            let mut b = BytesMut::new();
            put_remaining_length(&mut b, n);
            let mut cur: &[u8] = &b;
            prop_assert_eq!(get_remaining_length(&mut cur).unwrap(), n);
        }
    }
}
