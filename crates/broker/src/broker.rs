//! The broker service: session management, subscription routing, retained
//! messages, last-will handling.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap}; // hash maps for keyed lookup; `dbox audit` (DH0002) checks every iteration site
use std::rc::Rc;

use bytes::Bytes;
use digibox_obs as obs;

use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Service, ServiceHandle, Sim, SimDuration, SimTime, TimerToken};

use crate::packet::{Packet, QoS};
use crate::topic::{validate_filter, validate_topic, TopicTrie};

/// Application publishes between `$SYS` refreshes (change-driven rather
/// than timer-driven so a quiesced testbed's event queue can drain).
const SYS_EVERY_PUBLISHES: u64 = 64;

/// Bound on distinct cached topics; IoT workloads publish to a small,
/// stable set of topics, so hitting this means a pathological workload —
/// just drop the whole cache rather than track per-entry age.
const ROUTE_CACHE_CAP: usize = 4096;

/// Timer token for the session keep-alive sweep. The reliable endpoint
/// only claims tokens with `RELIABLE_TIMER_BIT` (bit 63) set, so a small
/// constant is safely ours.
const SESSION_SWEEP_TOKEN: TimerToken = 1;

/// Broker counters (exposed for the scalability benchmarks).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BrokerStats {
    /// Successful CONNECTs.
    pub connects: u64,
    /// PUBLISH packets received from clients.
    pub publishes_in: u64,
    /// PUBLISH packets fanned out to subscribers.
    pub publishes_out: u64,
    /// Topic filters subscribed (one per filter, not per packet).
    pub subscribes: u64,
    /// Retained messages delivered to new subscribers.
    pub retained_served: u64,
    /// Last-will messages published for dead sessions.
    pub wills_fired: u64,
    /// Packets dropped as undecodable.
    pub malformed: u64,
    /// Publishes routed via the cached subscriber set.
    pub route_cache_hits: u64,
    /// Publishes that had to walk the topic trie.
    pub route_cache_misses: u64,
    /// Keep-alive probes sent to idle sessions.
    pub probes_sent: u64,
    /// Sessions reaped because a keep-alive probe went unanswered.
    pub sessions_expired: u64,
}

/// Pre-interned observability handles for the broker's hot paths (see
/// `digibox_obs`): publish/route/retain counters and the span frames
/// nested under the kernel's dispatch spans.
struct ObsKeys {
    publish: obs::CounterId,
    route_hit: obs::CounterId,
    route_miss: obs::CounterId,
    retained_served: obs::CounterId,
    fanout: obs::HistogramId,
    f_publish: obs::FrameId,
    f_subscribe: obs::FrameId,
    f_retain: obs::FrameId,
}

impl ObsKeys {
    fn new() -> ObsKeys {
        ObsKeys {
            publish: obs::counter("broker.publishes"),
            route_hit: obs::counter("broker.route_cache_hits"),
            route_miss: obs::counter("broker.route_cache_misses"),
            retained_served: obs::counter("broker.retained_served"),
            fanout: obs::histogram("broker.route_fanout"),
            f_publish: obs::frame("broker.publish"),
            f_subscribe: obs::frame("broker.subscribe"),
            f_retain: obs::frame("broker.retain"),
        }
    }
}

#[derive(Debug)]
struct Session {
    #[allow(dead_code)] // kept for debugging/$SYS-style introspection
    client_id: String,
    /// Filters this session holds (mirror of the trie, for cleanup).
    filters: Vec<String>,
    will: Option<(String, Bytes)>,
    /// Last time any packet arrived from this client.
    last_seen: SimTime,
    /// When the last keep-alive probe went out (cleared on any traffic).
    last_probe: Option<SimTime>,
}

impl Session {
    /// When this session next needs a probe: `timeout` past the last sign
    /// of life, where an outstanding probe also counts (so a session is
    /// probed at most once per timeout period while the transport decides).
    fn deadline(&self, timeout: SimDuration) -> SimTime {
        let seen = match self.last_probe {
            Some(p) if p > self.last_seen => p,
            _ => self.last_seen,
        };
        seen + timeout
    }
}

/// The MQTT broker, bound at one address of the simulated network.
pub struct Broker {
    addr: Addr,
    ep: ReliableEndpoint,
    sessions: HashMap<Addr, Session>,
    /// filter → (subscriber address, granted qos)
    subs: TopicTrie<(Addr, QoS)>,
    /// interned topic id → fully resolved delivery list (deduped,
    /// best-qos, sorted) behind a refcounted slice, so a cache hit is two
    /// hash probes (topic → id, id → routes) and a refcount bump — no
    /// `String` key allocation on misses either. Valid only while
    /// `route_epoch` equals the trie's epoch; any
    /// subscribe/unsubscribe/session-end bumps the epoch and the next
    /// publish drops the whole cache (ids stay stable across epochs).
    route_cache: HashMap<u32, Rc<[(Addr, QoS)]>>,
    route_epoch: u64,
    /// topic → retained (qos, payload). Topic keys are shared `Rc<str>`
    /// and payloads shared `Bytes`, so replaying retained state to a new
    /// subscriber clones refcounts, not bytes.
    retained: BTreeMap<Rc<str>, (QoS, Bytes)>,
    next_pid: u16,
    stats: BrokerStats,
    /// Idle-session expiry: when set, sessions quiet for this long get a
    /// keep-alive probe over the reliable transport; a dead or partitioned
    /// peer exhausts the transport's retries and is dropped (will fired).
    /// `None` (the default) disables the sweep entirely, so a quiesced
    /// testbed's event queue can still drain.
    session_timeout: Option<SimDuration>,
    sweep_armed: bool,
    obs: ObsKeys,
}

impl Broker {
    /// A broker bound (by the caller) at `addr`, with empty state.
    pub fn new(addr: Addr) -> ServiceHandle<Broker> {
        Rc::new(RefCell::new(Broker {
            addr,
            ep: ReliableEndpoint::new(addr),
            sessions: HashMap::new(),
            subs: TopicTrie::new(),
            route_cache: HashMap::new(),
            route_epoch: 0,
            retained: BTreeMap::new(),
            next_pid: 1,
            stats: BrokerStats::default(),
            session_timeout: None,
            sweep_armed: false,
            obs: ObsKeys::new(),
        }))
    }

    /// Enable (or disable) idle-session expiry. The sweep timer arms on
    /// the next client connect. NOTE: while any session exists the sweep
    /// perpetually re-arms, so drive the sim with `run_for`/`run_until`
    /// rather than `run_to_completion` when a timeout is set.
    pub fn set_session_timeout(&mut self, timeout: Option<SimDuration>) {
        self.session_timeout = timeout;
    }

    /// The configured idle-session expiry, if any.
    pub fn session_timeout(&self) -> Option<SimDuration> {
        self.session_timeout
    }

    /// Datagram retransmissions performed by the broker's transport
    /// (chaos scorecards read this as "messages redelivered").
    pub fn transport_retransmits(&self) -> u64 {
        self.ep.retransmits()
    }

    /// Duplicate datagrams the broker's transport suppressed.
    pub fn transport_duplicates(&self) -> u64 {
        self.ep.duplicates()
    }

    /// The broker's own address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Live client sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Application-level retained messages (excludes the broker's own
    /// `$SYS` entries).
    pub fn retained_count(&self) -> usize {
        self.retained.keys().filter(|t| !t.starts_with("$SYS")).count()
    }

    fn next_pid(&mut self) -> u16 {
        let pid = self.next_pid;
        self.next_pid = self.next_pid.checked_add(1).unwrap_or(1);
        pid
    }

    fn send_packet(&mut self, sim: &mut Sim, to: Addr, pkt: &Packet) {
        self.ep.send(sim, to, pkt.encode());
    }

    fn handle_packet(&mut self, sim: &mut Sim, from: Addr, pkt: Packet) {
        match pkt {
            Packet::Connect { client_id, flags } => {
                self.stats.connects += 1;
                self.sessions.insert(
                    from,
                    Session {
                        client_id,
                        filters: Vec::new(),
                        will: flags.will,
                        last_seen: sim.now(),
                        last_probe: None,
                    },
                );
                self.send_packet(sim, from, &Packet::ConnAck { session_present: false, code: 0 });
                self.publish_sys(sim);
                self.maybe_arm_sweep(sim);
            }
            Packet::Publish { qos, retain, topic, packet_id, payload, .. } => {
                self.stats.publishes_in += 1;
                obs::inc(self.obs.publish);
                let _span = obs::enter(self.obs.f_publish);
                if !validate_topic(&topic) {
                    self.stats.malformed += 1;
                    return;
                }
                if qos == QoS::AtLeastOnce {
                    if let Some(pid) = packet_id {
                        self.send_packet(sim, from, &Packet::PubAck { packet_id: pid });
                    }
                }
                if retain {
                    let _span = obs::enter(self.obs.f_retain);
                    if payload.is_empty() {
                        self.retained.remove(topic.as_str()); // empty retained payload clears
                    } else {
                        self.retained.insert(Rc::from(topic.as_str()), (qos, payload.clone()));
                    }
                }
                self.route(sim, &topic, qos, payload, false);
                if self.stats.publishes_in % SYS_EVERY_PUBLISHES == 0 {
                    self.publish_sys(sim);
                }
            }
            Packet::Subscribe { packet_id, filters } => {
                self.stats.subscribes += 1;
                let _span = obs::enter(self.obs.f_subscribe);
                let mut codes = Vec::with_capacity(filters.len());
                let mut granted: Vec<(String, QoS)> = Vec::new();
                for (filter, qos) in filters {
                    if validate_filter(&filter) {
                        codes.push(qos as u8);
                        granted.push((filter, qos));
                    } else {
                        codes.push(0x80); // failure return code
                    }
                }
                // Register before SUBACK so routing is live immediately.
                for (filter, qos) in &granted {
                    self.subs.insert(filter, (from, *qos));
                    if let Some(s) = self.sessions.get_mut(&from) {
                        s.filters.push(filter.clone());
                    }
                }
                self.send_packet(sim, from, &Packet::SubAck { packet_id, codes });
                self.publish_sys(sim);
                // Deliver matching retained messages (retain flag set).
                // Topic and payload clones here are refcount bumps on
                // `Rc<str>`/`Bytes` — replay copies no message data.
                let matching: Vec<(Rc<str>, QoS, Bytes)> = self
                    .retained
                    .iter()
                    .filter(|(topic, _)| {
                        granted.iter().any(|(f, _)| crate::topic::matches(f, topic))
                    })
                    .map(|(t, (q, p))| (Rc::clone(t), *q, p.clone()))
                    .collect();
                for (topic, pub_qos, payload) in matching {
                    let sub_qos = granted
                        .iter()
                        .filter(|(f, _)| crate::topic::matches(f, &topic))
                        .map(|(_, q)| *q)
                        .max()
                        .unwrap_or(QoS::AtMostOnce);
                    let qos = pub_qos.min(sub_qos);
                    self.stats.retained_served += 1;
                    obs::inc(self.obs.retained_served);
                    self.deliver(sim, from, &topic, qos, payload, true);
                }
            }
            Packet::Unsubscribe { packet_id, filters } => {
                for filter in &filters {
                    self.subs.remove_where(filter, |(addr, _)| *addr == from);
                    if let Some(s) = self.sessions.get_mut(&from) {
                        s.filters.retain(|f| f != filter);
                    }
                }
                self.send_packet(sim, from, &Packet::UnsubAck { packet_id });
            }
            Packet::PubAck { .. } => {
                // QoS-1 broker→client delivery confirmed. Delivery itself is
                // guaranteed by the reliable transport; nothing to clean up.
            }
            Packet::PingReq => self.send_packet(sim, from, &Packet::PingResp),
            Packet::PingResp => {
                // Answer to one of our keep-alive probes; `last_seen` was
                // already refreshed when the packet was delivered.
            }
            Packet::Disconnect => {
                // Graceful close: the will is discarded (spec §3.14).
                self.drop_session(sim, from, false);
            }
            // Server-to-client packets arriving at the broker are protocol
            // violations from a confused peer; drop them.
            _ => self.stats.malformed += 1,
        }
    }

    /// Resolve `topic` to its delivery list, consulting the route cache.
    /// The cache is keyed by the trie's interned topic id (4 bytes, no
    /// `String` allocation per miss); entries are immutable snapshots
    /// (`Rc<[...]>`, a hit is a refcount bump), invalidated wholesale
    /// whenever the subscription trie's epoch moves.
    fn resolved_routes(&mut self, topic: &str) -> Rc<[(Addr, QoS)]> {
        if self.route_epoch != self.subs.epoch() {
            self.route_cache.clear();
            self.route_epoch = self.subs.epoch();
        }
        // The interner bounds the cache: ids are cache keys, so dropping
        // both together keeps them consistent when a pathological workload
        // floods distinct topics.
        if self.subs.topic_id_count() >= ROUTE_CACHE_CAP {
            self.subs.reset_topic_ids();
            self.route_cache.clear();
        }
        let id = self.subs.topic_id(topic);
        if let Some(routes) = self.route_cache.get(&id) {
            self.stats.route_cache_hits += 1;
            obs::inc(self.obs.route_hit);
            return routes.clone();
        }
        self.stats.route_cache_misses += 1;
        obs::inc(self.obs.route_miss);
        // A session subscribed via several matching filters gets one copy at
        // the highest granted qos.
        let mut best: HashMap<Addr, QoS> = HashMap::new();
        for &(addr, q) in self.subs.lookup(topic) {
            let e = best.entry(addr).or_insert(q);
            *e = (*e).max(q);
        }
        let mut sorted: Vec<(Addr, QoS)> = best.into_iter().collect();
        sorted.sort_unstable_by_key(|(a, _)| *a);
        let routes: Rc<[(Addr, QoS)]> = sorted.into();
        self.route_cache.insert(id, routes.clone());
        routes
    }

    /// Route a publication to every matching subscriber.
    fn route(&mut self, sim: &mut Sim, topic: &str, pub_qos: QoS, payload: Bytes, retain: bool) {
        let routes = self.resolved_routes(topic);
        obs::observe(self.obs.fanout, routes.len() as u64);
        for &(addr, sub_qos) in routes.iter() {
            let qos = pub_qos.min(sub_qos);
            self.deliver(sim, addr, topic, qos, payload.clone(), retain);
        }
    }

    fn deliver(
        &mut self,
        sim: &mut Sim,
        to: Addr,
        topic: &str,
        qos: QoS,
        payload: Bytes,
        retain: bool,
    ) {
        let packet_id = match qos {
            QoS::AtMostOnce => None,
            QoS::AtLeastOnce => Some(self.next_pid()),
        };
        self.stats.publishes_out += 1;
        let pkt = Packet::Publish {
            dup: false,
            qos,
            retain,
            topic: topic.to_string(),
            packet_id,
            payload,
        };
        self.send_packet(sim, to, &pkt);
    }

    /// Publish broker statistics on retained `$SYS/broker/...` topics
    /// (the introspection surface EMQX exposes; `$`-topics are shielded
    /// from wildcard subscriptions per the MQTT spec, so only clients that
    /// subscribe explicitly see them). Refreshed on session/subscription
    /// changes and every [`SYS_EVERY_PUBLISHES`] application publishes.
    fn publish_sys(&mut self, sim: &mut Sim) {
        let entries = [
            ("$SYS/broker/clients/connected", self.sessions.len() as u64),
            ("$SYS/broker/messages/received", self.stats.publishes_in),
            ("$SYS/broker/messages/sent", self.stats.publishes_out),
            ("$SYS/broker/subscriptions/count", self.subs.len() as u64),
            ("$SYS/broker/retained/count", self.retained_count() as u64),
        ];
        for (topic, value) in entries {
            let payload = Bytes::from(value.to_string());
            self.retained.insert(Rc::from(topic), (QoS::AtMostOnce, payload.clone()));
            self.route(sim, topic, QoS::AtMostOnce, payload, true);
        }
    }

    /// Arm the sweep timer if expiry is on and it isn't already pending.
    /// Called on connect (the broker has no `on_start`, so the first
    /// session brings the sweep up lazily).
    fn maybe_arm_sweep(&mut self, sim: &mut Sim) {
        let Some(timeout) = self.session_timeout else { return };
        if self.sweep_armed || self.sessions.is_empty() {
            return;
        }
        self.sweep_armed = true;
        sim.set_timer(self.addr, timeout, SESSION_SWEEP_TOKEN);
    }

    /// Probe every session that has been quiet past the timeout. A live
    /// client answers (transport ACK plus a PingResp, refreshing
    /// `last_seen`); a dead or partitioned one exhausts the transport's
    /// retries, and the resulting `PeerFailed` drops the session *and* the
    /// stale transport connection — that cleanup is what lets a client
    /// reconnect with a fresh sequence space after a partition heals.
    fn sweep_sessions(&mut self, sim: &mut Sim) {
        self.sweep_armed = false;
        let Some(timeout) = self.session_timeout else { return };
        let now = sim.now();
        let mut due: Vec<Addr> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.deadline(timeout) <= now)
            .map(|(a, _)| *a)
            .collect();
        due.sort_unstable();
        for addr in due {
            if let Some(s) = self.sessions.get_mut(&addr) {
                s.last_probe = Some(now);
            }
            self.stats.probes_sent += 1;
            self.send_packet(sim, addr, &Packet::PingReq);
        }
        // Re-arm for the earliest upcoming deadline (min over the hash map
        // is order-independent, so iteration order doesn't matter).
        if let Some(next) = self.sessions.values().map(|s| s.deadline(timeout)).min() {
            let delay = if next > now { next - now } else { timeout };
            self.sweep_armed = true;
            sim.set_timer(self.addr, delay, SESSION_SWEEP_TOKEN);
        }
    }

    fn drop_session(&mut self, sim: &mut Sim, addr: Addr, fire_will: bool) {
        let Some(session) = self.sessions.remove(&addr) else {
            return;
        };
        for filter in &session.filters {
            self.subs.remove_where(filter, |(a, _)| *a == addr);
        }
        if fire_will {
            if let Some((topic, payload)) = session.will {
                self.stats.wills_fired += 1;
                self.route(sim, &topic, QoS::AtMostOnce, payload, false);
            }
        }
    }
}

impl Service for Broker {
    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        let from = dg.src;
        if !self.ep.on_datagram(sim, dg) {
            self.stats.malformed += 1;
            return;
        }
        let _ = from;
        self.pump(sim);
    }

    fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
        if token == SESSION_SWEEP_TOKEN {
            self.sweep_sessions(sim);
        } else {
            self.ep.on_timer(sim, token);
        }
        self.pump(sim);
    }
}

impl Broker {
    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.ep.poll() {
            match ev {
                TransportEvent::Delivered { peer, payload } => {
                    if let Some(s) = self.sessions.get_mut(&peer) {
                        s.last_seen = sim.now();
                        s.last_probe = None;
                    }
                    match Packet::decode(&payload) {
                        Ok(pkt) => self.handle_packet(sim, peer, pkt),
                        Err(_) => self.stats.malformed += 1,
                    }
                }
                TransportEvent::PeerFailed { peer } => {
                    // Ungraceful death: fire the last-will (paper §6 lists
                    // device faults as a fidelity dimension; this is how an
                    // app observes a mock dying).
                    if self.sessions.get(&peer).is_some_and(|s| s.last_probe.is_some()) {
                        self.stats.sessions_expired += 1;
                    }
                    self.drop_session(sim, peer, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientEvent, MqttConn};
    use digibox_net::{NodeSpec, SimConfig, Topology};

    /// A service wrapping MqttConn that records every event.
    struct TestClient {
        conn: MqttConn,
        events: Vec<ClientEvent>,
    }

    impl TestClient {
        fn new(local: Addr, broker: Addr, id: &str) -> ServiceHandle<TestClient> {
            Rc::new(RefCell::new(TestClient { conn: MqttConn::new(local, broker, id), events: Vec::new() }))
        }
        fn drain(&mut self) {
            while let Some(ev) = self.conn.poll() {
                self.events.push(ev);
            }
        }
        fn messages(&self) -> Vec<(String, Vec<u8>)> {
            self.events
                .iter()
                .filter_map(|e| match e {
                    ClientEvent::Message { topic, payload, .. } => {
                        Some((topic.clone(), payload.to_vec()))
                    }
                    _ => None,
                })
                .collect()
        }
    }

    impl Service for TestClient {
        fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
            self.conn.on_datagram(sim, dg);
            self.drain();
        }
        fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
            self.conn.on_timer(sim, token);
            self.drain();
        }
    }

    struct Rig {
        sim: Sim,
        broker: ServiceHandle<Broker>,
        broker_addr: Addr,
        next_port: u16,
    }

    impl Rig {
        fn new() -> Rig {
            let mut topo = Topology::new();
            let n = topo.add_node(NodeSpec::laptop());
            let mut sim = Sim::new(topo, SimConfig::default());
            let broker_addr = Addr::new(n, 1883);
            let broker = Broker::new(broker_addr);
            sim.bind(broker_addr, broker.clone());
            Rig { sim, broker, broker_addr, next_port: 10_000 }
        }

        fn client(&mut self, id: &str) -> (ServiceHandle<TestClient>, Addr) {
            let node = self.broker_addr.node;
            let addr = Addr::new(node, self.next_port);
            self.next_port += 1;
            let c = TestClient::new(addr, self.broker_addr, id);
            self.sim.bind(addr, c.clone());
            c.borrow_mut().conn.connect(&mut self.sim, None);
            self.sim.run_to_completion();
            assert!(c.borrow().conn.is_connected(), "client {id} failed to connect");
            (c, addr)
        }
    }

    #[test]
    fn connect_and_connack() {
        let mut rig = Rig::new();
        let (c, _) = rig.client("c1");
        assert!(matches!(c.borrow().events[0], ClientEvent::Connected { .. }));
        assert_eq!(rig.broker.borrow().session_count(), 1);
        assert_eq!(rig.broker.borrow().stats().connects, 1);
    }

    #[test]
    fn publish_routes_to_subscribers() {
        let mut rig = Rig::new();
        let (sub1, _) = rig.client("sub1");
        let (sub2, _) = rig.client("sub2");
        let (publisher, _) = rig.client("pub");
        sub1.borrow_mut().conn.subscribe(&mut rig.sim, &[("digibox/mock/+/status", QoS::AtMostOnce)]);
        sub2.borrow_mut().conn.subscribe(&mut rig.sim, &[("digibox/#", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(
            &mut rig.sim,
            "digibox/mock/O1/status",
            &b"{\"triggered\":true}"[..],
            QoS::AtMostOnce,
            false,
        );
        rig.sim.run_to_completion();
        assert_eq!(sub1.borrow().messages().len(), 1);
        assert_eq!(sub2.borrow().messages().len(), 1);
        assert_eq!(sub1.borrow().messages()[0].0, "digibox/mock/O1/status");
    }

    #[test]
    fn qos1_publish_gets_puback() {
        let mut rig = Rig::new();
        let (c, _) = rig.client("c");
        let pid = c.borrow_mut().conn.publish(&mut rig.sim, "a/b", &b"x"[..], QoS::AtLeastOnce, false);
        rig.sim.run_to_completion();
        let c = c.borrow();
        assert_eq!(c.conn.unacked_publishes(), 0);
        assert!(c.events.iter().any(|e| *e == ClientEvent::PubAck { packet_id: pid.unwrap() }));
    }

    #[test]
    fn qos1_subscriber_receives_and_acks() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("t", QoS::AtLeastOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t", &b"m"[..], QoS::AtLeastOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages(), vec![("t".to_string(), b"m".to_vec())]);
    }

    #[test]
    fn retained_message_served_on_subscribe() {
        let mut rig = Rig::new();
        let (publisher, _) = rig.client("pub");
        publisher.borrow_mut().conn.publish(&mut rig.sim, "status/L1", &b"on"[..], QoS::AtMostOnce, true);
        rig.sim.run_to_completion();
        assert_eq!(rig.broker.borrow().retained_count(), 1);
        // late subscriber still sees it
        let (sub, _) = rig.client("sub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("status/+", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        let msgs = sub.borrow().messages();
        assert_eq!(msgs, vec![("status/L1".to_string(), b"on".to_vec())]);
        assert!(sub
            .borrow()
            .events
            .iter()
            .any(|e| matches!(e, ClientEvent::Message { retain: true, .. })));
    }

    #[test]
    fn empty_retained_payload_clears() {
        let mut rig = Rig::new();
        let (p, _) = rig.client("p");
        p.borrow_mut().conn.publish(&mut rig.sim, "s", &b"v"[..], QoS::AtMostOnce, true);
        rig.sim.run_to_completion();
        assert_eq!(rig.broker.borrow().retained_count(), 1);
        p.borrow_mut().conn.publish(&mut rig.sim, "s", Bytes::new(), QoS::AtMostOnce, true);
        rig.sim.run_to_completion();
        assert_eq!(rig.broker.borrow().retained_count(), 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("t", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        sub.borrow_mut().conn.unsubscribe(&mut rig.sim, &["t"]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t", &b"m"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert!(sub.borrow().messages().is_empty());
    }

    #[test]
    fn overlapping_filters_deliver_once() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut()
            .conn
            .subscribe(&mut rig.sim, &[("a/#", QoS::AtMostOnce), ("a/+", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "a/b", &b"m"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages().len(), 1, "no duplicate deliveries");
    }

    #[test]
    fn invalid_filter_gets_failure_code_and_no_delivery() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("bad/#/filter", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "bad/x/filter", &b"m"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert!(sub.borrow().messages().is_empty());
    }

    #[test]
    fn graceful_disconnect_discards_will() {
        let mut rig = Rig::new();
        let (watcher, _) = rig.client("watcher");
        watcher.borrow_mut().conn.subscribe(&mut rig.sim, &[("lwt/#", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        // client with a will, disconnecting cleanly
        let node = rig.broker_addr.node;
        let addr = Addr::new(node, 20_000);
        let c = TestClient::new(addr, rig.broker_addr, "mortal");
        rig.sim.bind(addr, c.clone());
        c.borrow_mut()
            .conn
            .connect(&mut rig.sim, Some(("lwt/mortal".into(), Bytes::from_static(b"gone"))));
        rig.sim.run_to_completion();
        c.borrow_mut().conn.disconnect(&mut rig.sim);
        rig.sim.run_to_completion();
        assert!(watcher.borrow().messages().is_empty());
        assert_eq!(rig.broker.borrow().session_count(), 1, "mortal's session dropped");
    }

    #[test]
    fn publisher_also_subscribed_receives_own_message() {
        let mut rig = Rig::new();
        let (c, _) = rig.client("c");
        c.borrow_mut().conn.subscribe(&mut rig.sim, &[("loop", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        c.borrow_mut().conn.publish(&mut rig.sim, "loop", &b"echo"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(c.borrow().messages().len(), 1);
    }

    #[test]
    fn sys_topics_published_and_shielded_from_wildcards() {
        let mut rig = Rig::new();
        let (wildcard, _) = rig.client("wildcard");
        wildcard.borrow_mut().conn.subscribe(&mut rig.sim, &[("#", QoS::AtMostOnce)]);
        let (sys_watcher, _) = rig.client("sys");
        sys_watcher
            .borrow_mut()
            .conn
            .subscribe(&mut rig.sim, &[("$SYS/broker/clients/connected", QoS::AtMostOnce)]);
        // a new connection refreshes $SYS
        let (_extra, _) = rig.client("extra");
        rig.sim.run_to_completion();
        let sys_msgs = sys_watcher.borrow().messages();
        assert!(!sys_msgs.is_empty(), "explicit $SYS subscriber sees stats");
        let connected: u64 =
            String::from_utf8(sys_msgs.last().unwrap().1.clone()).unwrap().parse().unwrap();
        assert_eq!(connected, 3);
        // the root wildcard must NOT receive $SYS traffic (spec §4.7.2)
        assert!(
            wildcard.borrow().messages().iter().all(|(t, _)| !t.starts_with("$SYS")),
            "wildcard subscriber leaked $SYS messages"
        );
    }

    #[test]
    fn sys_retained_served_to_late_subscriber() {
        let mut rig = Rig::new();
        let (_first, _) = rig.client("first"); // triggers a $SYS refresh
        let (late, _) = rig.client("late");
        late.borrow_mut()
            .conn
            .subscribe(&mut rig.sim, &[("$SYS/broker/retained/count", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        assert!(!late.borrow().messages().is_empty(), "retained $SYS stat served");
    }

    #[test]
    fn stats_track_traffic() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("t/#", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        for i in 0..10 {
            publisher.borrow_mut().conn.publish(
                &mut rig.sim,
                &format!("t/{i}"),
                &b"m"[..],
                QoS::AtMostOnce,
                false,
            );
        }
        rig.sim.run_to_completion();
        let b = rig.broker.borrow();
        assert_eq!(b.stats().publishes_in, 10);
        assert_eq!(b.stats().publishes_out, 10);
        assert_eq!(b.stats().subscribes, 1);
    }

    #[test]
    fn route_cache_hits_on_repeated_topic() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("hot/+", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        for _ in 0..20 {
            publisher.borrow_mut().conn.publish(&mut rig.sim, "hot/topic", &b"m"[..], QoS::AtMostOnce, false);
        }
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages().len(), 20);
        let b = rig.broker.borrow();
        assert!(
            b.stats().route_cache_hits >= 19,
            "repeated publishes must hit the cache (hits={})",
            b.stats().route_cache_hits
        );
    }

    #[test]
    fn route_cache_invalidated_by_unsubscribe_and_session_end() {
        let mut rig = Rig::new();
        let (sub1, _) = rig.client("sub1");
        let (sub2, _) = rig.client("sub2");
        let (publisher, _) = rig.client("pub");
        sub1.borrow_mut().conn.subscribe(&mut rig.sim, &[("t/x", QoS::AtMostOnce)]);
        sub2.borrow_mut().conn.subscribe(&mut rig.sim, &[("t/#", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t/x", &b"1"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub1.borrow().messages().len(), 1);
        assert_eq!(sub2.borrow().messages().len(), 1);
        // unsubscribe must invalidate the cached route for "t/x"
        sub1.borrow_mut().conn.unsubscribe(&mut rig.sim, &["t/x"]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t/x", &b"2"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub1.borrow().messages().len(), 1, "stale cached route after unsubscribe");
        assert_eq!(sub2.borrow().messages().len(), 2);
        // session end (graceful disconnect) must invalidate too
        sub2.borrow_mut().conn.disconnect(&mut rig.sim);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t/x", &b"3"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub2.borrow().messages().len(), 2, "stale cached route after session end");
    }

    /// Like `Rig::client` but driven by `run_for`: once a session timeout
    /// is set the sweep timer perpetually re-arms, so `run_to_completion`
    /// would never return.
    fn client_run_for(rig: &mut Rig, port: u16, id: &str, will: Option<(String, Bytes)>) -> ServiceHandle<TestClient> {
        let addr = Addr::new(rig.broker_addr.node, port);
        let c = TestClient::new(addr, rig.broker_addr, id);
        rig.sim.bind(addr, c.clone());
        c.borrow_mut().conn.connect(&mut rig.sim, will);
        rig.sim.run_for(SimDuration::from_millis(100));
        assert!(c.borrow().conn.is_connected(), "client {id} failed to connect");
        c
    }

    #[test]
    fn idle_dead_session_expires_via_probe_and_fires_will() {
        let mut rig = Rig::new();
        rig.broker.borrow_mut().set_session_timeout(Some(SimDuration::from_secs(2)));
        let watcher = client_run_for(&mut rig, 20_000, "watcher", None);
        watcher.borrow_mut().conn.subscribe(&mut rig.sim, &[("lwt/#", QoS::AtMostOnce)]);
        let mortal = client_run_for(
            &mut rig,
            20_001,
            "mortal",
            Some(("lwt/mortal".into(), Bytes::from_static(b"gone"))),
        );
        let _ = mortal;
        assert_eq!(rig.broker.borrow().session_count(), 2);
        // Silent death: the client vanishes without a Disconnect. The
        // sweep probes it after ~2s idle; retry exhaustion takes another
        // ~55×RTO, after which the will fires and the session is reaped.
        rig.sim.unbind(Addr::new(rig.broker_addr.node, 20_001));
        rig.sim.run_for(SimDuration::from_secs(8));
        let b = rig.broker.borrow();
        assert_eq!(b.session_count(), 1, "dead session reaped");
        assert_eq!(b.stats().wills_fired, 1);
        assert!(b.stats().probes_sent >= 1);
        assert_eq!(b.stats().sessions_expired, 1);
        drop(b);
        assert_eq!(
            watcher.borrow().messages(),
            vec![("lwt/mortal".to_string(), b"gone".to_vec())]
        );
    }

    #[test]
    fn idle_live_session_survives_probes() {
        let mut rig = Rig::new();
        rig.broker.borrow_mut().set_session_timeout(Some(SimDuration::from_millis(500)));
        let c = client_run_for(
            &mut rig,
            20_100,
            "quiet",
            Some(("lwt/quiet".into(), Bytes::from_static(b"gone"))),
        );
        // Five seconds of silence: the broker probes roughly once per
        // timeout period, the client answers each time, nothing expires.
        rig.sim.run_for(SimDuration::from_secs(5));
        let b = rig.broker.borrow();
        assert_eq!(b.session_count(), 1, "live client kept alive by probes");
        assert_eq!(b.stats().wills_fired, 0);
        assert_eq!(b.stats().sessions_expired, 0);
        assert!(b.stats().probes_sent >= 5, "probes={}", b.stats().probes_sent);
        assert_eq!(b.transport_retransmits(), 0);
        drop(b);
        assert!(c.borrow().conn.is_connected());
    }

    #[test]
    fn busy_session_is_never_probed() {
        let mut rig = Rig::new();
        rig.broker.borrow_mut().set_session_timeout(Some(SimDuration::from_millis(500)));
        let c = client_run_for(&mut rig, 20_200, "chatty", None);
        // Publish every 200ms — always inside the idle window.
        for _ in 0..20 {
            c.borrow_mut().conn.publish(&mut rig.sim, "t", &b"x"[..], QoS::AtMostOnce, false);
            rig.sim.run_for(SimDuration::from_millis(200));
        }
        let b = rig.broker.borrow();
        assert_eq!(b.stats().probes_sent, 0, "traffic resets the idle clock");
        assert_eq!(b.session_count(), 1);
    }
}
