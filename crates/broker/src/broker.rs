//! The broker service: session management, subscription routing, retained
//! messages, last-will handling.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap}; // hash maps for keyed lookup; `dbox audit` (DH0002) checks every iteration site
use std::rc::Rc;

use bytes::Bytes;
use digibox_obs as obs;

use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Service, ServiceHandle, Sim, SimDuration, SimTime, TimerToken};

use crate::packet::{Packet, QoS};
use crate::topic::{parse_share, validate_filter, validate_topic, TopicTrie};

/// Application publishes between `$SYS` refreshes (change-driven rather
/// than timer-driven so a quiesced testbed's event queue can drain).
const SYS_EVERY_PUBLISHES: u64 = 64;

/// Bound on distinct cached topics; IoT workloads publish to a small,
/// stable set of topics, so hitting this means a pathological workload —
/// just drop the whole cache rather than track per-entry age.
const ROUTE_CACHE_CAP: usize = 4096;

/// Timer token for the session keep-alive sweep. The reliable endpoint
/// only claims tokens with `RELIABLE_TIMER_BIT` (bit 63) set, so a small
/// constant is safely ours.
const SESSION_SWEEP_TOKEN: TimerToken = 1;

/// Broker counters (exposed for the scalability benchmarks).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BrokerStats {
    /// Successful CONNECTs.
    pub connects: u64,
    /// PUBLISH packets received from clients.
    pub publishes_in: u64,
    /// PUBLISH packets fanned out to subscribers.
    pub publishes_out: u64,
    /// Topic filters subscribed (one per filter, not per packet).
    pub subscribes: u64,
    /// Retained messages delivered to new subscribers.
    pub retained_served: u64,
    /// Last-will messages published for dead sessions.
    pub wills_fired: u64,
    /// Packets dropped as undecodable.
    pub malformed: u64,
    /// Publishes routed via the cached subscriber set.
    pub route_cache_hits: u64,
    /// Publishes that had to walk the topic trie.
    pub route_cache_misses: u64,
    /// Keep-alive probes sent to idle sessions.
    pub probes_sent: u64,
    /// Sessions reaped because a keep-alive probe went unanswered.
    pub sessions_expired: u64,
    /// QoS 2 PUBLISH packets received (first receipts and DUPs alike).
    pub qos2_publishes_in: u64,
    /// QoS 2 broker→client deliveries whose PUBCOMP arrived.
    pub qos2_completed: u64,
    /// Re-received QoS 2 publishes suppressed by packet-id dedup.
    pub qos2_dup_dropped: u64,
    /// Persistent sessions resumed (CONNACK with `session_present`).
    pub session_resumes: u64,
    /// Live sessions displaced by a reconnect under the same client id.
    pub session_takeovers: u64,
    /// Messages handed to a `$share` group member (one per group per publish).
    pub shared_deliveries: u64,
}

/// Pre-interned observability handles for the broker's hot paths (see
/// `digibox_obs`): publish/route/retain counters and the span frames
/// nested under the kernel's dispatch spans.
struct ObsKeys {
    publish: obs::CounterId,
    route_hit: obs::CounterId,
    route_miss: obs::CounterId,
    retained_served: obs::CounterId,
    qos2_complete: obs::CounterId,
    qos2_dup: obs::CounterId,
    session_resume: obs::CounterId,
    shared_delivery: obs::CounterId,
    fanout: obs::HistogramId,
    f_publish: obs::FrameId,
    f_subscribe: obs::FrameId,
    f_retain: obs::FrameId,
}

impl ObsKeys {
    fn new() -> ObsKeys {
        ObsKeys {
            publish: obs::counter("broker.publishes"),
            route_hit: obs::counter("broker.route_cache_hits"),
            route_miss: obs::counter("broker.route_cache_misses"),
            retained_served: obs::counter("broker.retained_served"),
            qos2_complete: obs::counter("broker.qos2_completed"),
            qos2_dup: obs::counter("broker.qos2_dups_dropped"),
            session_resume: obs::counter("broker.session_resumes"),
            shared_delivery: obs::counter("broker.shared_deliveries"),
            fanout: obs::histogram("broker.route_fanout"),
            f_publish: obs::frame("broker.publish"),
            f_subscribe: obs::frame("broker.subscribe"),
            f_retain: obs::frame("broker.retain"),
        }
    }
}

/// One subscription entry in the trie: who gets the message, at what QoS,
/// and (for `$share/<group>/...` filters) which consumer group it belongs
/// to — shared entries compete round-robin instead of all receiving a copy.
#[derive(Debug, Clone, PartialEq)]
struct SubEntry {
    addr: Addr,
    qos: QoS,
    group: Option<Rc<str>>,
}

/// Where a broker→client QoS 1/2 delivery sits in its handshake.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OutState {
    /// QoS 1: waiting for PUBACK.
    AwaitPubAck,
    /// QoS 2: waiting for PUBREC.
    AwaitPubRec,
    /// QoS 2: PUBREL sent, waiting for PUBCOMP.
    AwaitPubComp,
}

/// An in-flight broker→client publish, kept until the handshake completes
/// so a resumed session can be caught up with DUP retransmits.
#[derive(Debug, Clone)]
struct OutboundPub {
    topic: String,
    payload: Bytes,
    qos: QoS,
    retain: bool,
    state: OutState,
}

/// Durable state of one persistent (non-clean) session, as stashed across
/// disconnects and exported/imported around a broker restart
/// ([`Broker::export_sessions`] / [`Broker::import_sessions`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Client identifier — the durable session key.
    pub client_id: String,
    /// Granted subscriptions as `(filter, qos)`, in subscribe order.
    /// `$share/...` filters keep their full spelling.
    pub subscriptions: Vec<(String, QoS)>,
    /// Last-will message, if any.
    pub will: Option<(String, Bytes)>,
    /// Keep-alive interval from CONNECT, in seconds.
    pub keep_alive_secs: u16,
    /// Inbound QoS 2 packet ids received but not yet released (the
    /// receiver-side dedup set), sorted.
    pub inbound_rec: Vec<u16>,
    /// In-flight broker→client publishes, sorted by packet id.
    pub outbound: Vec<OutboundSnapshot>,
}

/// One in-flight broker→client publish inside a [`SessionSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct OutboundSnapshot {
    /// Packet id of the delivery.
    pub packet_id: u16,
    /// Destination topic.
    pub topic: String,
    /// Message bytes.
    pub payload: Bytes,
    /// Delivery QoS (1 or 2; QoS 0 deliveries are never tracked).
    pub qos: QoS,
    /// Retain flag as delivered.
    pub retain: bool,
    /// True when PUBREL went out and PUBCOMP is pending; false while the
    /// publish itself still awaits PUBACK/PUBREC.
    pub released: bool,
}

#[derive(Debug)]
struct Session {
    client_id: String,
    /// CONNECT's clean-session flag; when false the session is stashed
    /// (not destroyed) on disconnect and survives broker restarts.
    clean_session: bool,
    /// Keep-alive interval from CONNECT (persisted; the broker's own
    /// sweep uses the global `session_timeout`).
    keep_alive_secs: u16,
    /// Filters this session holds with their granted QoS (mirror of the
    /// trie, for cleanup and persistence).
    filters: Vec<(String, QoS)>,
    will: Option<(String, Bytes)>,
    /// Last time any packet arrived from this client.
    last_seen: SimTime,
    /// When the last keep-alive probe went out (cleared on any traffic).
    last_probe: Option<SimTime>,
    /// Inbound QoS 2 pids received but not released — publishes whose pid
    /// is already here are PUBREC'd again but not re-routed.
    inbound_rec: BTreeSet<u16>,
    /// In-flight broker→client QoS 1/2 deliveries, in pid order so
    /// resumption retransmits deterministically.
    outbound: BTreeMap<u16, OutboundPub>,
}

impl Session {
    /// When this session next needs a probe: `timeout` past the last sign
    /// of life, where an outstanding probe also counts (so a session is
    /// probed at most once per timeout period while the transport decides).
    fn deadline(&self, timeout: SimDuration) -> SimTime {
        let seen = match self.last_probe {
            Some(p) if p > self.last_seen => p,
            _ => self.last_seen,
        };
        seen + timeout
    }
}

/// Freeze a live session's durable state (BTree order keeps the
/// snapshot's vectors sorted, hence byte-stable when serialized).
fn snapshot_of(s: &Session) -> SessionSnapshot {
    SessionSnapshot {
        client_id: s.client_id.clone(),
        subscriptions: s.filters.clone(),
        will: s.will.clone(),
        keep_alive_secs: s.keep_alive_secs,
        inbound_rec: s.inbound_rec.iter().copied().collect(),
        outbound: s
            .outbound
            .iter()
            .map(|(&pid, ob)| OutboundSnapshot {
                packet_id: pid,
                topic: ob.topic.clone(),
                payload: ob.payload.clone(),
                qos: ob.qos,
                retain: ob.retain,
                released: ob.state == OutState::AwaitPubComp,
            })
            .collect(),
    }
}

/// A topic's fully resolved delivery lists: direct subscribers (each gets
/// a copy) and `$share` groups (each group gets exactly one copy,
/// round-robin). Cached immutably per interned topic id; the rotation
/// counters live outside the cache on the broker itself.
#[derive(Debug)]
struct RouteSet {
    /// Deduped best-QoS direct subscribers, sorted by address.
    direct: Vec<(Addr, QoS)>,
    /// Share groups sorted by name; members deduped best-QoS, sorted by
    /// address.
    shared: Vec<(Rc<str>, Vec<(Addr, QoS)>)>,
}

/// The MQTT broker, bound at one address of the simulated network.
pub struct Broker {
    addr: Addr,
    ep: ReliableEndpoint,
    sessions: HashMap<Addr, Session>,
    /// client id → live session address, for takeover detection without
    /// scanning the session map.
    client_index: BTreeMap<String, Addr>,
    /// Persistent sessions currently disconnected, keyed by client id.
    /// A non-clean CONNECT under the key resumes the entry; a clean one
    /// destroys it.
    stashed: BTreeMap<String, SessionSnapshot>,
    /// filter → subscription entries (address, granted qos, share group)
    subs: TopicTrie<SubEntry>,
    /// interned topic id → fully resolved delivery lists (deduped,
    /// best-qos, sorted) behind a refcounted snapshot, so a cache hit is
    /// two hash probes (topic → id, id → routes) and a refcount bump — no
    /// `String` key allocation on misses either. Valid only while
    /// `route_epoch` equals the trie's epoch; any
    /// subscribe/unsubscribe/session-end bumps the epoch and the next
    /// publish drops the whole cache (ids stay stable across epochs).
    route_cache: HashMap<u32, Rc<RouteSet>>,
    route_epoch: u64,
    /// `$share` round-robin rotation counters, keyed by group name. Kept
    /// outside the immutable route cache: the counter advances per
    /// matching publish in arrival order, which is what makes shared
    /// fanout deterministic under a deterministic kernel.
    share_rr: BTreeMap<String, u64>,
    /// topic → retained (qos, payload). Topic keys are shared `Rc<str>`
    /// and payloads shared `Bytes`, so replaying retained state to a new
    /// subscriber clones refcounts, not bytes.
    retained: BTreeMap<Rc<str>, (QoS, Bytes)>,
    next_pid: u16,
    stats: BrokerStats,
    /// Idle-session expiry: when set, sessions quiet for this long get a
    /// keep-alive probe over the reliable transport; a dead or partitioned
    /// peer exhausts the transport's retries and is dropped (will fired).
    /// `None` (the default) disables the sweep entirely, so a quiesced
    /// testbed's event queue can still drain.
    session_timeout: Option<SimDuration>,
    sweep_armed: bool,
    obs: ObsKeys,
}

impl Broker {
    /// A broker bound (by the caller) at `addr`, with empty state.
    pub fn new(addr: Addr) -> ServiceHandle<Broker> {
        Rc::new(RefCell::new(Broker {
            addr,
            ep: ReliableEndpoint::new(addr),
            sessions: HashMap::new(),
            client_index: BTreeMap::new(),
            stashed: BTreeMap::new(),
            subs: TopicTrie::new(),
            route_cache: HashMap::new(),
            route_epoch: 0,
            share_rr: BTreeMap::new(),
            retained: BTreeMap::new(),
            next_pid: 1,
            stats: BrokerStats::default(),
            session_timeout: None,
            sweep_armed: false,
            obs: ObsKeys::new(),
        }))
    }

    /// Enable (or disable) idle-session expiry. The sweep timer arms on
    /// the next client connect. NOTE: while any session exists the sweep
    /// perpetually re-arms, so drive the sim with `run_for`/`run_until`
    /// rather than `run_to_completion` when a timeout is set.
    pub fn set_session_timeout(&mut self, timeout: Option<SimDuration>) {
        self.session_timeout = timeout;
    }

    /// The configured idle-session expiry, if any.
    pub fn session_timeout(&self) -> Option<SimDuration> {
        self.session_timeout
    }

    /// Datagram retransmissions performed by the broker's transport
    /// (chaos scorecards read this as "messages redelivered").
    pub fn transport_retransmits(&self) -> u64 {
        self.ep.retransmits()
    }

    /// Duplicate datagrams the broker's transport suppressed.
    pub fn transport_duplicates(&self) -> u64 {
        self.ep.duplicates()
    }

    /// The broker's own address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Live client sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Persistent sessions currently disconnected but retained.
    pub fn stashed_count(&self) -> usize {
        self.stashed.len()
    }

    /// Export every persistent session — live and stashed — for
    /// checkpointing, sorted by client id. Clean sessions are connection-
    /// scoped and are not exported.
    pub fn export_sessions(&self) -> Vec<SessionSnapshot> {
        let mut out: Vec<SessionSnapshot> = self
            .sessions
            .values()
            .filter(|s| !s.clean_session)
            .map(snapshot_of)
            .collect();
        out.extend(self.stashed.values().cloned());
        out.sort_by(|a, b| a.client_id.cmp(&b.client_id));
        out
    }

    /// Import persistent sessions (from a checkpoint taken by
    /// [`Broker::export_sessions`]) into the stash. They resume when their
    /// client reconnects with `clean_session = false`. The pid allocator
    /// is advanced past every imported in-flight id so new deliveries
    /// cannot collide with a half-finished handshake.
    pub fn import_sessions(&mut self, snapshots: Vec<SessionSnapshot>) {
        for snap in snapshots {
            for ob in &snap.outbound {
                if ob.packet_id >= self.next_pid {
                    self.next_pid = ob.packet_id.checked_add(1).unwrap_or(1);
                }
            }
            self.stashed.insert(snap.client_id.clone(), snap);
        }
    }

    /// Application-level retained messages (excludes the broker's own
    /// `$SYS` entries).
    pub fn retained_count(&self) -> usize {
        self.retained.keys().filter(|t| !t.starts_with("$SYS")).count()
    }

    fn next_pid(&mut self) -> u16 {
        let pid = self.next_pid;
        self.next_pid = self.next_pid.checked_add(1).unwrap_or(1);
        pid
    }

    fn send_packet(&mut self, sim: &mut Sim, to: Addr, pkt: &Packet) {
        self.ep.send(sim, to, pkt.encode());
    }

    fn handle_packet(&mut self, sim: &mut Sim, from: Addr, pkt: Packet) {
        match pkt {
            Packet::Connect { client_id, flags } => {
                self.stats.connects += 1;
                // Takeover: the same client id live at another address —
                // the old connection is dropped (its will fires, spec
                // §3.1.4) and, for a persistent session, its state lands
                // in the stash where the new connection can resume it.
                if let Some(&old) = self.client_index.get(&client_id) {
                    if old != from {
                        self.stats.session_takeovers += 1;
                        self.drop_session(sim, old, true);
                    }
                }
                // A re-CONNECT over the same endpoint replaces the old
                // session (stashing it first when persistent, so a
                // non-clean reconnect resumes its own state).
                if self.sessions.contains_key(&from) {
                    self.drop_session(sim, from, false);
                }
                if flags.clean_session {
                    self.stashed.remove(&client_id);
                }
                let resumed = !flags.clean_session && self.stashed.contains_key(&client_id);
                let mut session = Session {
                    client_id: client_id.clone(),
                    clean_session: flags.clean_session,
                    keep_alive_secs: flags.keep_alive_secs,
                    filters: Vec::new(),
                    will: flags.will,
                    last_seen: sim.now(),
                    last_probe: None,
                    inbound_rec: BTreeSet::new(),
                    outbound: BTreeMap::new(),
                };
                if resumed {
                    let snap = self.stashed.remove(&client_id).expect("checked above");
                    session.filters = snap.subscriptions.clone();
                    session.inbound_rec = snap.inbound_rec.iter().copied().collect();
                    session.outbound = snap
                        .outbound
                        .into_iter()
                        .map(|ob| {
                            (
                                ob.packet_id,
                                OutboundPub {
                                    topic: ob.topic,
                                    payload: ob.payload,
                                    qos: ob.qos,
                                    retain: ob.retain,
                                    state: if ob.released {
                                        OutState::AwaitPubComp
                                    } else if ob.qos == QoS::AtLeastOnce {
                                        OutState::AwaitPubAck
                                    } else {
                                        OutState::AwaitPubRec
                                    },
                                },
                            )
                        })
                        .collect();
                    for (filter, qos) in &snap.subscriptions {
                        self.insert_sub(from, filter, *qos);
                    }
                    self.stats.session_resumes += 1;
                    obs::inc(self.obs.session_resume);
                }
                self.client_index.insert(client_id, from);
                self.sessions.insert(from, session);
                self.send_packet(sim, from, &Packet::ConnAck { session_present: resumed, code: 0 });
                if resumed {
                    self.retransmit_session(sim, from);
                }
                self.publish_sys(sim);
                self.maybe_arm_sweep(sim);
            }
            Packet::Publish { qos, retain, topic, packet_id, payload, .. } => {
                self.stats.publishes_in += 1;
                obs::inc(self.obs.publish);
                let _span = obs::enter(self.obs.f_publish);
                if !validate_topic(&topic) {
                    self.stats.malformed += 1;
                    return;
                }
                match qos {
                    QoS::AtMostOnce => {}
                    QoS::AtLeastOnce => {
                        if let Some(pid) = packet_id {
                            self.send_packet(sim, from, &Packet::PubAck { packet_id: pid });
                        }
                    }
                    QoS::ExactlyOnce => {
                        // Exactly-once ingress: route on *first* receipt
                        // of a pid only; every receipt (DUP retransmits
                        // included) is answered with PUBREC, and the pid
                        // stays in the dedup set until PUBREL clears it.
                        let Some(pid) = packet_id else {
                            self.stats.malformed += 1;
                            return;
                        };
                        self.stats.qos2_publishes_in += 1;
                        let first = self
                            .sessions
                            .get_mut(&from)
                            .map_or(true, |s| s.inbound_rec.insert(pid));
                        self.send_packet(sim, from, &Packet::PubRec { packet_id: pid });
                        if !first {
                            self.stats.qos2_dup_dropped += 1;
                            obs::inc(self.obs.qos2_dup);
                            return;
                        }
                    }
                }
                if retain {
                    let _span = obs::enter(self.obs.f_retain);
                    if payload.is_empty() {
                        self.retained.remove(topic.as_str()); // empty retained payload clears
                    } else {
                        self.retained.insert(Rc::from(topic.as_str()), (qos, payload.clone()));
                    }
                }
                self.route(sim, &topic, qos, payload, false);
                if self.stats.publishes_in % SYS_EVERY_PUBLISHES == 0 {
                    self.publish_sys(sim);
                }
            }
            Packet::Subscribe { packet_id, filters } => {
                self.stats.subscribes += 1;
                let _span = obs::enter(self.obs.f_subscribe);
                let mut codes = Vec::with_capacity(filters.len());
                let mut granted: Vec<(String, QoS)> = Vec::new();
                for (filter, qos) in filters {
                    if validate_filter(&filter) {
                        codes.push(qos as u8);
                        granted.push((filter, qos));
                    } else {
                        codes.push(0x80); // failure return code
                    }
                }
                // Register before SUBACK so routing is live immediately.
                // A filter the session already holds replaces its granted
                // QoS (spec §3.8.4) — both in the trie and the mirror.
                for (filter, qos) in &granted {
                    self.insert_sub(from, filter, *qos);
                    if let Some(s) = self.sessions.get_mut(&from) {
                        match s.filters.iter_mut().find(|(f, _)| f == filter) {
                            Some(held) => held.1 = *qos,
                            None => s.filters.push((filter.clone(), *qos)),
                        }
                    }
                }
                self.send_packet(sim, from, &Packet::SubAck { packet_id, codes });
                self.publish_sys(sim);
                // Deliver matching retained messages (retain flag set).
                // `$share` filters are skipped: retained replay to exactly
                // one group member is undefined under round-robin, so
                // shared subscriptions receive live traffic only (the
                // MQTT 5 rule, adopted here for 3.1.1).
                // Topic and payload clones here are refcount bumps on
                // `Rc<str>`/`Bytes` — replay copies no message data.
                let plain: Vec<&(String, QoS)> =
                    granted.iter().filter(|(f, _)| parse_share(f).is_none()).collect();
                let matching: Vec<(Rc<str>, QoS, Bytes)> = self
                    .retained
                    .iter()
                    .filter(|(topic, _)| {
                        plain.iter().any(|(f, _)| crate::topic::matches(f, topic))
                    })
                    .map(|(t, (q, p))| (Rc::clone(t), *q, p.clone()))
                    .collect();
                for (topic, pub_qos, payload) in matching {
                    let sub_qos = plain
                        .iter()
                        .filter(|(f, _)| crate::topic::matches(f, &topic))
                        .map(|(_, q)| *q)
                        .max()
                        .unwrap_or(QoS::AtMostOnce);
                    let qos = pub_qos.min(sub_qos);
                    self.stats.retained_served += 1;
                    obs::inc(self.obs.retained_served);
                    self.deliver(sim, from, &topic, qos, payload, true);
                }
            }
            Packet::Unsubscribe { packet_id, filters } => {
                for filter in &filters {
                    self.remove_sub(from, filter);
                    if let Some(s) = self.sessions.get_mut(&from) {
                        s.filters.retain(|(f, _)| f != filter);
                    }
                }
                self.send_packet(sim, from, &Packet::UnsubAck { packet_id });
            }
            Packet::PubAck { packet_id } => {
                // QoS-1 broker→client delivery confirmed; forget the
                // in-flight copy kept for session resumption.
                if let Some(s) = self.sessions.get_mut(&from) {
                    s.outbound.remove(&packet_id);
                }
            }
            Packet::PubRec { packet_id } => {
                // Client stored our QoS 2 delivery; release it. The
                // in-flight copy survives (as "released") until PUBCOMP.
                if let Some(s) = self.sessions.get_mut(&from) {
                    if let Some(ob) = s.outbound.get_mut(&packet_id) {
                        ob.state = OutState::AwaitPubComp;
                    }
                }
                self.send_packet(sim, from, &Packet::PubRel { packet_id });
            }
            Packet::PubRel { packet_id } => {
                // Publisher released an inbound pid: clear the dedup
                // entry and complete the handshake.
                if let Some(s) = self.sessions.get_mut(&from) {
                    s.inbound_rec.remove(&packet_id);
                }
                self.send_packet(sim, from, &Packet::PubComp { packet_id });
            }
            Packet::PubComp { packet_id } => {
                if let Some(s) = self.sessions.get_mut(&from) {
                    if s.outbound.remove(&packet_id).is_some() {
                        self.stats.qos2_completed += 1;
                        obs::inc(self.obs.qos2_complete);
                    }
                }
            }
            Packet::PingReq => self.send_packet(sim, from, &Packet::PingResp),
            Packet::PingResp => {
                // Answer to one of our keep-alive probes; `last_seen` was
                // already refreshed when the packet was delivered.
            }
            Packet::Disconnect => {
                // Graceful close: the will is discarded (spec §3.14).
                self.drop_session(sim, from, false);
            }
            // Server-to-client packets arriving at the broker are protocol
            // violations from a confused peer; drop them.
            _ => self.stats.malformed += 1,
        }
    }

    /// Register `filter` for `addr` in the trie, replacing any previous
    /// grant the same subscriber holds under it (spec §3.8.4 — a blind
    /// push here is exactly the double-delivery bug). `$share/<group>/<f>`
    /// registers under the inner filter `<f>` with the group recorded on
    /// the entry.
    fn insert_sub(&mut self, addr: Addr, filter: &str, qos: QoS) {
        let (group, inner) = match parse_share(filter) {
            Some((g, inner)) => (Some(Rc::<str>::from(g)), inner),
            None => (None, filter),
        };
        let entry = SubEntry { addr, qos, group: group.clone() };
        self.subs.replace_where(inner, entry, |e| e.addr == addr && e.group == group);
    }

    /// Remove `addr`'s subscription entry for `filter` (share-aware).
    fn remove_sub(&mut self, addr: Addr, filter: &str) {
        let (group, inner) = match parse_share(filter) {
            Some((g, inner)) => (Some(g), inner),
            None => (None, filter),
        };
        self.subs
            .remove_where(inner, |e| e.addr == addr && e.group.as_deref() == group);
    }

    /// Resolve `topic` to its delivery lists, consulting the route cache.
    /// The cache is keyed by the trie's interned topic id (4 bytes, no
    /// `String` allocation per miss); entries are immutable snapshots
    /// (`Rc<RouteSet>`, a hit is a refcount bump), invalidated wholesale
    /// whenever the subscription trie's epoch moves.
    fn resolved_routes(&mut self, topic: &str) -> Rc<RouteSet> {
        if self.route_epoch != self.subs.epoch() {
            self.route_cache.clear();
            self.route_epoch = self.subs.epoch();
        }
        // The interner bounds the cache: ids are cache keys, so dropping
        // both together keeps them consistent when a pathological workload
        // floods distinct topics.
        if self.subs.topic_id_count() >= ROUTE_CACHE_CAP {
            self.subs.reset_topic_ids();
            self.route_cache.clear();
        }
        let id = self.subs.topic_id(topic);
        if let Some(routes) = self.route_cache.get(&id) {
            self.stats.route_cache_hits += 1;
            obs::inc(self.obs.route_hit);
            return routes.clone();
        }
        self.stats.route_cache_misses += 1;
        obs::inc(self.obs.route_miss);
        // A session subscribed via several matching filters gets one copy
        // at the highest granted qos; share-group members are collected
        // per group the same way.
        let mut best: HashMap<Addr, QoS> = HashMap::new();
        let mut groups: BTreeMap<Rc<str>, HashMap<Addr, QoS>> = BTreeMap::new();
        for entry in self.subs.lookup(topic) {
            let bucket = match &entry.group {
                None => &mut best,
                Some(g) => groups.entry(Rc::clone(g)).or_default(),
            };
            let e = bucket.entry(entry.addr).or_insert(entry.qos);
            *e = (*e).max(entry.qos);
        }
        let mut direct: Vec<(Addr, QoS)> = best.into_iter().collect();
        direct.sort_unstable_by_key(|(a, _)| *a);
        let shared: Vec<(Rc<str>, Vec<(Addr, QoS)>)> = groups
            .into_iter()
            .map(|(g, members)| {
                let mut m: Vec<(Addr, QoS)> = members.into_iter().collect();
                m.sort_unstable_by_key(|(a, _)| *a);
                (g, m)
            })
            .collect();
        let routes = Rc::new(RouteSet { direct, shared });
        self.route_cache.insert(id, routes.clone());
        routes
    }

    /// Route a publication: every direct subscriber gets a copy; every
    /// `$share` group gets exactly one copy, round-robin over its members
    /// in publish-arrival order.
    fn route(&mut self, sim: &mut Sim, topic: &str, pub_qos: QoS, payload: Bytes, retain: bool) {
        // Offline queueing: a disconnected persistent session still
        // accumulates QoS 1/2 messages matching its plain filters; they sit
        // in the stash as in-flight deliveries and go out when the session
        // resumes. QoS 0 messages are not queued and `$share` filters get
        // live traffic only (both per spec).
        if pub_qos != QoS::AtMostOnce && !self.stashed.is_empty() {
            let queued: Vec<(String, QoS)> = self
                .stashed
                .iter()
                .filter_map(|(cid, snap)| {
                    snap.subscriptions
                        .iter()
                        .filter(|(f, _)| {
                            parse_share(f).is_none() && crate::topic::matches(f, topic)
                        })
                        .map(|(_, q)| *q)
                        .max()
                        .map(|sub_qos| (cid.clone(), pub_qos.min(sub_qos)))
                })
                .filter(|(_, qos)| *qos != QoS::AtMostOnce)
                .collect();
            for (cid, qos) in queued {
                let pid = self.next_pid();
                if let Some(snap) = self.stashed.get_mut(&cid) {
                    snap.outbound.push(OutboundSnapshot {
                        packet_id: pid,
                        topic: topic.to_string(),
                        payload: payload.clone(),
                        qos,
                        retain,
                        released: false,
                    });
                }
            }
        }
        let routes = self.resolved_routes(topic);
        obs::observe(self.obs.fanout, (routes.direct.len() + routes.shared.len()) as u64);
        for &(addr, sub_qos) in &routes.direct {
            let qos = pub_qos.min(sub_qos);
            self.deliver(sim, addr, topic, qos, payload.clone(), retain);
        }
        for (group, members) in &routes.shared {
            if members.is_empty() {
                continue;
            }
            let idx = {
                let ctr = self.share_rr.entry(group.to_string()).or_insert(0);
                let i = (*ctr % members.len() as u64) as usize;
                *ctr += 1;
                i
            };
            let (addr, sub_qos) = members[idx];
            self.stats.shared_deliveries += 1;
            obs::inc(self.obs.shared_delivery);
            self.deliver(sim, addr, topic, pub_qos.min(sub_qos), payload.clone(), retain);
        }
    }

    fn deliver(
        &mut self,
        sim: &mut Sim,
        to: Addr,
        topic: &str,
        qos: QoS,
        payload: Bytes,
        retain: bool,
    ) {
        let packet_id = match qos {
            QoS::AtMostOnce => None,
            QoS::AtLeastOnce | QoS::ExactlyOnce => Some(self.next_pid()),
        };
        if let Some(pid) = packet_id {
            // Track the in-flight delivery so a resumed session can be
            // caught up with a DUP retransmit.
            if let Some(s) = self.sessions.get_mut(&to) {
                s.outbound.insert(
                    pid,
                    OutboundPub {
                        topic: topic.to_string(),
                        payload: payload.clone(),
                        qos,
                        retain,
                        state: if qos == QoS::AtLeastOnce {
                            OutState::AwaitPubAck
                        } else {
                            OutState::AwaitPubRec
                        },
                    },
                );
            }
        }
        self.stats.publishes_out += 1;
        let pkt = Packet::Publish {
            dup: false,
            qos,
            retain,
            topic: topic.to_string(),
            packet_id,
            payload,
        };
        self.send_packet(sim, to, &pkt);
    }

    /// Catch a freshly resumed session up on its in-flight deliveries:
    /// unfinished publishes go out again with DUP set, half-released QoS 2
    /// pids re-send PUBREL. Pid order keeps the schedule deterministic.
    fn retransmit_session(&mut self, sim: &mut Sim, to: Addr) {
        let Some(s) = self.sessions.get(&to) else { return };
        let resend: Vec<(u16, OutboundPub)> =
            s.outbound.iter().map(|(&pid, ob)| (pid, ob.clone())).collect();
        for (pid, ob) in resend {
            match ob.state {
                OutState::AwaitPubAck | OutState::AwaitPubRec => {
                    self.stats.publishes_out += 1;
                    let pkt = Packet::Publish {
                        dup: true,
                        qos: ob.qos,
                        retain: ob.retain,
                        topic: ob.topic,
                        packet_id: Some(pid),
                        payload: ob.payload,
                    };
                    self.send_packet(sim, to, &pkt);
                }
                OutState::AwaitPubComp => {
                    self.send_packet(sim, to, &Packet::PubRel { packet_id: pid });
                }
            }
        }
    }

    /// Publish broker statistics on retained `$SYS/broker/...` topics
    /// (the introspection surface EMQX exposes; `$`-topics are shielded
    /// from wildcard subscriptions per the MQTT spec, so only clients that
    /// subscribe explicitly see them). Refreshed on session/subscription
    /// changes and every [`SYS_EVERY_PUBLISHES`] application publishes.
    fn publish_sys(&mut self, sim: &mut Sim) {
        let entries = [
            ("$SYS/broker/clients/connected", self.sessions.len() as u64),
            ("$SYS/broker/messages/received", self.stats.publishes_in),
            ("$SYS/broker/messages/sent", self.stats.publishes_out),
            ("$SYS/broker/subscriptions/count", self.subs.len() as u64),
            ("$SYS/broker/retained/count", self.retained_count() as u64),
        ];
        for (topic, value) in entries {
            let payload = Bytes::from(value.to_string());
            self.retained.insert(Rc::from(topic), (QoS::AtMostOnce, payload.clone()));
            self.route(sim, topic, QoS::AtMostOnce, payload, true);
        }
    }

    /// Arm the sweep timer if expiry is on and it isn't already pending.
    /// Called on connect (the broker has no `on_start`, so the first
    /// session brings the sweep up lazily).
    fn maybe_arm_sweep(&mut self, sim: &mut Sim) {
        let Some(timeout) = self.session_timeout else { return };
        if self.sweep_armed || self.sessions.is_empty() {
            return;
        }
        self.sweep_armed = true;
        sim.set_timer(self.addr, timeout, SESSION_SWEEP_TOKEN);
    }

    /// Probe every session that has been quiet past the timeout. A live
    /// client answers (transport ACK plus a PingResp, refreshing
    /// `last_seen`); a dead or partitioned one exhausts the transport's
    /// retries, and the resulting `PeerFailed` drops the session *and* the
    /// stale transport connection — that cleanup is what lets a client
    /// reconnect with a fresh sequence space after a partition heals.
    fn sweep_sessions(&mut self, sim: &mut Sim) {
        self.sweep_armed = false;
        let Some(timeout) = self.session_timeout else { return };
        let now = sim.now();
        let mut due: Vec<Addr> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.deadline(timeout) <= now)
            .map(|(a, _)| *a)
            .collect();
        due.sort_unstable();
        for addr in due {
            if let Some(s) = self.sessions.get_mut(&addr) {
                s.last_probe = Some(now);
            }
            self.stats.probes_sent += 1;
            self.send_packet(sim, addr, &Packet::PingReq);
        }
        // Re-arm for the earliest upcoming deadline (min over the hash map
        // is order-independent, so iteration order doesn't matter).
        if let Some(next) = self.sessions.values().map(|s| s.deadline(timeout)).min() {
            let delay = if next > now { next - now } else { timeout };
            self.sweep_armed = true;
            sim.set_timer(self.addr, delay, SESSION_SWEEP_TOKEN);
        }
    }

    /// End the live session at `addr`. A clean session is destroyed; a
    /// persistent one moves to the stash (subscriptions, dedup set and
    /// in-flight deliveries intact) until its client reconnects.
    fn drop_session(&mut self, sim: &mut Sim, addr: Addr, fire_will: bool) {
        let Some(session) = self.sessions.remove(&addr) else {
            return;
        };
        for (filter, _) in &session.filters {
            self.remove_sub(addr, filter);
        }
        if self.client_index.get(&session.client_id) == Some(&addr) {
            self.client_index.remove(&session.client_id);
        }
        if fire_will {
            if let Some((topic, payload)) = session.will.clone() {
                self.stats.wills_fired += 1;
                self.route(sim, &topic, QoS::AtMostOnce, payload, false);
            }
        }
        if !session.clean_session {
            self.stashed.insert(session.client_id.clone(), snapshot_of(&session));
        }
    }
}

impl Service for Broker {
    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        let from = dg.src;
        if !self.ep.on_datagram(sim, dg) {
            self.stats.malformed += 1;
            return;
        }
        let _ = from;
        self.pump(sim);
    }

    fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
        if token == SESSION_SWEEP_TOKEN {
            self.sweep_sessions(sim);
        } else {
            self.ep.on_timer(sim, token);
        }
        self.pump(sim);
    }
}

impl Broker {
    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.ep.poll() {
            match ev {
                TransportEvent::Delivered { peer, payload } => {
                    if let Some(s) = self.sessions.get_mut(&peer) {
                        s.last_seen = sim.now();
                        s.last_probe = None;
                    }
                    match Packet::decode(&payload) {
                        Ok(pkt) => self.handle_packet(sim, peer, pkt),
                        Err(_) => self.stats.malformed += 1,
                    }
                }
                TransportEvent::PeerFailed { peer } => {
                    // Ungraceful death: fire the last-will (paper §6 lists
                    // device faults as a fidelity dimension; this is how an
                    // app observes a mock dying).
                    if self.sessions.get(&peer).is_some_and(|s| s.last_probe.is_some()) {
                        self.stats.sessions_expired += 1;
                    }
                    self.drop_session(sim, peer, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientEvent, MqttConn};
    use digibox_net::{NodeSpec, SimConfig, Topology};

    /// A service wrapping MqttConn that records every event.
    struct TestClient {
        conn: MqttConn,
        events: Vec<ClientEvent>,
    }

    impl TestClient {
        fn new(local: Addr, broker: Addr, id: &str) -> ServiceHandle<TestClient> {
            Rc::new(RefCell::new(TestClient { conn: MqttConn::new(local, broker, id), events: Vec::new() }))
        }
        fn drain(&mut self) {
            while let Some(ev) = self.conn.poll() {
                self.events.push(ev);
            }
        }
        fn messages(&self) -> Vec<(String, Vec<u8>)> {
            self.events
                .iter()
                .filter_map(|e| match e {
                    ClientEvent::Message { topic, payload, .. } => {
                        Some((topic.clone(), payload.to_vec()))
                    }
                    _ => None,
                })
                .collect()
        }
    }

    impl Service for TestClient {
        fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
            self.conn.on_datagram(sim, dg);
            self.drain();
        }
        fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
            self.conn.on_timer(sim, token);
            self.drain();
        }
    }

    struct Rig {
        sim: Sim,
        broker: ServiceHandle<Broker>,
        broker_addr: Addr,
        next_port: u16,
    }

    impl Rig {
        fn new() -> Rig {
            let mut topo = Topology::new();
            let n = topo.add_node(NodeSpec::laptop());
            let mut sim = Sim::new(topo, SimConfig::default());
            let broker_addr = Addr::new(n, 1883);
            let broker = Broker::new(broker_addr);
            sim.bind(broker_addr, broker.clone());
            Rig { sim, broker, broker_addr, next_port: 10_000 }
        }

        fn client(&mut self, id: &str) -> (ServiceHandle<TestClient>, Addr) {
            let node = self.broker_addr.node;
            let addr = Addr::new(node, self.next_port);
            self.next_port += 1;
            let c = TestClient::new(addr, self.broker_addr, id);
            self.sim.bind(addr, c.clone());
            c.borrow_mut().conn.connect(&mut self.sim, None);
            self.sim.run_to_completion();
            assert!(c.borrow().conn.is_connected(), "client {id} failed to connect");
            (c, addr)
        }
    }

    #[test]
    fn connect_and_connack() {
        let mut rig = Rig::new();
        let (c, _) = rig.client("c1");
        assert!(matches!(c.borrow().events[0], ClientEvent::Connected { .. }));
        assert_eq!(rig.broker.borrow().session_count(), 1);
        assert_eq!(rig.broker.borrow().stats().connects, 1);
    }

    #[test]
    fn publish_routes_to_subscribers() {
        let mut rig = Rig::new();
        let (sub1, _) = rig.client("sub1");
        let (sub2, _) = rig.client("sub2");
        let (publisher, _) = rig.client("pub");
        sub1.borrow_mut().conn.subscribe(&mut rig.sim, &[("digibox/mock/+/status", QoS::AtMostOnce)]);
        sub2.borrow_mut().conn.subscribe(&mut rig.sim, &[("digibox/#", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(
            &mut rig.sim,
            "digibox/mock/O1/status",
            &b"{\"triggered\":true}"[..],
            QoS::AtMostOnce,
            false,
        );
        rig.sim.run_to_completion();
        assert_eq!(sub1.borrow().messages().len(), 1);
        assert_eq!(sub2.borrow().messages().len(), 1);
        assert_eq!(sub1.borrow().messages()[0].0, "digibox/mock/O1/status");
    }

    #[test]
    fn qos1_publish_gets_puback() {
        let mut rig = Rig::new();
        let (c, _) = rig.client("c");
        let pid = c.borrow_mut().conn.publish(&mut rig.sim, "a/b", &b"x"[..], QoS::AtLeastOnce, false);
        rig.sim.run_to_completion();
        let c = c.borrow();
        assert_eq!(c.conn.unacked_publishes(), 0);
        assert!(c.events.iter().any(|e| *e == ClientEvent::PubAck { packet_id: pid.unwrap() }));
    }

    #[test]
    fn qos1_subscriber_receives_and_acks() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("t", QoS::AtLeastOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t", &b"m"[..], QoS::AtLeastOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages(), vec![("t".to_string(), b"m".to_vec())]);
    }

    #[test]
    fn retained_message_served_on_subscribe() {
        let mut rig = Rig::new();
        let (publisher, _) = rig.client("pub");
        publisher.borrow_mut().conn.publish(&mut rig.sim, "status/L1", &b"on"[..], QoS::AtMostOnce, true);
        rig.sim.run_to_completion();
        assert_eq!(rig.broker.borrow().retained_count(), 1);
        // late subscriber still sees it
        let (sub, _) = rig.client("sub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("status/+", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        let msgs = sub.borrow().messages();
        assert_eq!(msgs, vec![("status/L1".to_string(), b"on".to_vec())]);
        assert!(sub
            .borrow()
            .events
            .iter()
            .any(|e| matches!(e, ClientEvent::Message { retain: true, .. })));
    }

    #[test]
    fn empty_retained_payload_clears() {
        let mut rig = Rig::new();
        let (p, _) = rig.client("p");
        p.borrow_mut().conn.publish(&mut rig.sim, "s", &b"v"[..], QoS::AtMostOnce, true);
        rig.sim.run_to_completion();
        assert_eq!(rig.broker.borrow().retained_count(), 1);
        p.borrow_mut().conn.publish(&mut rig.sim, "s", Bytes::new(), QoS::AtMostOnce, true);
        rig.sim.run_to_completion();
        assert_eq!(rig.broker.borrow().retained_count(), 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("t", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        sub.borrow_mut().conn.unsubscribe(&mut rig.sim, &["t"]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t", &b"m"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert!(sub.borrow().messages().is_empty());
    }

    #[test]
    fn overlapping_filters_deliver_once() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut()
            .conn
            .subscribe(&mut rig.sim, &[("a/#", QoS::AtMostOnce), ("a/+", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "a/b", &b"m"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages().len(), 1, "no duplicate deliveries");
    }

    #[test]
    fn invalid_filter_gets_failure_code_and_no_delivery() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("bad/#/filter", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "bad/x/filter", &b"m"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert!(sub.borrow().messages().is_empty());
    }

    #[test]
    fn graceful_disconnect_discards_will() {
        let mut rig = Rig::new();
        let (watcher, _) = rig.client("watcher");
        watcher.borrow_mut().conn.subscribe(&mut rig.sim, &[("lwt/#", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        // client with a will, disconnecting cleanly
        let node = rig.broker_addr.node;
        let addr = Addr::new(node, 20_000);
        let c = TestClient::new(addr, rig.broker_addr, "mortal");
        rig.sim.bind(addr, c.clone());
        c.borrow_mut()
            .conn
            .connect(&mut rig.sim, Some(("lwt/mortal".into(), Bytes::from_static(b"gone"))));
        rig.sim.run_to_completion();
        c.borrow_mut().conn.disconnect(&mut rig.sim);
        rig.sim.run_to_completion();
        assert!(watcher.borrow().messages().is_empty());
        assert_eq!(rig.broker.borrow().session_count(), 1, "mortal's session dropped");
    }

    #[test]
    fn publisher_also_subscribed_receives_own_message() {
        let mut rig = Rig::new();
        let (c, _) = rig.client("c");
        c.borrow_mut().conn.subscribe(&mut rig.sim, &[("loop", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        c.borrow_mut().conn.publish(&mut rig.sim, "loop", &b"echo"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(c.borrow().messages().len(), 1);
    }

    #[test]
    fn sys_topics_published_and_shielded_from_wildcards() {
        let mut rig = Rig::new();
        let (wildcard, _) = rig.client("wildcard");
        wildcard.borrow_mut().conn.subscribe(&mut rig.sim, &[("#", QoS::AtMostOnce)]);
        let (sys_watcher, _) = rig.client("sys");
        sys_watcher
            .borrow_mut()
            .conn
            .subscribe(&mut rig.sim, &[("$SYS/broker/clients/connected", QoS::AtMostOnce)]);
        // a new connection refreshes $SYS
        let (_extra, _) = rig.client("extra");
        rig.sim.run_to_completion();
        let sys_msgs = sys_watcher.borrow().messages();
        assert!(!sys_msgs.is_empty(), "explicit $SYS subscriber sees stats");
        let connected: u64 =
            String::from_utf8(sys_msgs.last().unwrap().1.clone()).unwrap().parse().unwrap();
        assert_eq!(connected, 3);
        // the root wildcard must NOT receive $SYS traffic (spec §4.7.2)
        assert!(
            wildcard.borrow().messages().iter().all(|(t, _)| !t.starts_with("$SYS")),
            "wildcard subscriber leaked $SYS messages"
        );
    }

    #[test]
    fn sys_retained_served_to_late_subscriber() {
        let mut rig = Rig::new();
        let (_first, _) = rig.client("first"); // triggers a $SYS refresh
        let (late, _) = rig.client("late");
        late.borrow_mut()
            .conn
            .subscribe(&mut rig.sim, &[("$SYS/broker/retained/count", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        assert!(!late.borrow().messages().is_empty(), "retained $SYS stat served");
    }

    #[test]
    fn stats_track_traffic() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("t/#", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        for i in 0..10 {
            publisher.borrow_mut().conn.publish(
                &mut rig.sim,
                &format!("t/{i}"),
                &b"m"[..],
                QoS::AtMostOnce,
                false,
            );
        }
        rig.sim.run_to_completion();
        let b = rig.broker.borrow();
        assert_eq!(b.stats().publishes_in, 10);
        assert_eq!(b.stats().publishes_out, 10);
        assert_eq!(b.stats().subscribes, 1);
    }

    #[test]
    fn route_cache_hits_on_repeated_topic() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("hot/+", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        for _ in 0..20 {
            publisher.borrow_mut().conn.publish(&mut rig.sim, "hot/topic", &b"m"[..], QoS::AtMostOnce, false);
        }
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages().len(), 20);
        let b = rig.broker.borrow();
        assert!(
            b.stats().route_cache_hits >= 19,
            "repeated publishes must hit the cache (hits={})",
            b.stats().route_cache_hits
        );
    }

    #[test]
    fn route_cache_invalidated_by_unsubscribe_and_session_end() {
        let mut rig = Rig::new();
        let (sub1, _) = rig.client("sub1");
        let (sub2, _) = rig.client("sub2");
        let (publisher, _) = rig.client("pub");
        sub1.borrow_mut().conn.subscribe(&mut rig.sim, &[("t/x", QoS::AtMostOnce)]);
        sub2.borrow_mut().conn.subscribe(&mut rig.sim, &[("t/#", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t/x", &b"1"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub1.borrow().messages().len(), 1);
        assert_eq!(sub2.borrow().messages().len(), 1);
        // unsubscribe must invalidate the cached route for "t/x"
        sub1.borrow_mut().conn.unsubscribe(&mut rig.sim, &["t/x"]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t/x", &b"2"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub1.borrow().messages().len(), 1, "stale cached route after unsubscribe");
        assert_eq!(sub2.borrow().messages().len(), 2);
        // session end (graceful disconnect) must invalidate too
        sub2.borrow_mut().conn.disconnect(&mut rig.sim);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "t/x", &b"3"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub2.borrow().messages().len(), 2, "stale cached route after session end");
    }

    /// Like `Rig::client` but driven by `run_for`: once a session timeout
    /// is set the sweep timer perpetually re-arms, so `run_to_completion`
    /// would never return.
    fn client_run_for(rig: &mut Rig, port: u16, id: &str, will: Option<(String, Bytes)>) -> ServiceHandle<TestClient> {
        let addr = Addr::new(rig.broker_addr.node, port);
        let c = TestClient::new(addr, rig.broker_addr, id);
        rig.sim.bind(addr, c.clone());
        c.borrow_mut().conn.connect(&mut rig.sim, will);
        rig.sim.run_for(SimDuration::from_millis(100));
        assert!(c.borrow().conn.is_connected(), "client {id} failed to connect");
        c
    }

    #[test]
    fn idle_dead_session_expires_via_probe_and_fires_will() {
        let mut rig = Rig::new();
        rig.broker.borrow_mut().set_session_timeout(Some(SimDuration::from_secs(2)));
        let watcher = client_run_for(&mut rig, 20_000, "watcher", None);
        watcher.borrow_mut().conn.subscribe(&mut rig.sim, &[("lwt/#", QoS::AtMostOnce)]);
        let mortal = client_run_for(
            &mut rig,
            20_001,
            "mortal",
            Some(("lwt/mortal".into(), Bytes::from_static(b"gone"))),
        );
        let _ = mortal;
        assert_eq!(rig.broker.borrow().session_count(), 2);
        // Silent death: the client vanishes without a Disconnect. The
        // sweep probes it after ~2s idle; retry exhaustion takes another
        // ~55×RTO, after which the will fires and the session is reaped.
        rig.sim.unbind(Addr::new(rig.broker_addr.node, 20_001));
        rig.sim.run_for(SimDuration::from_secs(8));
        let b = rig.broker.borrow();
        assert_eq!(b.session_count(), 1, "dead session reaped");
        assert_eq!(b.stats().wills_fired, 1);
        assert!(b.stats().probes_sent >= 1);
        assert_eq!(b.stats().sessions_expired, 1);
        drop(b);
        assert_eq!(
            watcher.borrow().messages(),
            vec![("lwt/mortal".to_string(), b"gone".to_vec())]
        );
    }

    #[test]
    fn idle_live_session_survives_probes() {
        let mut rig = Rig::new();
        rig.broker.borrow_mut().set_session_timeout(Some(SimDuration::from_millis(500)));
        let c = client_run_for(
            &mut rig,
            20_100,
            "quiet",
            Some(("lwt/quiet".into(), Bytes::from_static(b"gone"))),
        );
        // Five seconds of silence: the broker probes roughly once per
        // timeout period, the client answers each time, nothing expires.
        rig.sim.run_for(SimDuration::from_secs(5));
        let b = rig.broker.borrow();
        assert_eq!(b.session_count(), 1, "live client kept alive by probes");
        assert_eq!(b.stats().wills_fired, 0);
        assert_eq!(b.stats().sessions_expired, 0);
        assert!(b.stats().probes_sent >= 5, "probes={}", b.stats().probes_sent);
        assert_eq!(b.transport_retransmits(), 0);
        drop(b);
        assert!(c.borrow().conn.is_connected());
    }

    #[test]
    fn resubscribe_replaces_instead_of_duplicating() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("dup/t", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        // Same filter again at a different QoS: spec §3.8.4 says the new
        // grant *replaces* the old one — it must not add a second trie
        // entry that double-delivers.
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("dup/t", QoS::AtLeastOnce)]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "dup/t", &b"m"[..], QoS::AtLeastOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages().len(), 1, "re-subscribe must not double-deliver");
        // And the replacement upgraded the granted QoS in place.
        let b = rig.broker.borrow();
        let entries: Vec<_> = b.subs.lookup("dup/t");
        assert_eq!(entries.len(), 1, "one trie entry after re-subscribe");
        assert_eq!(entries[0].qos, QoS::AtLeastOnce);
    }

    #[test]
    fn qos2_publish_exactly_once_end_to_end() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, _) = rig.client("pub");
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("q2/t", QoS::ExactlyOnce)]);
        rig.sim.run_to_completion();
        let pid = publisher
            .borrow_mut()
            .conn
            .publish(&mut rig.sim, "q2/t", &b"m"[..], QoS::ExactlyOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages(), vec![("q2/t".to_string(), b"m".to_vec())]);
        let p = publisher.borrow();
        assert_eq!(p.conn.unacked_publishes(), 0, "four-way handshake completed");
        assert!(p.events.iter().any(|e| *e == ClientEvent::PubComp { packet_id: pid.unwrap() }));
        drop(p);
        let b = rig.broker.borrow();
        assert_eq!(b.stats().qos2_publishes_in, 1);
        assert_eq!(b.stats().qos2_completed, 1, "broker→subscriber leg completed");
        assert_eq!(b.stats().qos2_dup_dropped, 0);
    }

    #[test]
    fn qos2_duplicate_publish_suppressed_by_pid_dedup() {
        let mut rig = Rig::new();
        let (sub, _) = rig.client("sub");
        let (publisher, pub_addr) = rig.client("pub");
        let _ = publisher;
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("q2/t", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        // Hand the broker the same QoS 2 publish twice (as a retransmit
        // with DUP would, before any PUBREL releases the pid): it must
        // PUBREC both but route only the first.
        for dup in [false, true] {
            let pkt = Packet::Publish {
                dup,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: "q2/t".into(),
                packet_id: Some(42),
                payload: Bytes::from_static(b"m"),
            };
            rig.broker.borrow_mut().handle_packet(&mut rig.sim, pub_addr, pkt);
        }
        rig.sim.run_to_completion();
        assert_eq!(sub.borrow().messages().len(), 1, "duplicate QoS 2 publish leaked");
        let b = rig.broker.borrow();
        assert_eq!(b.stats().qos2_publishes_in, 2);
        assert_eq!(b.stats().qos2_dup_dropped, 1);
    }

    #[test]
    fn persistent_session_resumes_with_session_present() {
        let mut rig = Rig::new();
        let node = rig.broker_addr.node;
        let addr = Addr::new(node, 21_000);
        let c = TestClient::new(addr, rig.broker_addr, "keeper");
        rig.sim.bind(addr, c.clone());
        c.borrow_mut().conn.connect_persistent(&mut rig.sim, None);
        rig.sim.run_to_completion();
        assert!(c
            .borrow()
            .events
            .iter()
            .any(|e| *e == ClientEvent::Connected { session_present: false }));
        c.borrow_mut().conn.subscribe(&mut rig.sim, &[("keep/t", QoS::AtLeastOnce)]);
        rig.sim.run_to_completion();
        c.borrow_mut().conn.disconnect(&mut rig.sim);
        rig.sim.run_to_completion();
        assert_eq!(rig.broker.borrow().session_count(), 0);
        assert_eq!(rig.broker.borrow().stashed_count(), 1, "persistent session stashed");
        // While disconnected, a matching QoS 1 publish is queued.
        let (publisher, _) = rig.client("pub");
        publisher.borrow_mut().conn.publish(&mut rig.sim, "keep/t", &b"wb"[..], QoS::AtLeastOnce, false);
        rig.sim.run_to_completion();
        // Reconnect (the conn stays persistent): session_present comes back
        // true, the subscription still routes, and the queued message lands.
        c.borrow_mut().conn.connect(&mut rig.sim, None);
        rig.sim.run_to_completion();
        assert!(c
            .borrow()
            .events
            .iter()
            .any(|e| *e == ClientEvent::Connected { session_present: true }));
        assert_eq!(c.borrow().messages(), vec![("keep/t".to_string(), b"wb".to_vec())]);
        assert_eq!(rig.broker.borrow().stats().session_resumes, 1);
        // Live again: a fresh publish arrives exactly once.
        publisher.borrow_mut().conn.publish(&mut rig.sim, "keep/t", &b"live"[..], QoS::AtLeastOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(c.borrow().messages().len(), 2);
    }

    #[test]
    fn clean_connect_destroys_stashed_session() {
        let mut rig = Rig::new();
        let node = rig.broker_addr.node;
        let addr = Addr::new(node, 21_100);
        let c = TestClient::new(addr, rig.broker_addr, "wiper");
        rig.sim.bind(addr, c.clone());
        c.borrow_mut().conn.connect_persistent(&mut rig.sim, None);
        rig.sim.run_to_completion();
        c.borrow_mut().conn.subscribe(&mut rig.sim, &[("w/t", QoS::AtLeastOnce)]);
        rig.sim.run_to_completion();
        c.borrow_mut().conn.disconnect(&mut rig.sim);
        rig.sim.run_to_completion();
        assert_eq!(rig.broker.borrow().stashed_count(), 1);
        // A clean-session CONNECT under the same id wipes the stash entry.
        let c2 = TestClient::new(Addr::new(node, 21_101), rig.broker_addr, "wiper");
        rig.sim.bind(Addr::new(node, 21_101), c2.clone());
        c2.borrow_mut().conn.connect(&mut rig.sim, None);
        rig.sim.run_to_completion();
        assert!(c2
            .borrow()
            .events
            .iter()
            .any(|e| *e == ClientEvent::Connected { session_present: false }));
        assert_eq!(rig.broker.borrow().stashed_count(), 0, "clean CONNECT destroys the stash");
        // The old subscription is gone with it.
        let (publisher, _) = rig.client("pub");
        publisher.borrow_mut().conn.publish(&mut rig.sim, "w/t", &b"m"[..], QoS::AtLeastOnce, false);
        rig.sim.run_to_completion();
        assert!(c2.borrow().messages().is_empty());
    }

    #[test]
    fn session_takeover_moves_state_to_new_connection() {
        let mut rig = Rig::new();
        let node = rig.broker_addr.node;
        let a1 = Addr::new(node, 22_000);
        let c1 = TestClient::new(a1, rig.broker_addr, "roamer");
        rig.sim.bind(a1, c1.clone());
        c1.borrow_mut().conn.connect_persistent(&mut rig.sim, None);
        rig.sim.run_to_completion();
        c1.borrow_mut().conn.subscribe(&mut rig.sim, &[("roam/t", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        // The same client id connects from a different address: the old
        // connection is displaced and its state follows the client.
        let a2 = Addr::new(node, 22_001);
        let c2 = TestClient::new(a2, rig.broker_addr, "roamer");
        rig.sim.bind(a2, c2.clone());
        c2.borrow_mut().conn.connect_persistent(&mut rig.sim, None);
        rig.sim.run_to_completion();
        assert!(c2
            .borrow()
            .events
            .iter()
            .any(|e| *e == ClientEvent::Connected { session_present: true }));
        assert_eq!(rig.broker.borrow().session_count(), 1, "old connection displaced");
        assert_eq!(rig.broker.borrow().stats().session_takeovers, 1);
        let (publisher, _) = rig.client("pub");
        publisher.borrow_mut().conn.publish(&mut rig.sim, "roam/t", &b"m"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(c2.borrow().messages().len(), 1, "subscription follows the takeover");
        assert!(c1.borrow().messages().is_empty());
    }

    #[test]
    fn broker_restart_preserves_sessions_and_inflight_qos2() {
        let mut rig = Rig::new();
        let node = rig.broker_addr.node;
        let sub_addr = Addr::new(node, 23_000);
        let sub = TestClient::new(sub_addr, rig.broker_addr, "sub-durable");
        rig.sim.bind(sub_addr, sub.clone());
        sub.borrow_mut().conn.connect_persistent(&mut rig.sim, None);
        rig.sim.run_to_completion();
        sub.borrow_mut().conn.subscribe(&mut rig.sim, &[("d/t", QoS::ExactlyOnce)]);
        rig.sim.run_to_completion();
        let pub_addr = Addr::new(node, 23_001);
        let publisher = TestClient::new(pub_addr, rig.broker_addr, "pub-durable");
        rig.sim.bind(pub_addr, publisher.clone());
        publisher.borrow_mut().conn.connect_persistent(&mut rig.sim, None);
        rig.sim.run_to_completion();

        // Crash the broker, then publish into the outage: the QoS 2
        // publish sits in the publisher's in-flight set while its
        // transport retries against the dead endpoint.
        let snaps = rig.broker.borrow().export_sessions();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].client_id, "pub-durable");
        assert_eq!(snaps[1].subscriptions, vec![("d/t".to_string(), QoS::ExactlyOnce)]);
        rig.sim.unbind(rig.broker_addr);
        publisher
            .borrow_mut()
            .conn
            .publish(&mut rig.sim, "d/t", &b"survivor"[..], QoS::ExactlyOnce, false);
        rig.sim.run_for(SimDuration::from_millis(200));

        // Restart: a fresh broker instance at the same address, seeded
        // with the exported sessions.
        let broker2 = Broker::new(rig.broker_addr);
        broker2.borrow_mut().import_sessions(snaps);
        rig.sim.bind(rig.broker_addr, broker2.clone());
        rig.broker = broker2;
        assert_eq!(rig.broker.borrow().stashed_count(), 2);

        // The publisher's retries exhaust (~55×RTO), it sees BrokerLost,
        // and redials; the resumed session retransmits the publish (DUP).
        rig.sim.run_for(SimDuration::from_secs(4));
        assert!(publisher.borrow().events.contains(&ClientEvent::BrokerLost));
        publisher.borrow_mut().conn.connect(&mut rig.sim, None);
        rig.sim.run_for(SimDuration::from_secs(2));
        assert!(publisher.borrow().conn.is_connected());

        // The subscriber was idle through the crash, so its first redial
        // still rides the stale transport stream — the restarted broker
        // ignores it until those retries exhaust too, then the second
        // redial lands and the queued message is delivered.
        sub.borrow_mut().conn.connect(&mut rig.sim, None);
        rig.sim.run_for(SimDuration::from_secs(4));
        if !sub.borrow().conn.is_connected() {
            sub.borrow_mut().conn.connect(&mut rig.sim, None);
            rig.sim.run_for(SimDuration::from_secs(2));
        }
        assert!(sub.borrow().conn.is_connected());
        assert!(sub
            .borrow()
            .events
            .iter()
            .any(|e| *e == ClientEvent::Connected { session_present: true }));

        rig.sim.run_for(SimDuration::from_secs(2));
        assert_eq!(
            sub.borrow().messages(),
            vec![("d/t".to_string(), b"survivor".to_vec())],
            "exactly one delivery across the restart"
        );
        assert_eq!(publisher.borrow().conn.unacked_publishes(), 0, "handshake completed");
        let b = rig.broker.borrow();
        assert_eq!(b.stats().session_resumes, 2);
        assert_eq!(b.stashed_count(), 0);
    }

    #[test]
    fn shared_subscription_round_robins_across_group() {
        let mut rig = Rig::new();
        let (m1, _) = rig.client("m1");
        let (m2, _) = rig.client("m2");
        let (m3, _) = rig.client("m3");
        let (direct, _) = rig.client("direct");
        let (publisher, _) = rig.client("pub");
        for m in [&m1, &m2, &m3] {
            m.borrow_mut().conn.subscribe(&mut rig.sim, &[("$share/g/work/t", QoS::AtMostOnce)]);
        }
        direct.borrow_mut().conn.subscribe(&mut rig.sim, &[("work/t", QoS::AtMostOnce)]);
        rig.sim.run_to_completion();
        for i in 0..6 {
            let payload = Bytes::from(format!("m{i}"));
            publisher
                .borrow_mut()
                .conn
                .publish(&mut rig.sim, "work/t", payload, QoS::AtMostOnce, false);
            rig.sim.run_to_completion();
        }
        // Each group member gets exactly 2 of the 6 (round-robin in
        // member-address order); the direct subscriber gets all 6.
        assert_eq!(m1.borrow().messages().len(), 2);
        assert_eq!(m2.borrow().messages().len(), 2);
        assert_eq!(m3.borrow().messages().len(), 2);
        assert_eq!(direct.borrow().messages().len(), 6);
        let b = rig.broker.borrow();
        assert_eq!(b.stats().shared_deliveries, 6);
        // Round-robin in address order: member 1 saw publishes 0 and 3.
        assert_eq!(
            m1.borrow().messages(),
            vec![("work/t".to_string(), b"m0".to_vec()), ("work/t".to_string(), b"m3".to_vec())]
        );
    }

    #[test]
    fn shared_and_plain_subscription_same_session_coexist() {
        let mut rig = Rig::new();
        let (c, _) = rig.client("both");
        let (publisher, _) = rig.client("pub");
        c.borrow_mut().conn.subscribe(
            &mut rig.sim,
            &[("$share/g/x/t", QoS::AtMostOnce), ("x/t", QoS::AtMostOnce)],
        );
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "x/t", &b"m"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        // One copy as the sole group member, one as a direct subscriber.
        assert_eq!(c.borrow().messages().len(), 2);
        // Unsubscribing the shared filter leaves the plain one intact.
        c.borrow_mut().conn.unsubscribe(&mut rig.sim, &["$share/g/x/t"]);
        rig.sim.run_to_completion();
        publisher.borrow_mut().conn.publish(&mut rig.sim, "x/t", &b"m2"[..], QoS::AtMostOnce, false);
        rig.sim.run_to_completion();
        assert_eq!(c.borrow().messages().len(), 3);
    }

    #[test]
    fn busy_session_is_never_probed() {
        let mut rig = Rig::new();
        rig.broker.borrow_mut().set_session_timeout(Some(SimDuration::from_millis(500)));
        let c = client_run_for(&mut rig, 20_200, "chatty", None);
        // Publish every 200ms — always inside the idle window.
        for _ in 0..20 {
            c.borrow_mut().conn.publish(&mut rig.sim, "t", &b"x"[..], QoS::AtMostOnce, false);
            rig.sim.run_for(SimDuration::from_millis(200));
        }
        let b = rig.broker.borrow();
        assert_eq!(b.stats().probes_sent, 0, "traffic resets the idle clock");
        assert_eq!(b.session_count(), 1);
    }
}
